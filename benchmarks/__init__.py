"""Benchmark harness reproducing the paper's tables and figures.

This package marker makes the relative ``from ._helpers import ...`` imports
inside the benchmark modules package-safe, so ``pytest benchmarks`` collects
(and runs) from the repository root.  The default test run is restricted to
``tests/`` via ``[tool.pytest.ini_options] testpaths`` in ``pyproject.toml``;
run the benchmarks explicitly::

    PYTHONPATH=src python -m pytest benchmarks          # full harness
    PYTHONPATH=src python -m pytest --collect-only benchmarks
"""
