"""Shared infrastructure for the benchmark harness.

Every table and figure of the paper's evaluation section has a benchmark
module in this directory.  They all draw from two cached sweeps defined here:

* :func:`main_sweep` — all 11 detectors (ImDiffusion + 10 baselines) on all 6
  dataset analogues (Tables 2, 3 and 4),
* :func:`ablation_sweep` — the 8 ImDiffusion ablation variants of Sec. 5.3 on
  all 6 datasets (Tables 5 and 6, Figures 7 and 9).

The sweeps run at a reduced scale so the whole harness finishes on a CPU in
minutes; the environment variables below let you trade time for fidelity:

* ``REPRO_BENCH_SCALE``   — dataset length multiplier (default 0.08),
* ``REPRO_BENCH_RUNS``    — independent runs per configuration (default 1;
  the paper uses 6),
* ``REPRO_BENCH_DATASETS``— comma-separated subset of datasets to sweep.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.baselines import BASELINE_REGISTRY
from repro.data import list_datasets, load_dataset
from repro.evaluation import EvaluationSummary, evaluate_labels

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.08"))
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "1"))
_DATASET_OVERRIDE = os.environ.get("REPRO_BENCH_DATASETS", "")

#: Early-stopping protocol of the sweeps: instead of a fixed epoch count,
#: every trainable detector gets an epoch *budget* plus patience on the
#: held-out loss of a validation split.  Converging runs stop sooner, which
#: is what cuts harness runtime at equal accuracy; `_evaluate` asserts the
#: executed epochs never exceed the budget.
BENCH_EARLY_STOP = dict(early_stopping_patience=2, validation_fraction=0.2)

#: Hyper-parameters that keep each baseline fast at benchmark scale.  The
#: ``epochs`` values are budgets (early stopping usually uses fewer).
BASELINE_BENCH_OVERRIDES: Dict[str, dict] = {
    "IForest": dict(num_trees=25, subsample_size=128),
    "BeatGAN": dict(window_size=24, epochs=5, hidden_dim=32, max_train_windows=48,
                    **BENCH_EARLY_STOP),
    "LSTM-AD": dict(history=12, hidden_size=24, epochs=5, max_train_samples=256,
                    **BENCH_EARLY_STOP),
    "InterFusion": dict(window_size=24, epochs=5, hidden_dim=24, max_train_windows=48,
                        **BENCH_EARLY_STOP),
    "OmniAnomaly": dict(window_size=24, epochs=5, hidden_size=24, max_train_windows=48,
                        **BENCH_EARLY_STOP),
    "GDN": dict(history=12, epochs=5, hidden_dim=24, max_train_samples=256,
                **BENCH_EARLY_STOP),
    "MAD-GAN": dict(window_size=24, epochs=5, hidden_size=24, max_train_windows=48,
                    num_latent_candidates=6, **BENCH_EARLY_STOP),
    "MTAD-GAT": dict(window_size=20, epochs=4, hidden_size=24, max_train_windows=32,
                     **BENCH_EARLY_STOP),
    "MSCRED": dict(window_size=24, scales=(6, 12, 24), epochs=5, max_train_windows=48,
                   **BENCH_EARLY_STOP),
    "TranAD": dict(window_size=20, epochs=4, hidden_size=24, max_train_windows=32,
                   **BENCH_EARLY_STOP),
}

#: The ImDiffusion ablation variants of Sec. 5.3 (Table 5 / Table 6 rows).
ABLATION_VARIANTS: Dict[str, dict] = {
    "ImDiffusion": {},
    "Forecasting": {"mode": "forecasting"},
    "Reconstruction": {"mode": "reconstruction"},
    "Non-ensemble": {"ensemble": False},
    "Conditional": {"conditioning": "conditional"},
    "Random Mask": {"masking": "random"},
    "w/o spatial transformer": {"include_spatial": False},
    "w/o temporal transformer": {"include_temporal": False},
}


def bench_datasets() -> List[str]:
    """The datasets included in the sweeps (the paper's six unless overridden)."""
    if _DATASET_OVERRIDE:
        return [name.strip() for name in _DATASET_OVERRIDE.split(",") if name.strip()]
    return list_datasets(tag="paper")


def imdiffusion_config(seed: int = 0, **overrides) -> ImDiffusionConfig:
    """Benchmark-scale ImDiffusion configuration (see DESIGN.md for the mapping).

    ``epochs`` is a budget: training early-stops on the held-out loss of a
    20% validation split once two consecutive epochs fail to improve.
    """
    defaults = dict(
        window_size=32, num_steps=10, epochs=6, hidden_dim=24, num_blocks=1,
        num_heads=2, batch_size=8, max_train_windows=48, train_stride=12,
        num_masked_windows=4, num_unmasked_windows=4,
        error_percentile=96.0, deterministic_inference=True, collect="x0",
        seed=seed, **BENCH_EARLY_STOP,
    )
    defaults.update(overrides)
    return ImDiffusionConfig(**defaults)


#: Lighter configuration shared by all ablation variants (they are compared
#: against each other, so only internal consistency matters).
ABLATION_BASE_OVERRIDES = dict(epochs=5, hidden_dim=16, max_train_windows=32, train_stride=16)


def make_imdiffusion(seed: int = 0, **overrides) -> ImDiffusionDetector:
    return ImDiffusionDetector(imdiffusion_config(seed=seed, **overrides))


def make_baseline(name: str, seed: int = 0):
    return BASELINE_REGISTRY[name](seed=seed, **BASELINE_BENCH_OVERRIDES[name])


@dataclass
class SweepEntry:
    """One (detector, dataset) cell of a sweep."""

    detector: str
    dataset: str
    summary: EvaluationSummary
    mean_error_normal: float
    mean_error_abnormal: float
    train_epochs: float = 0.0  #: mean epochs actually run (≤ the budget)

    @property
    def mean_error(self) -> float:
        return 0.5 * (self.mean_error_normal + self.mean_error_abnormal)


def _dataset_percentile(name: str) -> float:
    """Error-threshold percentile adapted to each dataset's anomaly density.

    The paper uses dataset-dependent thresholds (Sec. 5, "Implementation");
    here the percentile tracks the known anomaly ratio of the analogue so the
    alarm budget is comparable across datasets.
    """
    from repro.data import DATASET_REGISTRY

    ratio = DATASET_REGISTRY.get(name).anomaly_fraction
    return float(np.clip(100.0 * (1.0 - 0.75 * ratio), 80.0, 98.5))


def _epoch_budget(detector) -> int:
    """The configured epoch budget of a detector (0 for non-trainable ones)."""
    budget = getattr(detector, "epochs", None)
    if budget is None:
        budget = getattr(getattr(detector, "config", None), "epochs", 0)
    return int(budget or 0)


def _evaluate(detector_factory: Callable[[int], object], dataset, runs: int,
              detector_name: str) -> SweepEntry:
    summary = EvaluationSummary(detector=detector_name, dataset=dataset.name)
    normal_errors, abnormal_errors, train_epochs = [], [], []
    for run in range(runs):
        detector = detector_factory(run)
        detector.fit(dataset.train)
        train_result = getattr(detector, "last_train_result", None)
        if train_result is not None:
            # The early-stopping protocol's contract: a sweep never trains
            # past its epoch budget.
            budget = _epoch_budget(detector)
            assert train_result.epochs_run <= budget, (
                f"{detector_name} on {dataset.name}: trained "
                f"{train_result.epochs_run} epochs, budget is {budget}"
            )
            train_epochs.append(train_result.epochs_run)
        prediction = detector.predict(dataset.test)
        labels = np.asarray(prediction.labels)
        scores = np.asarray(prediction.scores)
        summary.runs.append(evaluate_labels(labels, scores, dataset.test_labels))
        normal_errors.append(float(scores[dataset.test_labels == 0].mean()))
        abnormal_errors.append(float(scores[dataset.test_labels == 1].mean()))
    return SweepEntry(
        detector=detector_name,
        dataset=dataset.name,
        summary=summary,
        mean_error_normal=float(np.mean(normal_errors)),
        mean_error_abnormal=float(np.mean(abnormal_errors)),
        train_epochs=float(np.mean(train_epochs)) if train_epochs else 0.0,
    )


@lru_cache(maxsize=1)
def main_sweep() -> Dict[str, Dict[str, SweepEntry]]:
    """All detectors on all datasets: ``{detector: {dataset: SweepEntry}}``."""
    results: Dict[str, Dict[str, SweepEntry]] = {}
    for dataset_name in bench_datasets():
        dataset = load_dataset(dataset_name, seed=0, scale=BENCH_SCALE)
        percentile = _dataset_percentile(dataset_name)

        entry = _evaluate(
            lambda seed: make_imdiffusion(seed=seed, error_percentile=percentile),
            dataset, BENCH_RUNS, "ImDiffusion")
        results.setdefault("ImDiffusion", {})[dataset_name] = entry

        for baseline_name in BASELINE_REGISTRY:
            entry = _evaluate(
                lambda seed, n=baseline_name: _with_percentile(make_baseline(n, seed), percentile),
                dataset, BENCH_RUNS, baseline_name)
            results.setdefault(baseline_name, {})[dataset_name] = entry
    return results


def _with_percentile(detector, percentile: float):
    if hasattr(detector, "threshold_percentile") and not getattr(detector, "use_pot", False):
        detector.threshold_percentile = percentile
    return detector


@lru_cache(maxsize=1)
def ablation_sweep() -> Dict[str, Dict[str, SweepEntry]]:
    """ImDiffusion ablation variants on all datasets."""
    results: Dict[str, Dict[str, SweepEntry]] = {}
    for dataset_name in bench_datasets():
        dataset = load_dataset(dataset_name, seed=0, scale=BENCH_SCALE)
        percentile = _dataset_percentile(dataset_name)
        for variant_name, overrides in ABLATION_VARIANTS.items():
            entry = _evaluate(
                lambda seed, o=overrides: make_imdiffusion(
                    seed=seed, error_percentile=percentile,
                    **{**ABLATION_BASE_OVERRIDES, **o}),
                dataset, BENCH_RUNS, variant_name)
            results.setdefault(variant_name, {})[dataset_name] = entry
    return results


def print_header(title: str) -> None:
    print("\n" + "=" * 78)
    print(title)
    print("=" * 78)


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
