"""Drift-adaptation benchmark: the closed detect→fine-tune→hot-swap loop.

Two legs over the pinned DRIFT scenario (see ``repro.adaptation.scenario``):

* **adaptation lift** — serve the drifting stream twice from the same
  checkpoint, frozen vs adapted, and require the adapted pass to match or
  beat the frozen F1 on the post-drift tail while publishing a v2 to the
  model registry and hot-swapping without restarting anything.
* **rollback bit-identity** — force every candidate to regress
  (``regression_tolerance=-1``) and require the rolled-back stream to be
  bitwise identical to a stream that never adapted.  The grep-able line
  ``rollback bit-identity ... OK`` is what CI asserts on.

Every run appends its numbers to ``BENCH_adaptation.json`` (path
overridable via ``REPRO_BENCH_ADAPT_OUTPUT``).  Knobs:
``REPRO_BENCH_ADAPT_SCALE`` (dataset length multiplier, default 0.1),
``REPRO_BENCH_ADAPT_SEED`` (default 1) and
``REPRO_BENCH_ADAPT_WORKERS`` (score workers for the rollback leg,
default 1 = in-process).
"""

import json
import os

from repro.adaptation import AdaptationConfig, run_drift_scenario
from repro.serving import ModelRegistry

from ._helpers import print_header, run_once

SCALE = float(os.environ.get("REPRO_BENCH_ADAPT_SCALE", "0.1"))
SEED = int(os.environ.get("REPRO_BENCH_ADAPT_SEED", "1"))
WORKERS = int(os.environ.get("REPRO_BENCH_ADAPT_WORKERS", "1"))
OUTPUT = os.environ.get("REPRO_BENCH_ADAPT_OUTPUT", "BENCH_adaptation.json")

#: The pinned scenario configuration — matches the `repro adapt` defaults.
SCENARIO = dict(dataset="DRIFT", scale=SCALE, seed=SEED, train_fraction=0.25)


def _adaptation(**overrides) -> AdaptationConfig:
    params = dict(policy="default", min_adapt_windows=4, adapt_epochs=2,
                  cooldown_points=96, reference_points=128)
    params.update(overrides)
    return AdaptationConfig(**params)


def _record(payload: dict) -> None:
    """Append this run's numbers to the JSON artifact tracked by CI."""
    history = []
    if os.path.exists(OUTPUT):
        try:
            with open(OUTPUT) as handle:
                history = json.load(handle)
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(payload)
    with open(OUTPUT, "w") as handle:
        json.dump(history, handle, indent=2)


def test_adaptation_beats_frozen_on_post_drift_tail(benchmark, tmp_path):
    """The adapted pass detects drift, publishes v2 and lifts tail F1."""
    registry = ModelRegistry(tmp_path / "registry")
    result = run_once(benchmark, lambda: run_drift_scenario(
        adaptation=_adaptation(), registry=registry, **SCENARIO))

    print_header(f"Drift adaptation lift (DRIFT, scale={SCALE}, seed={SEED})")
    for line in result.summary_lines():
        print(line)

    assert any(e.kind == "drift" for e in result.events)
    adapted_rounds = [r for r in result.records if r.action == "adapted"]
    assert adapted_rounds, "no adaptation round was applied"
    assert result.adapted["f1"] >= result.frozen["f1"]
    assert result.metrics["hot_swaps"] >= len(adapted_rounds)
    assert result.metrics["models_published"] >= len(adapted_rounds) + 1
    # v1 is the frozen baseline; each non-skipped round published the next.
    versions = registry.versions("drift-demo")
    assert versions[0] == 1 and len(versions) >= 2

    _record({
        "benchmark": "adaptation_lift",
        "scale": SCALE,
        "seed": SEED,
        "frozen_f1": result.frozen["f1"],
        "adapted_f1": result.adapted["f1"],
        "drift_events": sum(e.kind == "drift" for e in result.events),
        "adaptations": len(adapted_rounds),
        "hot_swaps": result.metrics["hot_swaps"],
        "published_versions": versions,
    })


def test_forced_rollback_is_bit_identical(benchmark):
    """Rolling back a regressing candidate leaves no trace in the scores."""
    result = run_once(benchmark, lambda: run_drift_scenario(
        adaptation=_adaptation(regression_tolerance=-1.0),
        score_workers=WORKERS, **SCENARIO))

    print_header(f"Forced rollback (DRIFT, scale={SCALE}, seed={SEED}, "
                 f"workers={WORKERS})")
    for line in result.summary_lines():
        print(line)
    verdict = "OK" if result.bit_identical else "FAILED"
    # CI greps for this exact line.
    print(f"rollback bit-identity (rolled-back stream == frozen stream): "
          f"{verdict}")

    attempts = [r for r in result.records if r.action != "skipped"]
    assert attempts and all(r.action == "rolled_back" for r in attempts)
    assert result.bit_identical
    assert result.metrics["rollbacks"] == len(attempts)

    _record({
        "benchmark": "adaptation_rollback_bit_identity",
        "scale": SCALE,
        "seed": SEED,
        "score_workers": WORKERS,
        "rollbacks": len(attempts),
        "bit_identical": result.bit_identical,
    })
