"""Analytics benchmark: incremental operators vs full recompute per poll.

The analytics layer promises O(window)-amortized updates where a naive
consumer would recompute every window function from scratch whenever it
needs fresh outputs.  Two properties are validated and recorded:

* streaming a 10k-point score stream through the incremental operator
  pipeline is at least 5x faster than recomputing the reference pipeline
  over the full history at every poll (the outputs are bitwise identical —
  asserted, not assumed),
* the per-append incremental update (operators + a composite alert policy)
  stays within a fixed latency budget, independent of stream length.

Every run appends its numbers to ``BENCH_analytics.json`` (path overridable
via ``REPRO_BENCH_ANALYTICS_OUTPUT``) so CI can archive the trajectory.
``REPRO_BENCH_ANALYTICS_POINTS`` shrinks the stream for smoke runs.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.analytics import apply_pipeline, parse_pipeline, parse_policy

from ._helpers import print_header, run_once

POINTS = int(os.environ.get("REPRO_BENCH_ANALYTICS_POINTS", "10000"))
OUTPUT = os.environ.get("REPRO_BENCH_ANALYTICS_OUTPUT", "BENCH_analytics.json")
#: How often the naive consumer recomputes (every poll sees fresh points).
RECOMPUTE_EVERY = int(os.environ.get("REPRO_BENCH_ANALYTICS_POLL", "512"))
#: Required incremental-vs-recompute advantage.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_ANALYTICS_MIN_SPEEDUP", "5.0"))
#: Per-append latency budget (milliseconds) of the incremental hot path.
BUDGET_MS = float(os.environ.get("REPRO_BENCH_ANALYTICS_BUDGET_MS", "2.0"))

PIPELINE = "mean:64,quantile:64:95,ewma:0.3"
POLICY = ("score > 2.0 and (hysteresis(up=2.0, down=0.5) "
          "or episode(threshold=2.0, min_len=2, gap=2))")


def _scores(length: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    scores = np.abs(rng.standard_normal(length))
    spikes = rng.choice(length, size=max(1, length // 50), replace=False)
    scores[spikes] += rng.uniform(3.0, 10.0, spikes.shape[0])
    return scores


def _record(payload: dict) -> None:
    """Append this run's numbers to the JSON artifact tracked by CI."""
    history = []
    if os.path.exists(OUTPUT):
        try:
            with open(OUTPUT) as handle:
                history = json.load(handle)
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(payload)
    with open(OUTPUT, "w") as handle:
        json.dump(history, handle, indent=2)


def test_incremental_vs_recompute_speedup(benchmark):
    """Streaming updates must beat per-poll full recompute by >= MIN_SPEEDUP."""
    scores = _scores(POINTS, seed=1)

    def run():
        # Incremental: every point streams through the stateful operators
        # exactly once, regardless of how often outputs are consumed.
        operators = parse_pipeline(PIPELINE)
        started = time.perf_counter()
        incremental = {op.describe(): np.empty(POINTS) for op in operators}
        for op in operators:
            op.reset()
        for t in range(POINTS):
            value = scores[t]
            for op in operators:
                incremental[op.describe()][t] = op.update(value)
        incremental_seconds = max(time.perf_counter() - started, 1e-9)

        # Naive: at every poll the consumer recomputes the reference over
        # the whole history so far (the cost an offline SQL engine pays).
        reference_ops = parse_pipeline(PIPELINE)
        started = time.perf_counter()
        recomputed = {}
        for poll_end in range(RECOMPUTE_EVERY, POINTS + 1, RECOMPUTE_EVERY):
            recomputed = apply_pipeline(reference_ops, scores[:poll_end],
                                        engine="reference")
        if POINTS % RECOMPUTE_EVERY:
            recomputed = apply_pipeline(reference_ops, scores,
                                        engine="reference")
        recompute_seconds = max(time.perf_counter() - started, 1e-9)
        return incremental, recomputed, incremental_seconds, recompute_seconds

    incremental, recomputed, incremental_seconds, recompute_seconds = \
        run_once(benchmark, run)
    speedup = recompute_seconds / incremental_seconds

    # Correctness first: the fast path must produce the bitwise-identical
    # outputs the naive consumer ends up with.
    for name, values in incremental.items():
        assert np.array_equal(values, recomputed[name], equal_nan=True), name

    polls = POINTS // RECOMPUTE_EVERY + (1 if POINTS % RECOMPUTE_EVERY else 0)
    print_header(f"Analytics: incremental stream vs full recompute per poll "
                 f"({POINTS} points, poll every {RECOMPUTE_EVERY})")
    print(f"incremental      : {incremental_seconds * 1000:8.1f} ms "
          f"({POINTS / incremental_seconds:10.0f} points/s)")
    print(f"full recompute   : {recompute_seconds * 1000:8.1f} ms "
          f"({polls} polls)")
    print(f"speedup          : {speedup:8.1f}x")

    _record({
        "benchmark": "incremental_vs_recompute",
        "points": POINTS,
        "pipeline": PIPELINE,
        "recompute_every": RECOMPUTE_EVERY,
        "incremental_seconds": incremental_seconds,
        "recompute_seconds": recompute_seconds,
        "speedup": speedup,
    })

    assert speedup >= MIN_SPEEDUP, (
        f"incremental pipeline is only {speedup:.1f}x faster than per-poll "
        f"recompute (expected >= {MIN_SPEEDUP}x on {POINTS} points)")


def test_per_append_latency_budget(benchmark):
    """The full hot path (operators + policy) must stay under BUDGET_MS."""
    scores = _scores(POINTS, seed=2)

    def run():
        operators = parse_pipeline(PIPELINE)
        monitor = parse_policy(POLICY, name="bench").monitor("bench")
        latencies = np.empty(POINTS)
        events = 0
        for t in range(POINTS):
            value = float(scores[t])
            started = time.perf_counter()
            for op in operators:
                op.update(value)
            events += len(monitor.update(t, value))
            latencies[t] = time.perf_counter() - started
        return latencies, events

    latencies, events = run_once(benchmark, run)
    mean_ms = float(latencies.mean() * 1000)
    p99_ms = float(np.percentile(latencies, 99) * 1000)
    # Amortized-O(window) means the tail of the stream is no slower than the
    # head: compare the mean latency of the two halves.
    head_ms = float(latencies[:POINTS // 2].mean() * 1000)
    tail_ms = float(latencies[POINTS // 2:].mean() * 1000)

    print_header(f"Analytics: per-append latency "
                 f"({POINTS} points, pipeline + composite policy)")
    print(f"mean             : {mean_ms * 1000:8.1f} us")
    print(f"p99              : {p99_ms * 1000:8.1f} us")
    print(f"head/tail mean   : {head_ms * 1000:8.1f} / {tail_ms * 1000:8.1f} us")
    print(f"alert edges      : {events:8d}")

    _record({
        "benchmark": "per_append_latency",
        "points": POINTS,
        "pipeline": PIPELINE,
        "policy": POLICY,
        "mean_ms": mean_ms,
        "p99_ms": p99_ms,
        "head_half_mean_ms": head_ms,
        "tail_half_mean_ms": tail_ms,
        "alert_edges": events,
        "budget_ms": BUDGET_MS,
    })

    assert p99_ms <= BUDGET_MS, (
        f"p99 per-append latency {p99_ms:.3f} ms exceeds the "
        f"{BUDGET_MS:.1f} ms budget")
    # Latency must not grow with stream age (no hidden O(n) state).
    assert tail_ms <= 5.0 * max(head_ms, 1e-6), (
        f"per-append latency grew with the stream: head {head_ms:.4f} ms "
        f"vs tail {tail_ms:.4f} ms")
