"""Bench matrix smoke: a tiny grid through the runner + parallel bit-identity.

Two CI-facing guarantees live here:

* :func:`repro.evaluation.run_bench_matrix` sweeps a small detector ×
  dataset × sampler × workers grid end-to-end and serialises ONE
  schema-versioned ``BENCH_matrix.json`` (path overridable via
  ``REPRO_BENCH_MATRIX_OUTPUT``) — the artifact CI uploads,
* every baseline that gained a :class:`~repro.training.ParallelLossSpec`
  in the universal-parallelism refactor trains **bit-identically** through
  the spec path at one worker vs its frozen serial closure.  Each check
  prints a greppable line::

      bit-identity (frozen serial loop vs ParallelLossSpec num_workers=1) [OmniAnomaly]: OK

  which the CI job asserts on (run pytest with ``-s``).

Environment knobs: ``REPRO_BENCH_MATRIX_SCALE`` (default 0.04) and
``REPRO_BENCH_MATRIX_OUTPUT``.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.data import load_dataset
from repro.evaluation import (
    BENCH_SCHEMA_VERSION,
    bench_detector_factory,
    run_bench_matrix,
    write_bench_matrix,
)

MATRIX_SCALE = float(os.environ.get("REPRO_BENCH_MATRIX_SCALE", "0.04"))
OUTPUT = os.environ.get("REPRO_BENCH_MATRIX_OUTPUT", "BENCH_matrix.json")

#: The baselines newly factored onto the spec path by this refactor; the
#: other spec baselines (LSTM-AD, MSCRED, MTAD-GAT, TranAD) are covered by
#: the unit suite.
NEWLY_PARALLEL = ["OmniAnomaly", "InterFusion", "MAD-GAN", "BeatGAN", "GDN"]


class TestBenchMatrix:
    def test_tiny_grid_writes_single_artifact(self):
        result = run_bench_matrix(
            ["ImDiffusion", "OmniAnomaly"], ["SMD", "GCP"],
            samplers=("full", "ddim"), workers=(1, 2),
            scale=MATRIX_SCALE, progress=print)
        write_bench_matrix(result, OUTPUT)

        with open(OUTPUT) as handle:
            loaded = json.load(handle)
        assert loaded["schema"] == "repro.bench_matrix"
        assert loaded["schema_version"] == BENCH_SCHEMA_VERSION
        assert loaded["num_cells"] == 2 * 2 * 2 * 2
        assert loaded["num_cells"] == len(loaded["cells"])
        # ImDiffusion honours every cell; OmniAnomaly has no sampler knob,
        # so its ddim cells are marked skipped rather than re-run.
        ran = [c for c in loaded["cells"] if not c["skipped"]]
        skipped = [c for c in loaded["cells"] if c["skipped"]]
        assert len(ran) == 8 + 4
        assert all(c["detector"] == "OmniAnomaly" and c["sampler"] == "ddim"
                   for c in skipped)
        assert all(c["metrics"] is None for c in skipped)
        for cell in ran:
            assert 0.0 <= cell["metrics"]["f1"] <= 1.0
            assert cell["metrics"]["train_seconds"] >= 0.0
        print(f"\nBENCH_matrix.json: {len(ran)} cells run, "
              f"{len(skipped)} skipped (schema v{loaded['schema_version']})")

    def test_worker_cells_match_serial_metrics(self):
        with open(OUTPUT) as handle:
            cells = json.load(handle)["cells"]

        def metric(detector, workers):
            for cell in cells:
                if (cell["detector"] == detector and cell["sampler"] == "full"
                        and cell["num_workers"] == workers
                        and cell["dataset"] == "SMD"):
                    return cell["metrics"]
            raise AssertionError(f"missing cell {detector}/{workers}")

        for detector in ("ImDiffusion", "OmniAnomaly"):
            serial, parallel = metric(detector, 1), metric(detector, 2)
            for key in ("precision", "recall", "f1", "r_auc_pr"):
                assert abs(serial[key] - parallel[key]) < 1e-6, (detector, key)


class TestSpecBitIdentity:
    def test_newly_parallel_baselines_bit_identical_at_one_worker(self):
        train = load_dataset("GCP", seed=0, scale=0.04).train
        print()
        for name in NEWLY_PARALLEL:
            serial = bench_detector_factory(name, 0).fit(train)
            spec = bench_detector_factory(name, 0)
            spec._force_parallel_spec = True
            spec.fit(train)

            parameters = list(zip(serial._trainer_parameters(),
                                  spec._trainer_parameters()))
            if getattr(type(serial), "_adversary_loss_method", None) is not None:
                parameters += list(zip(serial._adversary_parameters(),
                                       spec._adversary_parameters()))
            identical = (
                all(np.array_equal(b.data, a.data) for a, b in parameters)
                and spec.train_losses == serial.train_losses)
            print("bit-identity (frozen serial loop vs ParallelLossSpec "
                  f"num_workers=1) [{name}]: {'OK' if identical else 'FAIL'}")
            assert identical, name
