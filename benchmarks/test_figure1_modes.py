"""Figure 1: reconstruction vs forecasting vs imputation modelling of a time series.

The figure in the paper shows that on the same series the imputation approach
achieves lower prediction error in the normal range (a crisper decision
boundary) and therefore identifies the anomalous period that the other modes
miss.  This benchmark trains the three modelling modes on one synthetic series
and prints, for each mode, the mean predicted error on normal vs anomalous
timestamps and whether the anomaly is detected.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import MTSConfig, generate_mts, inject_anomalies
from repro.evaluation import precision_recall_f1

from ._helpers import make_imdiffusion, print_header, run_once

MODES = ("imputation", "forecasting", "reconstruction")


def _make_series():
    rng = np.random.default_rng(5)
    config = MTSConfig(length=900, num_features=6, noise_scale=0.05)
    series = generate_mts(config, rng)
    train, test = series[:500], series[500:]
    test, labels, _ = inject_anomalies(test, rng, anomaly_types=("level_shift",),
                                       anomaly_fraction=0.08, min_length=20, max_length=40)
    return train, test, labels


def _run_modes():
    train, test, labels = _make_series()
    rows = {}
    for mode in MODES:
        detector = make_imdiffusion(seed=0, mode=mode, error_percentile=93.0)
        result = detector.fit_predict(train, test)
        scores = result.scores
        rows[mode] = {
            "error_normal": float(scores[labels == 0].mean()),
            "error_abnormal": float(scores[labels == 1].mean()),
            "f1": precision_recall_f1(result.labels, labels).f1,
        }
    return rows


@pytest.mark.benchmark(group="figure1")
def test_figure1_modelling_modes(benchmark):
    rows = run_once(benchmark, _run_modes)

    print_header("Figure 1 — reconstruction / forecasting / imputation modelling")
    print(f"{'mode':16s} {'err(normal)':>12s} {'err(anomaly)':>13s} {'gap ratio':>10s} {'F1':>7s}")
    for mode, row in rows.items():
        gap = row["error_abnormal"] / max(row["error_normal"], 1e-9)
        print(f"{mode:16s} {row['error_normal']:12.4f} {row['error_abnormal']:13.4f} "
              f"{gap:10.2f} {row['f1']:7.3f}")

    # Shape check: imputation separates anomalies from normal data at least as
    # well as reconstruction (the paper's motivating observation).
    imputation_gap = rows["imputation"]["error_abnormal"] / max(rows["imputation"]["error_normal"], 1e-9)
    reconstruction_gap = rows["reconstruction"]["error_abnormal"] / max(rows["reconstruction"]["error_normal"], 1e-9)
    assert imputation_gap >= 0.8 * reconstruction_gap
