"""Figure 2: conditional vs unconditional imputed diffusion on an example series.

The paper's Fig. 2 shows that the unconditional model produces a much larger
imputed-error contrast between the anomalous period and the normal period
than the conditional model, which is what makes thresholding easier.  This
benchmark trains both variants on the same series and prints the error
statistics on normal / anomalous timestamps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import MTSConfig, generate_mts, inject_anomalies

from ._helpers import make_imdiffusion, print_header, run_once


def _make_series():
    rng = np.random.default_rng(11)
    config = MTSConfig(length=800, num_features=5, noise_scale=0.05)
    series = generate_mts(config, rng)
    train, test = series[:450], series[450:]
    test, labels, _ = inject_anomalies(test, rng, anomaly_types=("level_shift", "spike"),
                                       anomaly_fraction=0.1, min_length=10, max_length=30)
    return train, test, labels


def _run_conditioning():
    train, test, labels = _make_series()
    rows = {}
    for conditioning in ("unconditional", "conditional"):
        detector = make_imdiffusion(seed=0, conditioning=conditioning, error_percentile=92.0)
        result = detector.fit_predict(train, test)
        scores = result.scores
        rows[conditioning] = {
            "error_normal": float(scores[labels == 0].mean()),
            "error_abnormal": float(scores[labels == 1].mean()),
        }
    return rows


@pytest.mark.benchmark(group="figure2")
def test_figure2_conditional_vs_unconditional(benchmark):
    rows = run_once(benchmark, _run_conditioning)

    print_header("Figure 2 — conditional vs unconditional imputed diffusion")
    print(f"{'variant':16s} {'err(normal)':>12s} {'err(anomaly)':>13s} {'difference':>11s}")
    for variant, row in rows.items():
        difference = row["error_abnormal"] - row["error_normal"]
        print(f"{variant:16s} {row['error_normal']:12.4f} {row['error_abnormal']:13.4f} "
              f"{difference:11.4f}")

    # Shape check: the unconditional variant widens the normal/abnormal error
    # difference relative to its own normal level at least as much as the
    # conditional one (the paper's Fig. 2 / Fig. 9 observation).
    unconditional = rows["unconditional"]
    conditional = rows["conditional"]
    unconditional_ratio = unconditional["error_abnormal"] / max(unconditional["error_normal"], 1e-9)
    conditional_ratio = conditional["error_abnormal"] / max(conditional["error_normal"], 1e-9)
    assert unconditional_ratio >= 0.8 * conditional_ratio
