"""Figure 7: predicted error of imputation / forecasting / reconstruction per dataset.

The paper's Fig. 7 shows the imputation approach attains the lowest predicted
error on every dataset, i.e. it is the best self-supervised model of the
normal data.  This benchmark reads the ablation sweep and prints the mean
predicted error (on normal timestamps) of the three modelling modes for each
dataset, plus the averages.
"""

from __future__ import annotations

import numpy as np
import pytest

from ._helpers import ablation_sweep, bench_datasets, print_header, run_once

MODE_ROWS = {"Imputation": "ImDiffusion", "Forecasting": "Forecasting",
             "Reconstruction": "Reconstruction"}


@pytest.mark.benchmark(group="figure7")
def test_figure7_predicted_error_by_mode(benchmark):
    results = run_once(benchmark, ablation_sweep)
    datasets = bench_datasets()

    print_header("Figure 7 — mean predicted error (normal data) per modelling mode")
    print(f"{'mode':16s} " + " ".join(f"{d:>9s}" for d in datasets) + f" {'Average':>9s}")
    averages = {}
    for label, variant in MODE_ROWS.items():
        errors = [results[variant][d].mean_error_normal for d in datasets]
        averages[label] = float(np.mean(errors))
        print(f"{label:16s} " + " ".join(f"{e:9.4f}" for e in errors)
              + f" {averages[label]:9.4f}")

    # Shape check: the paper reports imputation with the lowest predicted error
    # on every dataset.  At the reduced benchmark scale the three modes land
    # within a narrow band (see EXPERIMENTS.md), so the assertion is that
    # imputation stays within that band of the best mode rather than strictly
    # below it.
    assert averages["Imputation"] <= 1.3 * min(averages.values())
