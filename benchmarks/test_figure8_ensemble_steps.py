"""Figure 8: step-wise ensemble inference on one example window.

The paper's Fig. 8 walks through the ensemble voting mechanism: the
per-denoising-step predictions, the per-step anomaly labels and the final
vote aggregation that removes false positives present at individual steps.
This benchmark trains a small detector on an SMD-analogue series, scores a
test segment and prints the per-step errors / votes around the true anomaly,
plus how many timestamps flagged by the final step alone are filtered out by
the vote.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EnsembleVoter
from repro.data import load_dataset

from ._helpers import BENCH_SCALE, make_imdiffusion, print_header, run_once


def _run_ensemble_example():
    dataset = load_dataset("SMD", seed=0, scale=BENCH_SCALE)
    detector = make_imdiffusion(seed=0, error_percentile=96.0, deterministic_inference=False,
                                collect="sample")
    detector.fit(dataset.train)
    step_errors = detector.score(dataset.test)

    voter = EnsembleVoter(error_percentile=96.0, vote_fraction=0.5, step_stride=3,
                          last_fraction=0.6)
    decision = voter.vote(step_errors)
    single = voter.single_step_labels(step_errors)
    return dataset, step_errors, decision, single


@pytest.mark.benchmark(group="figure8")
def test_figure8_ensemble_voting(benchmark):
    dataset, step_errors, decision, single = run_once(benchmark, _run_ensemble_example)

    print_header("Figure 8 — step-wise predictions and ensemble voting (SMD analogue)")
    print(f"voting steps (denoising progress): {decision.voting_steps}")
    print(f"vote threshold xi: > {decision.vote_threshold:.1f} of {len(decision.voting_steps)} votes")
    print(f"\n{'step':>6s} {'threshold':>10s} {'mean err':>10s} {'# flagged':>10s}")
    for step in decision.voting_steps:
        errors = step_errors[step]
        print(f"{step:6d} {decision.step_thresholds[step]:10.4f} {errors.mean():10.4f} "
              f"{int(decision.step_labels[step].sum()):10d}")

    true = dataset.test_labels
    final_fp = int(((single == 1) & (true == 0)).sum())
    vote_fp = int(((decision.labels == 1) & (true == 0)).sum())
    print(f"\nfalse positives, final step only : {final_fp}")
    print(f"false positives, ensemble vote   : {vote_fp}")
    print(f"true anomaly timestamps flagged  : {int(((decision.labels == 1) & (true == 1)).sum())}"
          f" / {int(true.sum())}")

    # Shape check: voting never increases the false-positive count of the
    # single-step decision (the mechanism Fig. 8 illustrates).
    assert vote_fp <= final_fp
    assert decision.votes.max() <= len(decision.voting_steps)
