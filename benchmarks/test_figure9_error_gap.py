"""Figure 9: normal vs abnormal predicted error for conditional / unconditional models.

The paper's Fig. 9 compares, averaged over all datasets, the predicted error
of the conditional and unconditional imputed diffusion models on normal data,
abnormal data, and their difference.  The unconditional model yields a larger
(relative) error gap, which is why ImDiffusion adopts it.  This benchmark
prints the same four bars for both variants using the ablation sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from ._helpers import ablation_sweep, bench_datasets, print_header, run_once

VARIANTS = {"Unconditional": "ImDiffusion", "Conditional": "Conditional"}


@pytest.mark.benchmark(group="figure9")
def test_figure9_error_gap(benchmark):
    results = run_once(benchmark, ablation_sweep)
    datasets = bench_datasets()

    print_header("Figure 9 — predicted error on normal/abnormal data (average over datasets)")
    print(f"{'variant':16s} {'overall':>9s} {'normal':>9s} {'abnormal':>9s} "
          f"{'abn-norm':>9s} {'abn/norm':>9s}")
    stats = {}
    for label, variant in VARIANTS.items():
        normal = float(np.mean([results[variant][d].mean_error_normal for d in datasets]))
        abnormal = float(np.mean([results[variant][d].mean_error_abnormal for d in datasets]))
        overall = 0.5 * (normal + abnormal)
        stats[label] = {"normal": normal, "abnormal": abnormal}
        print(f"{label:16s} {overall:9.4f} {normal:9.4f} {abnormal:9.4f} "
              f"{abnormal - normal:9.4f} {abnormal / max(normal, 1e-9):9.2f}")

    # Shape check: the unconditional model keeps at least as strong a relative
    # contrast between abnormal and normal errors as the conditional one.
    unc = stats["Unconditional"]
    con = stats["Conditional"]
    unc_ratio = unc["abnormal"] / max(unc["normal"], 1e-9)
    con_ratio = con["abnormal"] / max(con["normal"], 1e-9)
    assert unc_ratio >= 0.8 * con_ratio
