"""Inference-engine benchmark: strided sampling + no_grad scoring speedup.

Three properties of the grad-free vectorized inference engine are validated
and recorded:

* end-to-end ``DiffusionDetector.score`` with the strided sampler at an
  effective stride of 4 (``num_inference_steps = num_steps / 4``) is at
  least 3x faster than the full trajectory,
* the strided sampler at stride 1 is *bit-identical* to the full trajectory
  (the engine is a strict superset of the paper's algorithm),
* a ``no_grad`` denoiser forward pass is faster than the grad-recording one
  (the closure/graph bookkeeping is really skipped).

Every run appends its numbers to ``BENCH_inference.json`` (path overridable
via ``REPRO_BENCH_INFER_OUTPUT``) so CI can archive the perf trajectory
across PRs.  ``REPRO_BENCH_INFER_POINTS`` shrinks the scored series for
smoke runs.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.nn import no_grad

from ._helpers import print_header, run_once

POINTS = int(os.environ.get("REPRO_BENCH_INFER_POINTS", "1536"))
OUTPUT = os.environ.get("REPRO_BENCH_INFER_OUTPUT", "BENCH_inference.json")
NUM_STEPS = 20
STRIDE = 4


def _engine_config(**overrides) -> ImDiffusionConfig:
    base = dict(
        window_size=32, num_steps=NUM_STEPS, epochs=1, hidden_dim=16,
        num_blocks=1, num_heads=2, max_train_windows=16,
        num_masked_windows=2, num_unmasked_windows=2, batch_size=32,
        deterministic_inference=True, collect="x0", seed=0)
    base.update(overrides)
    return ImDiffusionConfig(**base)


def _series(length: int, num_channels: int = 4, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 64)[:, None] * np.ones((1, num_channels))
    return base + 0.05 * rng.standard_normal((length, num_channels))


def _fit(config: ImDiffusionConfig) -> ImDiffusionDetector:
    return ImDiffusionDetector(config).fit(_series(320, seed=1))


def _timed_score(detector: ImDiffusionDetector, test: np.ndarray):
    started = time.perf_counter()
    step_errors = detector.score(test)
    return step_errors, max(time.perf_counter() - started, 1e-9)


def _record(payload: dict) -> None:
    """Append this run's numbers to the JSON artifact tracked by CI."""
    history = []
    if os.path.exists(OUTPUT):
        try:
            with open(OUTPUT) as handle:
                history = json.load(handle)
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(payload)
    with open(OUTPUT, "w") as handle:
        json.dump(history, handle, indent=2)


def test_strided_no_grad_scoring_speedup(benchmark):
    """Stride 4 + no_grad must deliver >= 3x end-to-end score() speedup."""
    test = _series(POINTS, seed=2)

    def run():
        full = _fit(_engine_config())
        _, full_seconds = _timed_score(full, test)

        strided = _fit(_engine_config(
            sampler="strided", num_inference_steps=NUM_STEPS // STRIDE))
        _, strided_seconds = _timed_score(strided, test)
        return full_seconds, strided_seconds

    full_seconds, strided_seconds = run_once(benchmark, run)
    speedup = full_seconds / strided_seconds

    print_header(f"Inference engine: strided (T/{STRIDE}) vs full trajectory "
                 f"({POINTS} points, T={NUM_STEPS})")
    print(f"full trajectory  : {full_seconds * 1000:8.1f} ms "
          f"({POINTS / full_seconds:8.0f} points/s)")
    print(f"strided sampler  : {strided_seconds * 1000:8.1f} ms "
          f"({POINTS / strided_seconds:8.0f} points/s)")
    print(f"speedup          : {speedup:8.1f}x")

    _record({
        "benchmark": "strided_no_grad_scoring_speedup",
        "points": POINTS,
        "num_steps": NUM_STEPS,
        "num_inference_steps": NUM_STEPS // STRIDE,
        "full_seconds": full_seconds,
        "strided_seconds": strided_seconds,
        "speedup": speedup,
    })

    assert speedup >= 3.0, (
        f"strided sampler is only {speedup:.1f}x faster than the full "
        f"trajectory (expected >= 3x at stride {STRIDE})")


def test_stride_one_scores_bit_identical(benchmark):
    """The engine at stride 1 reproduces the full trajectory exactly."""
    test = _series(min(POINTS, 512), seed=3)

    def run():
        full = _fit(_engine_config())
        full_errors, _ = _timed_score(full, test)
        stride1 = _fit(_engine_config(
            sampler="strided", num_inference_steps=NUM_STEPS))
        stride1_errors, _ = _timed_score(stride1, test)
        return full_errors, stride1_errors

    full_errors, stride1_errors = run_once(benchmark, run)

    assert sorted(full_errors) == sorted(stride1_errors)
    max_delta = 0.0
    for key in full_errors:
        np.testing.assert_array_equal(stride1_errors[key], full_errors[key])
        delta = float(np.max(np.abs(stride1_errors[key] - full_errors[key])))
        max_delta = max(max_delta, delta)

    print_header("Inference engine: stride-1 regression (bit-identity)")
    print(f"max |stride1 - full| over {len(full_errors)} steps: {max_delta:.1e}")

    _record({
        "benchmark": "stride_one_bit_identity",
        "points": int(test.shape[0]),
        "num_steps": NUM_STEPS,
        "max_abs_delta": max_delta,
    })


def test_no_grad_forward_is_faster(benchmark):
    """A graph-free denoiser forward must beat the grad-recording one."""
    detector = _fit(_engine_config())
    model = detector.model
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 2, 4, 32))
    steps = rng.integers(1, NUM_STEPS + 1, size=32)
    policies = rng.integers(0, 2, size=32)
    repeats = 8

    def run():
        model(x, steps, policies)  # warm-up
        started = time.perf_counter()
        for _ in range(repeats):
            model(x, steps, policies)
        grad_seconds = time.perf_counter() - started

        with no_grad():
            model(x, steps, policies)  # warm-up
            started = time.perf_counter()
            for _ in range(repeats):
                model(x, steps, policies)
            no_grad_seconds = time.perf_counter() - started
        return grad_seconds, no_grad_seconds

    grad_seconds, no_grad_seconds = run_once(benchmark, run)
    ratio = grad_seconds / max(no_grad_seconds, 1e-9)

    print_header("Inference engine: denoiser forward, grad vs no_grad "
                 f"(batch 32, {repeats} repeats)")
    print(f"grad-recording : {grad_seconds * 1000:8.1f} ms")
    print(f"no_grad        : {no_grad_seconds * 1000:8.1f} ms")
    print(f"ratio          : {ratio:8.2f}x")

    _record({
        "benchmark": "no_grad_forward",
        "grad_seconds": grad_seconds,
        "no_grad_seconds": no_grad_seconds,
        "ratio": ratio,
    })

    # The exact margin is machine-dependent; just require a real win.
    assert no_grad_seconds < grad_seconds, (
        f"no_grad forward ({no_grad_seconds:.3f}s) is not faster than the "
        f"grad-recording forward ({grad_seconds:.3f}s)")
