"""Parallel-training benchmark: worker-count bit-identity + fit speedup.

Two properties of the data-parallel engine are validated and recorded:

* **bit-identity** — a :class:`~repro.training.ParallelTrainer` at
  ``num_workers=1`` must reproduce a serial :class:`~repro.training.Trainer`
  run bit for bit (same parameters, same loss curve): the draw/compute
  factoring of the loss spec is a pure refactor of the serial closure.  CI
  greps the ``bit-identity`` line this test prints.
* **speedup** — an end-to-end ``ImDiffusionDetector.fit`` sharded across
  spawned gradient workers must beat the serial fit wall-clock (target
  1.5x at 4 workers; the gate adapts to the machine's core count, because a
  single-core runner cannot speed anything up by adding processes).

Every run appends its numbers to ``BENCH_parallel.json`` (path overridable
via ``REPRO_BENCH_PARALLEL_OUTPUT``).  ``REPRO_BENCH_PARALLEL_WINDOWS``,
``REPRO_BENCH_PARALLEL_EPOCHS`` and ``REPRO_BENCH_PARALLEL_WORKERS`` resize
the speedup workload; ``REPRO_BENCH_PARALLEL_MIN_SPEEDUP`` overrides the
gate.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.core.detector import ImputationLossSpec
from repro.diffusion import GaussianDiffusion, ImputedDiffusion, make_schedule
from repro.models import ImTransformer
from repro.nn import Adam
from repro.training import ParallelTrainer, Trainer, WindowLoader

from ._helpers import print_header, run_once

NUM_WINDOWS = int(os.environ.get("REPRO_BENCH_PARALLEL_WINDOWS", "192"))
NUM_EPOCHS = int(os.environ.get("REPRO_BENCH_PARALLEL_EPOCHS", "2"))
NUM_WORKERS = int(os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "4"))
OUTPUT = os.environ.get("REPRO_BENCH_PARALLEL_OUTPUT", "BENCH_parallel.json")
SPEEDUP_TARGET = 1.5

# A machine whose pool does not fit in its cores cannot win by adding
# processes: the core-count guard always disables the gate there, and the
# env knob only tunes the threshold used on capable machines (default 1.2
# rather than the 1.5 target, as shared CI runners are noisy).
_CORES = os.cpu_count() or 1
if _CORES < NUM_WORKERS:
    MIN_SPEEDUP = 0.0
else:
    MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_PARALLEL_MIN_SPEEDUP", "1.2"))


def _record(payload: dict) -> None:
    """Append this run's numbers to the JSON artifact tracked by CI."""
    history = []
    if os.path.exists(OUTPUT):
        try:
            with open(OUTPUT) as handle:
                history = json.load(handle)
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(payload)
    with open(OUTPUT, "w") as handle:
        json.dump(history, handle, indent=2)


def _imputation_stack(seed: int):
    """A small but real denoiser/diffusion/mask stack, deterministically built."""
    rng = np.random.default_rng(seed)
    num_features, window = 6, 16
    model = ImTransformer(num_features=num_features, hidden_dim=12,
                          num_blocks=1, num_heads=2, num_policies=4, rng=rng)
    diffusion = GaussianDiffusion(make_schedule("quadratic", 6))
    imputer = ImputedDiffusion(model, diffusion)
    mask_rng = np.random.default_rng(99)
    masks_arr = (mask_rng.random((4, window, num_features)) < 0.5).astype(np.float64)
    windows = np.random.default_rng(7).standard_normal((24, window, num_features))
    return rng, imputer, masks_arr, windows


def test_single_worker_bit_identity(benchmark):
    """ParallelTrainer(num_workers=1) must equal the serial Trainer bitwise."""

    def run():
        # --- serial engine: the pre-parallel loss closure -------------------
        rng_a, imputer_a, masks_arr, windows = _imputation_stack(0)
        num_policies = masks_arr.shape[0]

        def legacy_loss(batch, state):
            policies = rng_a.integers(0, num_policies, size=batch.data.shape[0])
            return imputer_a.training_loss(batch.data, masks_arr[policies],
                                           policies, rng_a)

        params_a = imputer_a.model.parameters()
        serial = Trainer(params_a, Adam(params_a, lr=1e-3), legacy_loss,
                         grad_clip=5.0, rng=rng_a)
        serial.fit(WindowLoader(windows, batch_size=8, rng=rng_a), epochs=3)

        # --- parallel engine at one worker: draw/compute spec ---------------
        rng_b, imputer_b, _, _ = _imputation_stack(0)
        spec = ImputationLossSpec(imputer_b, masks_arr)
        params_b = imputer_b.model.parameters()
        parallel = ParallelTrainer(params_b, Adam(params_b, lr=1e-3), spec,
                                   num_workers=1, grad_clip=5.0, rng=rng_b)
        parallel.fit(WindowLoader(windows, batch_size=8, rng=rng_b), epochs=3)
        return serial, parallel

    serial, parallel = run_once(benchmark, run)

    print_header("Parallel training: serial Trainer vs ParallelTrainer(num_workers=1)")
    identical = (
        all(np.array_equal(a.data, b.data)
            for a, b in zip(serial.parameters, parallel.parameters))
        and serial.state.epoch_losses == parallel.state.epoch_losses
        and serial.rng.bit_generator.state == parallel.rng.bit_generator.state
    )
    print(f"serial losses  : {[f'{loss:.12f}' for loss in serial.state.epoch_losses]}")
    print(f"parallel losses: {[f'{loss:.12f}' for loss in parallel.state.epoch_losses]}")
    print("bit-identity (serial Trainer vs ParallelTrainer num_workers=1): "
          + ("OK" if identical else "FAILED"))

    _record({
        "benchmark": "parallel_bit_identity",
        "epochs": 3,
        "bit_identical": bool(identical),
        "final_loss": serial.state.epoch_losses[-1],
    })
    assert identical, (
        "ParallelTrainer at num_workers=1 diverged from the serial Trainer"
    )


def test_multiworker_fit_speedup(benchmark):
    """End-to-end detector fit must get faster when sharded across workers."""
    rng = np.random.default_rng(0)
    length = NUM_WINDOWS * 10 + 64
    series = (np.sin(np.arange(length) / 20.0)[:, None] * np.ones((1, 16))
              + 0.1 * rng.standard_normal((length, 16)))

    def config(num_workers):
        return ImDiffusionConfig(
            window_size=32, num_steps=8, epochs=NUM_EPOCHS, hidden_dim=32,
            num_blocks=2, num_heads=4, batch_size=64,
            max_train_windows=NUM_WINDOWS, train_stride=10,
            num_workers=num_workers, seed=0)

    def timed_fit(num_workers):
        detector = ImDiffusionDetector(config(num_workers))
        started = time.perf_counter()
        detector.fit(series)
        return detector, time.perf_counter() - started

    def run():
        serial_detector, serial_seconds = timed_fit(1)
        parallel_detector, parallel_seconds = timed_fit(NUM_WORKERS)
        return serial_detector, serial_seconds, parallel_detector, parallel_seconds

    serial_detector, serial_seconds, parallel_detector, parallel_seconds = \
        run_once(benchmark, run)
    speedup = serial_seconds / max(parallel_seconds, 1e-9)

    # The sharded run follows the same random stream; parameters may differ
    # only by float summation order in the gradient average.
    max_diff = max(
        float(np.abs(a.data - b.data).max())
        for a, b in zip(serial_detector.model.parameters(),
                        parallel_detector.model.parameters()))

    print_header(f"Parallel training: end-to-end fit, 1 vs {NUM_WORKERS} workers "
                 f"({NUM_WINDOWS} windows x {NUM_EPOCHS} epochs, "
                 f"{_CORES} cores available)")
    print(f"serial fit (1 worker)       : {serial_seconds:8.2f}s")
    print(f"parallel fit ({NUM_WORKERS} workers)    : {parallel_seconds:8.2f}s")
    print(f"speedup                     : {speedup:8.2f}x (target {SPEEDUP_TARGET}x)")
    print(f"1-vs-{NUM_WORKERS} max parameter diff : {max_diff:.3e} "
          "(float summation order only)")

    _record({
        "benchmark": "multiworker_fit_speedup",
        "num_windows": NUM_WINDOWS,
        "epochs": NUM_EPOCHS,
        "num_workers": NUM_WORKERS,
        "cpu_count": _CORES,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "max_param_diff": max_diff,
    })

    assert max_diff < 1e-8, (
        f"worker-count changed the training trajectory (diff {max_diff:.3e})"
    )
    if MIN_SPEEDUP > 0:
        assert speedup >= MIN_SPEEDUP, (
            f"{NUM_WORKERS}-worker fit is only {speedup:.2f}x faster than "
            f"serial (gate {MIN_SPEEDUP}x, target {SPEEDUP_TARGET}x)")
    else:
        print(f"speedup gate skipped: {_CORES} core(s) cannot host "
              f"{NUM_WORKERS} gradient workers")
