"""Sampler-zoo benchmark: accuracy-vs-NFE frontier + cached-table speedup.

Three properties of the fast-sampler zoo are validated and recorded:

* the accuracy-vs-NFE frontier: one detector trained once, then scored with
  the full trajectory and with every subsequence sampler (strided / DDIM /
  PNDM) at several step budgets.  The gate requires at least one frontier
  point with **>= 4x fewer denoiser calls** whose F1 stays within 1% of the
  full sampler,
* the cached transition tables: a per-step microbenchmark of the sampler
  transition with the precomputed table against the legacy gather-per-step
  path (schedule lookups + scalar ``sqrt`` inside the loop).  The cached
  path must be a real win,
* two bit-identity regressions, printed as greppable lines for CI:
  eta=0 DDIM must equal the strided jump rule exactly, and stride 1 must
  equal the full trajectory exactly.

Every run appends its numbers to ``BENCH_samplers.json`` (path overridable
via ``REPRO_BENCH_SAMPLER_OUTPUT``).  ``REPRO_BENCH_SAMPLER_SCALE`` shrinks
the dataset for smoke runs; ``REPRO_BENCH_SAMPLER_DATASET`` picks the
analogue (default SMD).
"""

from __future__ import annotations

import copy
import json
import os
import time

import numpy as np

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.data import load_dataset
from repro.diffusion import (
    DDIMSampler,
    FullReverseSampler,
    GaussianDiffusion,
    PNDMSampler,
    StridedReverseSampler,
    quadratic_beta_schedule,
)
from repro.evaluation import evaluate_labels

from ._helpers import print_header, run_once

SCALE = float(os.environ.get("REPRO_BENCH_SAMPLER_SCALE", "0.08"))
DATASET = os.environ.get("REPRO_BENCH_SAMPLER_DATASET", "SMD")
OUTPUT = os.environ.get("REPRO_BENCH_SAMPLER_OUTPUT", "BENCH_samplers.json")
NUM_STEPS = 20
F1_TOLERANCE = 0.01

#: The frontier: every zoo sampler at a ladder of denoiser-call budgets.
#: ``num_steps // 4`` is the gated >= 4x point.
FRONTIER = [
    ("strided", {"num_inference_steps": NUM_STEPS // 2}),
    ("strided", {"num_inference_steps": NUM_STEPS // 4}),
    ("ddim", {"num_inference_steps": NUM_STEPS // 2}),
    ("ddim", {"num_inference_steps": NUM_STEPS // 4}),
    ("ddim", {"num_inference_steps": NUM_STEPS // 4, "stride_spacing": "quadratic"}),
    ("pndm", {"num_inference_steps": NUM_STEPS // 2}),
    ("pndm", {"num_inference_steps": NUM_STEPS // 4}),
]


def _record(payload: dict) -> None:
    """Append this run's numbers to the JSON artifact tracked by CI."""
    history = []
    if os.path.exists(OUTPUT):
        try:
            with open(OUTPUT) as handle:
                history = json.load(handle)
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(payload)
    with open(OUTPUT, "w") as handle:
        json.dump(history, handle, indent=2)


def _zoo_config(**overrides) -> ImDiffusionConfig:
    base = dict(
        window_size=32, num_steps=NUM_STEPS, epochs=4, hidden_dim=24,
        num_blocks=1, num_heads=2, batch_size=8, max_train_windows=48,
        train_stride=12, num_masked_windows=4, num_unmasked_windows=4,
        error_percentile=96.0, deterministic_inference=True, collect="x0",
        early_stopping_patience=2, validation_fraction=0.2, seed=0)
    base.update(overrides)
    return ImDiffusionConfig(**base)


def _nfe(config: ImDiffusionConfig) -> int:
    """Denoiser calls per scored window: the reverse-trajectory length."""
    return len(config.build_sampler().trajectory(config.num_steps))


def _scored_f1(fitted: ImDiffusionDetector, dataset, **overrides):
    detector = copy.deepcopy(fitted)
    detector.config = detector.config.with_overrides(**overrides)
    started = time.perf_counter()
    prediction = detector.predict(dataset.test)
    seconds = max(time.perf_counter() - started, 1e-9)
    metrics = evaluate_labels(np.asarray(prediction.labels),
                              np.asarray(prediction.scores),
                              dataset.test_labels)
    return metrics.f1, seconds, _nfe(detector.config)


def test_accuracy_vs_nfe_frontier(benchmark):
    """>= 4x fewer denoiser calls must keep F1 within 1% of the full sampler."""
    dataset = load_dataset(DATASET, seed=0, scale=SCALE)

    def run():
        fitted = ImDiffusionDetector(_zoo_config()).fit(dataset.train)
        full_f1, full_seconds, full_nfe = _scored_f1(fitted, dataset)
        points = []
        for sampler, knobs in FRONTIER:
            f1, seconds, nfe = _scored_f1(fitted, dataset, sampler=sampler,
                                          **knobs)
            points.append({"sampler": sampler, **knobs, "nfe": nfe, "f1": f1,
                           "seconds": seconds,
                           "nfe_reduction": full_nfe / nfe,
                           "speedup": full_seconds / seconds})
        return full_f1, full_seconds, full_nfe, points

    full_f1, full_seconds, full_nfe, points = run_once(benchmark, run)

    print_header(f"Sampler zoo: accuracy-vs-NFE frontier "
                 f"({DATASET} @ scale {SCALE}, T={NUM_STEPS})")
    print(f"{'sampler':<10} {'knobs':<32} {'NFE':>4} {'F1':>7} "
          f"{'dF1':>8} {'speedup':>8}")
    print(f"{'full':<10} {'':<32} {full_nfe:>4} {full_f1:>7.4f} "
          f"{0.0:>8.4f} {1.0:>7.1f}x")
    for point in points:
        knobs = ", ".join(f"{k}={v}" for k, v in point.items()
                          if k not in ("sampler", "nfe", "f1", "seconds",
                                       "nfe_reduction", "speedup"))
        print(f"{point['sampler']:<10} {knobs:<32} {point['nfe']:>4} "
              f"{point['f1']:>7.4f} {point['f1'] - full_f1:>8.4f} "
              f"{point['speedup']:>7.1f}x")

    gated = [p for p in points
             if p["nfe_reduction"] >= 4.0 and p["f1"] >= full_f1 - F1_TOLERANCE]

    _record({
        "benchmark": "accuracy_vs_nfe_frontier",
        "dataset": DATASET,
        "scale": SCALE,
        "num_steps": NUM_STEPS,
        "full": {"nfe": full_nfe, "f1": full_f1, "seconds": full_seconds},
        "frontier": points,
        "f1_tolerance": F1_TOLERANCE,
        "gated_points": [{"sampler": p["sampler"], "nfe": p["nfe"],
                          "f1": p["f1"], "nfe_reduction": p["nfe_reduction"]}
                         for p in gated],
    })

    assert gated, (
        f"no frontier point achieves >= 4x fewer denoiser calls within "
        f"{F1_TOLERANCE} F1 of the full sampler (full F1 {full_f1:.4f}); "
        f"frontier: {[(p['sampler'], p['nfe'], round(p['f1'], 4)) for p in points]}")
    best = max(gated, key=lambda p: p["nfe_reduction"])
    print(f"\ngated point: {best['sampler']} at NFE {best['nfe']} "
          f"({best['nfe_reduction']:.1f}x fewer calls, F1 {best['f1']:.4f} "
          f"vs full {full_f1:.4f})")


def test_cached_table_inner_loop_speedup(benchmark):
    """The cached transition table must beat per-step schedule gathers."""
    diffusion = GaussianDiffusion(quadratic_beta_schedule(NUM_STEPS))
    sampler = DDIMSampler(num_inference_steps=NUM_STEPS // 4, eta=0.0)
    trajectory = sampler.trajectory(NUM_STEPS)
    rng = np.random.default_rng(0)
    x_t = rng.standard_normal((8, 4, 32))
    eps = rng.standard_normal((8, 4, 32))
    repeats = 400

    def walk_legacy():
        for i, t in enumerate(trajectory):
            t_prev = trajectory[i + 1] if i + 1 < len(trajectory) else 0
            sampler.step(diffusion, x_t, t, t_prev, eps, deterministic=True)

    def walk_table():
        table = diffusion.transition_table(trajectory, eta=sampler.eta)
        for i, t in enumerate(trajectory):
            t_prev = trajectory[i + 1] if i + 1 < len(trajectory) else 0
            sampler.step(diffusion, x_t, t, t_prev, eps, deterministic=True,
                         table=table, index=i)

    def run():
        walk_legacy(), walk_table()  # warm-up (also builds + caches the table)
        legacy_best = min(
            _timed(walk_legacy, repeats // 4) for _ in range(4))
        table_best = min(
            _timed(walk_table, repeats // 4) for _ in range(4))
        return legacy_best, table_best

    legacy_seconds, table_seconds = run_once(benchmark, run)
    per_step = len(trajectory) * (repeats // 4)
    speedup = legacy_seconds / max(table_seconds, 1e-12)

    print_header("Sampler zoo: cached-table inner loop vs gather-per-step "
                 f"(batch 8x4x32, {len(trajectory)}-step trajectory)")
    print(f"gather-per-step : {legacy_seconds / per_step * 1e6:8.2f} us/step")
    print(f"cached table    : {table_seconds / per_step * 1e6:8.2f} us/step")
    print(f"speedup         : {speedup:8.2f}x")

    _record({
        "benchmark": "cached_table_inner_loop",
        "trajectory_len": len(trajectory),
        "legacy_us_per_step": legacy_seconds / per_step * 1e6,
        "table_us_per_step": table_seconds / per_step * 1e6,
        "speedup": speedup,
    })

    # The exact margin is machine-dependent; require a real, repeatable win.
    assert speedup > 1.0, (
        f"cached table ({table_seconds:.4f}s) is not faster than the "
        f"gather-per-step baseline ({legacy_seconds:.4f}s)")


def _timed(func, repeats: int) -> float:
    started = time.perf_counter()
    for _ in range(repeats):
        func()
    return max(time.perf_counter() - started, 1e-12)


def test_sampler_bit_identities(benchmark):
    """eta=0 DDIM == strided and stride-1 == full, bit for bit (CI greps)."""
    from repro.diffusion import ImputedDiffusion
    from repro.masking import GratingMasking
    from repro.models import ImTransformer

    rng = np.random.default_rng(0)
    model = ImTransformer(num_features=4, hidden_dim=8, num_blocks=1,
                          num_heads=2, rng=rng)
    diffusion = GaussianDiffusion(quadratic_beta_schedule(NUM_STEPS))
    imputer = ImputedDiffusion(model, diffusion)
    masks = GratingMasking(2, 2).masks(32, 4)
    windows = np.random.default_rng(1).normal(size=(4, 32, 4))
    mask_batch = np.stack([masks[0], masks[1], masks[0], masks[1]])
    policies = np.array([0, 1, 0, 1])

    def run():
        strided = imputer.impute(
            windows, mask_batch, policies, np.random.default_rng(7),
            sampler=StridedReverseSampler(num_inference_steps=5))
        ddim = imputer.impute(
            windows, mask_batch, policies, np.random.default_rng(7),
            sampler=DDIMSampler(num_inference_steps=5, eta=0.0))
        full = imputer.impute(
            windows, mask_batch, policies, np.random.default_rng(7),
            sampler=FullReverseSampler())
        stride1 = imputer.impute(
            windows, mask_batch, policies, np.random.default_rng(7),
            sampler=StridedReverseSampler(stride=1))
        pndm = imputer.impute(
            windows, mask_batch, policies, np.random.default_rng(7),
            sampler=PNDMSampler(num_inference_steps=5))
        return strided, ddim, full, stride1, pndm

    strided, ddim, full, stride1, pndm = run_once(benchmark, run)

    ddim_identical = bool(np.array_equal(ddim.final, strided.final))
    stride1_identical = bool(np.array_equal(stride1.final, full.final))
    pndm_runs = bool(np.all(np.isfinite(pndm.final)))

    print_header("Sampler zoo: bit-identity regressions")
    print("bit-identity (eta=0 DDIM vs strided jumps): "
          + ("OK" if ddim_identical else "FAIL"))
    print("bit-identity (stride-1 vs full trajectory): "
          + ("OK" if stride1_identical else "FAIL"))
    print("pndm trajectory finite                    : "
          + ("OK" if pndm_runs else "FAIL"))

    _record({
        "benchmark": "sampler_bit_identities",
        "ddim_eta0_equals_strided": ddim_identical,
        "stride1_equals_full": stride1_identical,
        "pndm_finite": pndm_runs,
    })

    assert ddim_identical and stride1_identical and pndm_runs
