"""Serving-scale benchmark: sharded inference under a 100+ tenant stream.

The sharded inference engine fans flushed cross-tenant batches across
scoring workers that receive parameters through the zero-copy shared-memory
transport.  Three properties are validated and recorded here:

* **bit-identity** — a :class:`~repro.serving.DetectorService` whose scorer
  runs a :class:`~repro.inference.MultiprocessScoreReducer` at
  ``num_workers=1`` must reproduce the in-process serial service bit for bit
  (``np.array_equal`` on every tenant's scores AND labels): moving the
  computation into a worker process changes nothing.  CI greps the
  ``bit-identity`` line this test prints.
* **throughput** — streaming ``TENANTS x POINTS`` (default 128 x 100 =
  12.8k points) through a ``score_workers=4`` service must beat the serial
  service (target 1.7x; the gate adapts to the machine's core count,
  because a single-core runner cannot win by adding processes).
* **latency** — the p99 of the post-merge alarm scan (decide + analytics
  over every dirty tenant) must stay within a budget even at 100+ tenants.

Every run appends its numbers to ``BENCH_serving_scale.json`` (path
overridable via ``REPRO_BENCH_SERVING_OUTPUT``).  The stream is resized with
``REPRO_BENCH_SERVING_TENANTS`` / ``REPRO_BENCH_SERVING_POINTS``, the pool
with ``REPRO_BENCH_SERVING_WORKERS``; ``REPRO_BENCH_SERVING_MIN_SPEEDUP``
overrides the throughput gate and ``REPRO_BENCH_SERVING_P99_BUDGET_MS`` the
alarm-scan budget.
"""

from __future__ import annotations

import copy
import json
import os
import time

import numpy as np

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.core.detector import ImputationScoreSpec
from repro.inference import MultiprocessScoreReducer
from repro.serving import DetectorService, ServingConfig

from ._helpers import print_header, run_once

NUM_TENANTS = int(os.environ.get("REPRO_BENCH_SERVING_TENANTS", "128"))
POINTS_PER_TENANT = int(os.environ.get("REPRO_BENCH_SERVING_POINTS", "100"))
NUM_WORKERS = int(os.environ.get("REPRO_BENCH_SERVING_WORKERS", "4"))
OUTPUT = os.environ.get("REPRO_BENCH_SERVING_OUTPUT", "BENCH_serving_scale.json")
P99_BUDGET_MS = float(os.environ.get("REPRO_BENCH_SERVING_P99_BUDGET_MS", "250"))
SPEEDUP_TARGET = 1.7
NUM_CHANNELS = 4

# A pool that does not fit in the machine's cores cannot win by adding
# processes: the core-count guard disables the throughput gate there, and
# the env knob only tunes the threshold used on capable machines (default
# 1.3 rather than the 1.7 target, as shared CI runners are noisy).
_CORES = os.cpu_count() or 1
if _CORES < NUM_WORKERS:
    MIN_SPEEDUP = 0.0
else:
    MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SERVING_MIN_SPEEDUP", "1.3"))


def _record(payload: dict) -> None:
    """Append this run's numbers to the JSON artifact tracked by CI."""
    history = []
    if os.path.exists(OUTPUT):
        try:
            with open(OUTPUT) as handle:
                history = json.load(handle)
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(payload)
    with open(OUTPUT, "w") as handle:
        json.dump(history, handle, indent=2)


def _fitted_detector() -> ImDiffusionDetector:
    """Smallest configuration that still exercises the full scoring stack."""
    detector = ImDiffusionDetector(ImDiffusionConfig(
        window_size=16, num_steps=4, epochs=1, hidden_dim=8, num_blocks=1,
        num_heads=2, max_train_windows=16, num_masked_windows=2,
        num_unmasked_windows=2, deterministic_inference=True, collect="x0",
        batch_size=32, seed=0))
    rng = np.random.default_rng(0)
    t = np.arange(400)
    train = (1.0 + 0.3 * np.sin(2 * np.pi * t / 96)[:, None]
             * np.ones((1, NUM_CHANNELS))
             + 0.05 * rng.standard_normal((400, NUM_CHANNELS)))
    return detector.fit(train)


def _tenant_streams(num_tenants: int, points: int, seed: int = 1):
    """Seasonal per-tenant streams with sparse injected level shifts."""
    streams = {}
    for i in range(num_tenants):
        rng = np.random.default_rng(seed + i)
        t = np.arange(points)
        series = (1.0 + 0.3 * np.sin(2 * np.pi * t / 96)[:, None]
                  * np.ones((1, NUM_CHANNELS))
                  + 0.05 * rng.standard_normal((points, NUM_CHANNELS)))
        start = points // 2 + (i % 7)
        series[start:start + 6] *= 1.8
        streams[f"tenant-{i:03d}"] = series
    return streams


def _stream_through(service: DetectorService, streams, chunk: int = 4):
    """Push every stream through ``service`` in interleaved chunks."""
    alarms = []
    points = next(iter(streams.values())).shape[0]
    with service:
        for step in range(0, points, chunk):
            for tenant, series in streams.items():
                alarms.extend(service.ingest(tenant, series[step:step + chunk]))
            alarms.extend(service.pump())
        alarms.extend(service.drain())
        views = {tenant: service.tenant_view(tenant) for tenant in streams}
    return alarms, views


def test_single_worker_bit_identity(benchmark):
    """A 1-worker scoring pool must reproduce the serial service bitwise."""
    detector = _fitted_detector()
    streams = _tenant_streams(24, 64)

    def run():
        serial_service = DetectorService(copy.deepcopy(detector),
                                         ServingConfig(flush_size=16))
        serial = _stream_through(serial_service, streams)

        pooled_detector = copy.deepcopy(detector)
        pooled_service = DetectorService(pooled_detector,
                                         ServingConfig(flush_size=16))
        # ServingConfig(score_workers=1) deliberately means "in-process", so
        # the 1-worker pool gate swaps the reducer in explicitly: same spec,
        # same plan, computed inside one spawned worker.
        pooled_service.scorer._reducer = MultiprocessScoreReducer(
            ImputationScoreSpec(pooled_detector), 1)
        pooled = _stream_through(pooled_service, streams)
        return serial, pooled

    (serial_alarms, serial_views), (pooled_alarms, pooled_views) = \
        run_once(benchmark, run)

    identical = (
        [(a.tenant, a.index, a.score) for a in serial_alarms]
        == [(a.tenant, a.index, a.score) for a in pooled_alarms]
        and all(np.array_equal(serial_views[t].scores, pooled_views[t].scores)
                and np.array_equal(serial_views[t].labels, pooled_views[t].labels)
                for t in serial_views)
    )

    print_header("Sharded inference: serial service vs "
                 "MultiprocessScoreReducer(num_workers=1)")
    print(f"tenants={len(serial_views)}  alarms={len(serial_alarms)}")
    print("bit-identity (serial vs MultiprocessScoreReducer num_workers=1): "
          + ("OK" if identical else "FAILED"))

    _record({
        "benchmark": "serving_bit_identity",
        "tenants": len(serial_views),
        "alarms": len(serial_alarms),
        "bit_identical": bool(identical),
    })
    assert identical, (
        "a 1-worker scoring pool diverged from the in-process serial service")


def test_sharded_throughput_and_latency(benchmark):
    """Sharded scoring must beat the serial service at 100+ tenant scale."""
    detector = _fitted_detector()
    streams = _tenant_streams(NUM_TENANTS, POINTS_PER_TENANT)
    total_points = NUM_TENANTS * POINTS_PER_TENANT

    def timed_stream(score_workers):
        config = ServingConfig(flush_size=32, max_pending=256,
                               history=4 * POINTS_PER_TENANT,
                               score_workers=score_workers)
        # Pool spawn is a one-off service start-up cost, not steady-state
        # serving; the timer starts after construction.
        service = DetectorService(copy.deepcopy(detector), config)
        started = time.perf_counter()
        alarms, _ = _stream_through(service, streams)
        seconds = time.perf_counter() - started
        return service.metrics.snapshot(), len(alarms), seconds

    def run():
        serial_snap, serial_alarms, serial_seconds = timed_stream(1)
        shard_snap, shard_alarms, shard_seconds = timed_stream(NUM_WORKERS)
        return (serial_snap, serial_alarms, serial_seconds,
                shard_snap, shard_alarms, shard_seconds)

    (serial_snap, serial_alarms, serial_seconds,
     shard_snap, shard_alarms, shard_seconds) = run_once(benchmark, run)

    speedup = serial_seconds / max(shard_seconds, 1e-9)
    serial_pps = total_points / max(serial_seconds, 1e-9)
    shard_pps = total_points / max(shard_seconds, 1e-9)
    scan_p99_ms = 1000 * serial_snap["alarm_scan_latency_p99"]

    print_header(f"Sharded inference: {NUM_TENANTS} tenants x "
                 f"{POINTS_PER_TENANT} points ({total_points} total), "
                 f"1 vs {NUM_WORKERS} score workers ({_CORES} cores available)")
    print(f"serial stream (1 worker)     : {serial_seconds:8.2f}s "
          f"({serial_pps:9.1f} points/s)")
    print(f"sharded stream ({NUM_WORKERS} workers)   : {shard_seconds:8.2f}s "
          f"({shard_pps:9.1f} points/s)")
    print(f"throughput speedup           : {speedup:8.2f}x "
          f"(target {SPEEDUP_TARGET}x)")
    print(f"scoring latency p50/p99 (ms) : "
          f"{1000 * serial_snap['scoring_latency_p50']:8.2f} / "
          f"{1000 * serial_snap['scoring_latency_p99']:8.2f}")
    print(f"alarm scan p50/p99 (ms)      : "
          f"{1000 * serial_snap['alarm_scan_latency_p50']:8.2f} / "
          f"{scan_p99_ms:8.2f} (budget {P99_BUDGET_MS:.0f})")

    _record({
        "benchmark": "sharded_throughput_latency",
        "tenants": NUM_TENANTS,
        "points_per_tenant": POINTS_PER_TENANT,
        "total_points": total_points,
        "num_workers": NUM_WORKERS,
        "cpu_count": _CORES,
        "serial_seconds": serial_seconds,
        "sharded_seconds": shard_seconds,
        "serial_points_per_second": serial_pps,
        "sharded_points_per_second": shard_pps,
        "speedup": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "scoring_latency_p50_ms": 1000 * serial_snap["scoring_latency_p50"],
        "scoring_latency_p99_ms": 1000 * serial_snap["scoring_latency_p99"],
        "alarm_scan_latency_p50_ms":
            1000 * serial_snap["alarm_scan_latency_p50"],
        "alarm_scan_latency_p99_ms": scan_p99_ms,
        "alarm_scan_p99_budget_ms": P99_BUDGET_MS,
        "serial_alarms": serial_alarms,
        "sharded_alarms": shard_alarms,
    })

    # Alarm count is a cheap worker-count-invariance cross-check: the
    # sharded run must raise exactly the serial alarms.
    assert serial_alarms == shard_alarms, (
        "sharded service raised different alarms than the serial service")
    assert scan_p99_ms <= P99_BUDGET_MS, (
        f"alarm-scan p99 {scan_p99_ms:.1f}ms blew the {P99_BUDGET_MS:.0f}ms "
        f"budget at {NUM_TENANTS} tenants")
    if MIN_SPEEDUP > 0:
        assert speedup >= MIN_SPEEDUP, (
            f"{NUM_WORKERS}-worker serving is only {speedup:.2f}x faster "
            f"than serial (gate {MIN_SPEEDUP}x, target {SPEEDUP_TARGET}x)")
    else:
        print(f"throughput gate skipped: {_CORES} core(s) cannot host "
              f"{NUM_WORKERS} scoring workers")
