"""Serving-layer throughput: incremental scoring vs full-history re-scoring.

The seed online harness re-scored the *entire* history at every poll — O(n²)
model work over a stream of length n.  The serving layer's incremental scorer
does amortised O(window) work per poll.  Two properties are validated here:

* on a 10k-point stream, incremental scoring is at least 5x faster
  (points/second) than the seed's full-history re-scoring protocol,
* :func:`repro.production.run_online_evaluation` now scales near-linearly in
  stream length (the bounded evaluation buffer caps per-poll work).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.data.production import ProductionTrace
from repro.production import LegacyThresholdDetector, run_online_evaluation

from ._helpers import print_header, run_once

RESCORE_EVERY = 500
STREAM_LENGTH = 10_000


def _synthetic_trace(length: int, train_length: int = 600,
                     num_channels: int = 4, seed: int = 0) -> ProductionTrace:
    """Seasonal multichannel stream with sparse injected level shifts."""
    def make(n: int, sub_seed: int):
        rng = np.random.default_rng(seed + sub_seed)
        t = np.arange(n)
        base = 1.0 + 0.3 * np.sin(2 * np.pi * t / 96)[:, None] * np.ones((1, num_channels))
        series = base + 0.05 * rng.standard_normal((n, num_channels))
        labels = np.zeros(n, dtype=np.int64)
        for start in range(n // 4, n, max(n // 10, 1)):
            end = min(n, start + 8)
            series[start:end] *= 1.8
            labels[start:end] = 1
        return series, labels

    train, _ = make(train_length, 1)
    test, labels = make(length, 2)
    return ProductionTrace(train=train, test=test, test_labels=labels)


def _tiny_imdiffusion() -> ImDiffusionDetector:
    """Smallest configuration that still exercises the full scoring stack."""
    return ImDiffusionDetector(ImDiffusionConfig(
        window_size=16, num_steps=4, epochs=1, hidden_dim=8, num_blocks=1,
        num_heads=2, max_train_windows=16, num_masked_windows=2,
        num_unmasked_windows=2, deterministic_inference=True, collect="x0",
        batch_size=32, seed=0))


def _full_history_points_per_second(detector, trace: ProductionTrace,
                                    rescore_every: int) -> float:
    """The seed protocol: re-score ``test[:next_block]`` at every poll."""
    detector.fit(trace.train)
    length = trace.test.shape[0]
    started = time.perf_counter()
    processed = 0
    while processed < length:
        next_block = min(processed + rescore_every, length)
        detector.predict(trace.test[:next_block])
        processed = next_block
    elapsed = max(time.perf_counter() - started, 1e-9)
    return length / elapsed


def test_incremental_beats_full_history_rescoring(benchmark):
    trace = _synthetic_trace(STREAM_LENGTH)

    def run():
        evaluation = run_online_evaluation(
            _tiny_imdiffusion(), trace, rescore_every=RESCORE_EVERY)
        full_pps = _full_history_points_per_second(
            _tiny_imdiffusion(), trace, RESCORE_EVERY)
        return evaluation.points_per_second, full_pps

    incremental_pps, full_pps = run_once(benchmark, run)
    speedup = incremental_pps / full_pps

    print_header("Serving: incremental vs full-history re-scoring "
                 f"({STREAM_LENGTH} points, poll every {RESCORE_EVERY})")
    print(f"incremental scoring : {incremental_pps:10.0f} points/s")
    print(f"full-history (seed) : {full_pps:10.0f} points/s")
    print(f"speedup             : {speedup:10.1f}x")

    assert speedup >= 5.0, (
        f"incremental scoring is only {speedup:.1f}x faster than "
        f"full-history re-scoring (expected >= 5x)")


def test_online_evaluation_scales_near_linearly(benchmark):
    """Doubling the stream 8x must not cost anywhere near 64x (O(n²)) time."""
    short, long = 1_600, 12_800

    def timed(length: int) -> float:
        trace = _synthetic_trace(length)
        started = time.perf_counter()
        run_online_evaluation(LegacyThresholdDetector(seed=0), trace,
                              rescore_every=64)
        return time.perf_counter() - started

    def run():
        # Warm-up pass reduces allocator/jit-cache noise in the short timing.
        timed(short)
        return timed(short), timed(long)

    short_seconds, long_seconds = run_once(benchmark, run)
    ratio = long_seconds / max(short_seconds, 1e-9)
    growth = long / short

    print_header("Online evaluation scaling (bounded evaluation buffer)")
    print(f"{short:6d} points: {short_seconds * 1000:8.1f} ms")
    print(f"{long:6d} points: {long_seconds * 1000:8.1f} ms")
    print(f"time ratio {ratio:.1f}x for a {growth:.0f}x longer stream")

    # A quadratic harness would grow ~growth² (64x); allow generous slack
    # over the ideal linear growth for timer and cache noise.
    assert ratio <= 3.0 * growth, (
        f"online evaluation grew {ratio:.1f}x in time for a {growth:.0f}x "
        f"longer stream — super-linear scaling regression")
