"""Table 2: per-dataset Precision / Recall / F1 / F1-std / R-AUC-PR of all detectors.

Regenerates the rows of Table 2 of the paper on the six dataset analogues.
Absolute values differ from the paper (synthetic data, reduced model sizes);
the validated *shape* is that ImDiffusion is the best or among the best
detectors on most datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from ._helpers import bench_datasets, main_sweep, print_header, run_once


def _format_row(detector: str, entries) -> str:
    cells = [f"{detector:12s}"]
    for dataset in bench_datasets():
        summary = entries[dataset].summary
        cells.append(f"{summary.precision:.3f} {summary.recall:.3f} "
                     f"{summary.f1:.3f} {summary.f1_std:.3f} {summary.r_auc_pr:.3f}")
    return " | ".join(cells)


@pytest.mark.benchmark(group="table2")
def test_table2_accuracy(benchmark):
    """Run the full detector x dataset sweep and print the Table 2 rows."""
    results = run_once(benchmark, main_sweep)

    print_header("Table 2 — P / R / F1 / F1-std / R-AUC-PR per dataset")
    header = ["detector".ljust(12)] + [
        f"{name} (P R F1 F1std RAUCPR)" for name in bench_datasets()
    ]
    print(" | ".join(header))
    for detector, entries in results.items():
        print(_format_row(detector, entries))

    # Shape check: ImDiffusion is among the leading detectors by mean F1.  At
    # benchmark scale the synthetic datasets are easier than the originals and
    # all deep detectors cluster tightly, so "leading" is asserted as being in
    # the top half of the ranking and within a few percent of the best score.
    mean_f1 = {
        detector: np.mean([entries[d].summary.f1 for d in bench_datasets()])
        for detector, entries in results.items()
    }
    ranking = sorted(mean_f1, key=mean_f1.get, reverse=True)
    best = mean_f1[ranking[0]]
    position = ranking.index("ImDiffusion")
    print(f"\nImDiffusion mean F1 {mean_f1['ImDiffusion']:.3f} "
          f"(best: {ranking[0]} {best:.3f}, rank {position + 1}/{len(ranking)})")
    assert position < len(ranking) / 2 or mean_f1["ImDiffusion"] >= 0.95 * best, (
        f"ImDiffusion expected among the leading detectors, ranking: {ranking}"
    )
