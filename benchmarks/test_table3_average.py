"""Table 3: metrics of every detector averaged over the six datasets.

The validated shape: ImDiffusion achieves the highest average F1 of all
detectors, as in Table 3 of the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from ._helpers import bench_datasets, main_sweep, print_header, run_once


@pytest.mark.benchmark(group="table3")
def test_table3_average(benchmark):
    results = run_once(benchmark, main_sweep)

    print_header("Table 3 — P / R / F1 / F1-std / R-AUC-PR averaged over datasets")
    print(f"{'detector':14s} {'P':>7s} {'R':>7s} {'F1':>7s} {'F1-std':>7s} {'R-AUC-PR':>9s}")
    averages = {}
    for detector, entries in results.items():
        datasets = bench_datasets()
        precision = np.mean([entries[d].summary.precision for d in datasets])
        recall = np.mean([entries[d].summary.recall for d in datasets])
        f1 = np.mean([entries[d].summary.f1 for d in datasets])
        f1_std = np.mean([entries[d].summary.f1_std for d in datasets])
        r_auc_pr = np.mean([entries[d].summary.r_auc_pr for d in datasets])
        averages[detector] = f1
        print(f"{detector:14s} {precision:7.3f} {recall:7.3f} {f1:7.3f} {f1_std:7.3f} {r_auc_pr:9.3f}")

    best = max(averages, key=averages.get)
    print(f"\nBest average F1: {best} ({averages[best]:.3f})")
    assert averages["ImDiffusion"] >= 0.95 * averages[best], (
        "ImDiffusion expected to achieve (close to) the best average F1"
    )
