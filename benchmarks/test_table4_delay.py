"""Table 4: Average Detection Delay (ADD) of every detector per dataset.

The validated shape: ImDiffusion's average ADD is among the lowest of all
detectors (the paper reports the lowest average ADD for ImDiffusion).
"""

from __future__ import annotations

import numpy as np
import pytest

from ._helpers import bench_datasets, main_sweep, print_header, run_once


@pytest.mark.benchmark(group="table4")
def test_table4_detection_delay(benchmark):
    results = run_once(benchmark, main_sweep)

    datasets = bench_datasets()
    print_header("Table 4 — ADD (mean ± std over runs) per dataset")
    print(f"{'detector':14s} " + " ".join(f"{d:>12s}" for d in datasets) + f" {'Average':>12s}")
    average_add = {}
    for detector, entries in results.items():
        cells = []
        values = []
        for dataset in datasets:
            summary = entries[dataset].summary
            cells.append(f"{summary.add:6.1f}±{summary.add_std:4.1f}")
            values.append(summary.add)
        average_add[detector] = float(np.mean(values))
        print(f"{detector:14s} " + " ".join(f"{c:>12s}" for c in cells)
              + f" {average_add[detector]:12.1f}")

    ranking = sorted(average_add, key=average_add.get)
    best = average_add[ranking[0]]
    print(f"\nLowest average ADD: {ranking[0]} ({best:.1f}); "
          f"ImDiffusion: {average_add['ImDiffusion']:.1f}")
    # Shape check: ImDiffusion is among the most timely detectors — within a
    # small margin of the best average ADD (the paper reports the lowest ADD;
    # at benchmark scale several detectors are tied within a couple of samples).
    assert average_add["ImDiffusion"] <= max(best * 1.3, best + 3.0), (
        f"ImDiffusion expected close to the lowest average ADD, ranking: {ranking}"
    )
