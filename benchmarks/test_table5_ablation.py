"""Table 5: per-dataset ablation analysis of the ImDiffusion design choices.

Rows: full ImDiffusion, forecasting / reconstruction modelling modes,
non-ensemble inference, conditional diffusion, random masking and the
ImTransformer component removals.  Columns per dataset: P, R, F1, R-AUC-PR
and ADD — the same layout as Table 5 of the paper.
"""

from __future__ import annotations

import pytest

from ._helpers import ABLATION_VARIANTS, ablation_sweep, bench_datasets, print_header, run_once


@pytest.mark.benchmark(group="table5")
def test_table5_ablation(benchmark):
    results = run_once(benchmark, ablation_sweep)

    print_header("Table 5 — ablations per dataset (P / R / F1 / R-AUC-PR / ADD)")
    datasets = bench_datasets()
    for dataset in datasets:
        print(f"\n--- {dataset} ---")
        print(f"{'variant':26s} {'P':>7s} {'R':>7s} {'F1':>7s} {'R-AUC-PR':>9s} {'ADD':>8s}")
        for variant in ABLATION_VARIANTS:
            summary = results[variant][dataset].summary
            print(f"{variant:26s} {summary.precision:7.3f} {summary.recall:7.3f} "
                  f"{summary.f1:7.3f} {summary.r_auc_pr:9.3f} {summary.add:8.1f}")

    # Shape check: every variant produced valid metrics on every dataset.
    for variant, entries in results.items():
        for dataset in datasets:
            assert 0.0 <= entries[dataset].summary.f1 <= 1.0
