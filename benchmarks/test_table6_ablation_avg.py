"""Table 6: ablation analysis averaged over the six datasets.

The validated shapes (Sec. 5.3 of the paper):

* the imputation mode (full ImDiffusion) reaches a higher average F1 than the
  reconstruction modelling mode, and
* the full model is at least competitive with the non-ensemble variant.
"""

from __future__ import annotations

import numpy as np
import pytest

from ._helpers import ABLATION_VARIANTS, ablation_sweep, bench_datasets, print_header, run_once


@pytest.mark.benchmark(group="table6")
def test_table6_ablation_average(benchmark):
    results = run_once(benchmark, ablation_sweep)
    datasets = bench_datasets()

    print_header("Table 6 — ablations averaged over datasets")
    print(f"{'variant':26s} {'P':>7s} {'R':>7s} {'F1':>7s} {'R-AUC-PR':>9s} {'ADD':>8s}")
    averages = {}
    for variant in ABLATION_VARIANTS:
        entries = results[variant]
        precision = np.mean([entries[d].summary.precision for d in datasets])
        recall = np.mean([entries[d].summary.recall for d in datasets])
        f1 = np.mean([entries[d].summary.f1 for d in datasets])
        r_auc_pr = np.mean([entries[d].summary.r_auc_pr for d in datasets])
        add = np.mean([entries[d].summary.add for d in datasets])
        averages[variant] = {"f1": f1, "add": add}
        print(f"{variant:26s} {precision:7.3f} {recall:7.3f} {f1:7.3f} {r_auc_pr:9.3f} {add:8.1f}")

    # Imputation vs reconstruction: the paper's central modelling-mode claim.
    assert averages["ImDiffusion"]["f1"] >= averages["Reconstruction"]["f1"] - 0.02, (
        "imputation expected to outperform (or match) reconstruction on average F1"
    )
