"""Table 7: online production improvement of ImDiffusion over the legacy detector.

The paper deploys ImDiffusion as a latency monitor in the Microsoft email
delivery system and reports relative improvements over the legacy detector
(precision, recall, F1, R-AUC-PR, ADD) plus inference throughput.  Here the
deployment is reproduced on the simulated microservice latency stream of
:mod:`repro.data.production`: latency is log-transformed (standard practice
for multiplicative latency noise), the legacy EWMA/k-sigma monitor and
ImDiffusion both train on recent history and then stream the live split.

Validated shape: ImDiffusion improves F1 over the legacy monitor (the paper
reports +11.4 %; the magnitude here depends on the simulator's difficulty).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.data.production import MicroserviceLatencySimulator, ProductionConfig, ProductionTrace
from repro.production import LegacyThresholdDetector, compare_with_legacy, run_online_evaluation

from ._helpers import print_header, run_once


def _log_trace(seed: int) -> ProductionTrace:
    config = ProductionConfig(num_services=10, train_days=6.0, test_days=6.0, seed=seed,
                              incident_min_length=6, incident_max_length=16)
    trace = MicroserviceLatencySimulator(config).generate()
    return ProductionTrace(train=np.log(trace.train), test=np.log(trace.test),
                           test_labels=trace.test_labels, segments=trace.segments)


def _imdiffusion_monitor() -> ImDiffusionDetector:
    config = ImDiffusionConfig(
        window_size=48, num_steps=10, epochs=4, hidden_dim=24, num_blocks=1,
        num_masked_windows=4, num_unmasked_windows=4, max_train_windows=48,
        train_stride=8, deterministic_inference=True, collect="x0",
        error_percentile=93.0, seed=0,
    )
    return ImDiffusionDetector(config)


def _run_production_comparison():
    trace = _log_trace(seed=7)
    legacy = run_online_evaluation(LegacyThresholdDetector(sigma_threshold=4.0, seed=0),
                                   trace, rescore_every=64)
    imdiffusion = run_online_evaluation(_imdiffusion_monitor(), trace, rescore_every=96)
    return legacy, imdiffusion, compare_with_legacy(imdiffusion, legacy)


@pytest.mark.benchmark(group="table7")
def test_table7_production_improvement(benchmark):
    legacy, imdiffusion, comparison = run_once(benchmark, _run_production_comparison)

    print_header("Table 7 — online improvement over the legacy detector")
    print(f"{'metric':12s} {'legacy':>10s} {'ImDiffusion':>12s} {'improvement':>12s}")
    print(f"{'Precision':12s} {legacy.metrics.precision:10.3f} {imdiffusion.metrics.precision:12.3f} "
          f"{comparison['precision_improvement']:+12.1%}")
    print(f"{'Recall':12s} {legacy.metrics.recall:10.3f} {imdiffusion.metrics.recall:12.3f} "
          f"{comparison['recall_improvement']:+12.1%}")
    print(f"{'F1':12s} {legacy.metrics.f1:10.3f} {imdiffusion.metrics.f1:12.3f} "
          f"{comparison['f1_improvement']:+12.1%}")
    print(f"{'R-AUC-PR':12s} {legacy.metrics.r_auc_pr:10.3f} {imdiffusion.metrics.r_auc_pr:12.3f} "
          f"{comparison['r_auc_pr_improvement']:+12.1%}")
    print(f"{'ADD':12s} {legacy.metrics.add:10.1f} {imdiffusion.metrics.add:12.1f} "
          f"{comparison['add_reduction']:+12.1%} (positive = faster)")
    print(f"\nInference efficiency: {comparison['inference_points_per_second']:.1f} points/second "
          f"(paper: 5.8 points/second on a 10-core CPU at full model size)")

    # Shape check: the replacement improves the headline F1 metric.
    assert comparison["f1_improvement"] > 0.0, (
        "ImDiffusion expected to improve F1 over the legacy monitor"
    )
