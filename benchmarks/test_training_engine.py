"""Training-engine benchmark: vectorized loading + epochs-to-converge.

Two properties of the unified training engine are validated and recorded:

* the vectorized batch pipeline (pre-stacked mask policies gathered with a
  single fancy-index, ``WindowLoader`` batching) assembles training batches
  faster than the frozen legacy loop (per-batch ``np.stack`` over a Python
  list comprehension),
* early stopping converges within the epoch budget on a real ImDiffusion
  fit, and the epochs actually run / wall-clock are recorded so the
  training-cost trajectory is tracked per PR.

Every run appends its numbers to ``BENCH_training.json`` (path overridable
via ``REPRO_BENCH_TRAIN_OUTPUT``) so CI can archive the perf trajectory.
``REPRO_BENCH_TRAIN_WINDOWS`` shrinks the batch-assembly workload for smoke
runs.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.training import WindowLoader

from ._helpers import print_header, run_once

NUM_WINDOWS = int(os.environ.get("REPRO_BENCH_TRAIN_WINDOWS", "512"))
OUTPUT = os.environ.get("REPRO_BENCH_TRAIN_OUTPUT", "BENCH_training.json")
WINDOW_SIZE = 32
NUM_FEATURES = 38
NUM_POLICIES = 10
BATCH_SIZE = 32
EPOCH_REPEATS = 20


def _record(payload: dict) -> None:
    """Append this run's numbers to the JSON artifact tracked by CI."""
    history = []
    if os.path.exists(OUTPUT):
        try:
            with open(OUTPUT) as handle:
                history = json.load(handle)
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(payload)
    with open(OUTPUT, "w") as handle:
        json.dump(history, handle, indent=2)


def _training_data():
    rng = np.random.default_rng(0)
    windows = rng.standard_normal((NUM_WINDOWS, WINDOW_SIZE, NUM_FEATURES))
    masks = [rng.integers(0, 2, size=(WINDOW_SIZE, NUM_FEATURES)).astype(np.float64)
             for _ in range(NUM_POLICIES)]
    return windows, masks


def test_vectorized_batch_assembly_speedup(benchmark):
    """Loader + fancy-index mask gather must beat the legacy Python loop."""
    windows, masks = _training_data()
    masks_arr = np.stack(masks)

    def time_legacy():
        # --- frozen legacy pipeline: permutation slicing + per-batch stack --
        legacy_rng = np.random.default_rng(7)
        sink = 0.0
        started = time.perf_counter()
        for _ in range(EPOCH_REPEATS):
            order = legacy_rng.permutation(NUM_WINDOWS)
            for start in range(0, NUM_WINDOWS, BATCH_SIZE):
                batch_idx = order[start:start + BATCH_SIZE]
                batch = windows[batch_idx]
                policies = legacy_rng.integers(0, len(masks), size=batch.shape[0])
                batch_masks = np.stack([masks[p] for p in policies])
                sink += float(batch[0, 0, 0]) + float(batch_masks[0, 0, 0])
        return time.perf_counter() - started

    def time_vectorized():
        # --- vectorized pipeline: WindowLoader + masks_arr[policies] --------
        loader_rng = np.random.default_rng(7)
        loader = WindowLoader(windows, batch_size=BATCH_SIZE, rng=loader_rng)
        sink = 0.0
        started = time.perf_counter()
        for _ in range(EPOCH_REPEATS):
            for batch in loader:
                policies = loader_rng.integers(0, NUM_POLICIES, size=batch.size)
                batch_masks = masks_arr[policies]
                sink += float(batch.data[0, 0, 0]) + float(batch_masks[0, 0, 0])
        return time.perf_counter() - started

    def run():
        # Best-of-3 per pipeline: scheduler noise at smoke sizes would
        # otherwise make this CI-gating ratio flaky on shared runners.
        legacy = min(time_legacy() for _ in range(3))
        vectorized = min(time_vectorized() for _ in range(3))
        return legacy, vectorized

    legacy_seconds, vectorized_seconds = run_once(benchmark, run)
    batches = EPOCH_REPEATS * (-(-NUM_WINDOWS // BATCH_SIZE))
    speedup = legacy_seconds / max(vectorized_seconds, 1e-9)

    print_header(f"Training engine: batch assembly, legacy loop vs vectorized "
                 f"loader ({NUM_WINDOWS} windows x {EPOCH_REPEATS} epochs)")
    print(f"legacy loop      : {legacy_seconds * 1000:8.1f} ms "
          f"({batches / legacy_seconds:8.0f} batches/s)")
    print(f"vectorized loader: {vectorized_seconds * 1000:8.1f} ms "
          f"({batches / vectorized_seconds:8.0f} batches/s)")
    print(f"speedup          : {speedup:8.2f}x")

    _record({
        "benchmark": "vectorized_batch_assembly",
        "num_windows": NUM_WINDOWS,
        "window_size": WINDOW_SIZE,
        "num_features": NUM_FEATURES,
        "num_policies": NUM_POLICIES,
        "batch_size": BATCH_SIZE,
        "epochs": EPOCH_REPEATS,
        "legacy_seconds": legacy_seconds,
        "vectorized_seconds": vectorized_seconds,
        "legacy_batches_per_second": batches / legacy_seconds,
        "vectorized_batches_per_second": batches / vectorized_seconds,
        "speedup": speedup,
    })

    # The win comes from replacing the per-item Python stack with one gather;
    # the exact margin is machine-dependent, so require a modest real win.
    assert speedup >= 1.1, (
        f"vectorized batch assembly is only {speedup:.2f}x faster than the "
        f"legacy loop (expected >= 1.1x)")


def test_early_stopping_epochs_to_converge(benchmark):
    """Early stopping must converge within the budget on a real fit."""
    rng = np.random.default_rng(1)
    t = np.arange(288)
    series = (np.sin(2 * np.pi * t / 48)[:, None] * np.ones((1, 6))
              + 0.1 * rng.standard_normal((288, 6)))
    budget = 12

    def config(**overrides):
        base = dict(window_size=24, num_steps=6, epochs=budget, hidden_dim=12,
                    num_blocks=1, num_heads=2, batch_size=8,
                    num_masked_windows=2, num_unmasked_windows=2,
                    max_train_windows=24, train_stride=12, seed=0)
        base.update(overrides)
        return ImDiffusionConfig(**base)

    def run():
        full = ImDiffusionDetector(config()).fit(series)
        early = ImDiffusionDetector(config(
            early_stopping_patience=2, early_stopping_min_delta=1e-3)).fit(series)
        return full.last_train_result, early.last_train_result

    full_result, early_result = run_once(benchmark, run)

    print_header(f"Training engine: epochs-to-converge with early stopping "
                 f"(budget {budget} epochs)")
    print(f"full budget   : {full_result.epochs_run:3d} epochs  "
          f"{full_result.wall_seconds:6.2f}s  final loss {full_result.final_loss:.4f}")
    print(f"early stopping: {early_result.epochs_run:3d} epochs  "
          f"{early_result.wall_seconds:6.2f}s  final loss {early_result.final_loss:.4f}")

    _record({
        "benchmark": "early_stopping_epochs_to_converge",
        "budget_epochs": budget,
        "full_epochs": full_result.epochs_run,
        "full_seconds": full_result.wall_seconds,
        "full_final_loss": full_result.final_loss,
        "early_epochs": early_result.epochs_run,
        "early_seconds": early_result.wall_seconds,
        "early_final_loss": early_result.final_loss,
        "stopped_early": early_result.stopped_early,
    })

    assert full_result.epochs_run == budget
    assert 1 <= early_result.epochs_run <= budget
    # Early stopping restores the best weights, so its best loss can never be
    # worse than what the run observed; sanity-check the curve is finite.
    assert np.isfinite(early_result.final_loss)
