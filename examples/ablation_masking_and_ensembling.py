"""Ablation walkthrough: masking strategies, conditioning and ensembling.

Run with::

    python examples/ablation_masking_and_ensembling.py

This example reproduces, at example scale, the design-choice analysis of
Sec. 5.3 of the paper on a single dataset: it trains four ImDiffusion
variants — the full detector, one with random instead of grating masking, a
conditional diffusion variant and one without ensemble voting — and prints
the resulting accuracy/timeliness so the effect of each design choice can be
inspected directly.
"""

from __future__ import annotations

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.data import load_dataset
from repro.evaluation import EvaluationSummary, evaluate_labels, format_results_table


# The PSM analogue has a high anomaly density (~20 %), so the error-threshold
# percentile is lowered to give every variant a comparable alarm budget.
BASE = dict(window_size=40, num_steps=12, epochs=3, hidden_dim=24, num_blocks=1,
            max_train_windows=24, error_percentile=85.0, seed=0)

VARIANTS = {
    "ImDiffusion (full)": {},
    "Random masking": {"masking": "random"},
    "Conditional diffusion": {"conditioning": "conditional"},
    "No ensembling": {"ensemble": False},
}


def main() -> None:
    dataset = load_dataset("PSM", seed=0, scale=0.12)
    print(f"Dataset: {dataset.name}, {dataset.num_features} features, "
          f"{dataset.anomaly_ratio:.1%} anomalous timestamps.\n")

    summaries = []
    for name, overrides in VARIANTS.items():
        print(f"Training variant: {name} ...")
        config = ImDiffusionConfig(**{**BASE, **overrides})
        detector = ImDiffusionDetector(config)
        result = detector.fit_predict(dataset.train, dataset.test)
        metrics = evaluate_labels(result.labels, result.scores, dataset.test_labels)
        summaries.append(EvaluationSummary(detector=name, dataset=dataset.name, runs=[metrics]))

    print("\n" + format_results_table(summaries))
    print("\nInterpretation guide (matches Sec. 5.3 of the paper):")
    print(" * grating vs random masking mostly affects ranged-anomaly accuracy (R-AUC-PR) and ADD,")
    print(" * conditional diffusion narrows the error gap between normal and abnormal points,")
    print(" * disabling the ensemble removes the step-wise voting that filters false positives.")


if __name__ == "__main__":
    main()
