"""Declarative alerting over score streams: the `repro.analytics` layer.

Run with::

    python examples/alerting_policies.py

No model is trained here — the point of the analytics layer is everything
that happens *after* scoring.  Two tenants stream synthetic anomaly scores
(one with a sustained incident, one with isolated blips) through a single
:class:`~repro.analytics.AnalyticsEngine` configured with a composite alert
policy.  The script prints the edge-triggered alert events as they fire,
the sessionized anomaly episodes, a window-function query over the retained
history (checked bitwise against the naive reference engine), and finally
round-trips the whole capture through JSONL — the same format
``repro serve --export-scores`` writes and ``repro query --from`` reads.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.analytics import (
    AnalyticsEngine,
    apply_pipeline,
    export_jsonl,
    load_jsonl,
    parse_pipeline,
)

#: Fires on high scores, but only while either the flap-damped hysteresis
#: gate is open or the points sessionize into a real (>= 3 point) incident.
POLICY = ("score > 2.5 and (hysteresis(up=2.5, down=1.0) "
          "or episode(threshold=2.5, min_len=3, gap=2))")

PIPELINE = "mean:32,quantile:32:99,delta:1,ewma:0.2"


def make_streams(length: int = 400, seed: int = 3) -> dict:
    """Two synthetic score streams with differently shaped incidents."""
    rng = np.random.default_rng(seed)
    base = {
        "checkout": np.abs(rng.standard_normal(length)),
        "payments": np.abs(rng.standard_normal(length)),
    }
    # checkout: one sustained latency regression (a real incident).
    base["checkout"][180:210] += rng.uniform(3.0, 6.0, 30)
    # payments: isolated one-point blips the policy should mostly ignore.
    for spike in rng.choice(length, size=6, replace=False):
        base["payments"][spike] += rng.uniform(3.0, 6.0)
    return base


def main() -> None:
    streams = make_streams()
    labels = {tenant: (scores > 2.5).astype(np.int64)
              for tenant, scores in streams.items()}

    print(f"Alert policy : {POLICY}")
    print(f"Pipeline     : {PIPELINE}\n")

    # ------------------------------------------------------------------
    # Stream every point through the engine; alerts fire on edges.
    # ------------------------------------------------------------------
    engine = AnalyticsEngine(history=1024, policies=[POLICY],
                             episode_gap=2, episode_min_length=2)
    for tenant, scores in sorted(streams.items()):
        for index, score in enumerate(scores):
            events = engine.observe(tenant, index, float(score),
                                    int(labels[tenant][index]))
            for event in events:
                print(f"  {event.describe()}")
    print()

    # ------------------------------------------------------------------
    # Sessionized episodes: raw anomalous points merged into incidents.
    # ------------------------------------------------------------------
    for tenant in engine.tenants():
        episodes = engine.episodes(tenant)
        flagged = int(labels[tenant].sum())
        print(f"{tenant}: {flagged} anomalous points sessionize into "
              f"{len(episodes)} episode(s)")
        for episode in episodes:
            print(f"  {episode.describe()}")
    print()

    # ------------------------------------------------------------------
    # Window-function queries over the retained history, checked bitwise
    # against the naive full-recompute reference.
    # ------------------------------------------------------------------
    tenant = "checkout"
    incremental = engine.query(tenant, PIPELINE)
    reference = engine.query(tenant, PIPELINE, engine="reference")
    for name in incremental:
        identical = np.array_equal(incremental[name], reference[name],
                                   equal_nan=True)
        tail = incremental[name][-1]
        print(f"{tenant} {name:16s} tail={tail:8.4f}  "
              f"incremental vs reference: "
              f"{'bitwise-equal' if identical else 'MISMATCH'}")
    print()

    # ------------------------------------------------------------------
    # JSONL round-trip: capture the store, load it back, re-run offline.
    # The CLI equivalents are `repro serve --export-scores scores.jsonl`
    # and `repro query --from scores.jsonl --ops ... --policy ... --check`.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "scores.jsonl")
        lines = export_jsonl(path, engine.store)
        loaded = load_jsonl(path)
        print(f"Exported {lines} scored points to scores.jsonl; "
              f"loaded back {sorted(loaded)}")
        offline = apply_pipeline(parse_pipeline(PIPELINE),
                                 loaded[tenant].scores)
        live = incremental
        match = all(np.array_equal(offline[name], live[name], equal_nan=True)
                    for name in offline)
        print(f"Offline replay matches the live engine bitwise: {match}")


if __name__ == "__main__":
    main()
