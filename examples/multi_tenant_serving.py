"""Multi-tenant streaming detection with the serving layer.

Run with::

    python examples/multi_tenant_serving.py

Several simulated microservice-latency streams ("tenants") are monitored
concurrently by one :class:`repro.serving.DetectorService`.  A single
ImDiffusion model is trained once, published in the model registry, loaded
back warm, and then shared by all tenants; the service forms detection
windows per tenant, coalesces them into micro-batched denoiser calls and
re-evaluates alarms over each tenant's sliding evaluation buffer — the
long-lived-service version of the paper's Sec. 6 deployment.

The sharded inference engine is opt-in: pass ``--score-workers N`` to fan
each flushed cross-tenant batch across ``N`` spawned scoring workers
(parameters travel once through shared memory, not per batch).  Scores are
bit-identical at every worker count; on a multi-core box the sharded run
simply finishes sooner.
"""

from __future__ import annotations

import argparse
import tempfile

import numpy as np

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.data import MicroserviceLatencySimulator, ProductionConfig
from repro.evaluation import evaluate_labels
from repro.serving import DetectorService, ModelRegistry, ServingConfig

NUM_TENANTS = 4
SAMPLES = 288  # three simulated days per tenant


def simulate_tenant(seed: int):
    """One tenant's latency telemetry, log-transformed (latency noise is
    multiplicative, so monitoring happens on the log scale)."""
    simulator = MicroserviceLatencySimulator(ProductionConfig(
        num_services=6, train_days=3.0, test_days=SAMPLES / 96.0, seed=seed))
    trace = simulator.generate()
    return np.log(trace.train), np.log(trace.test), trace.test_labels


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--score-workers", type=int, default=1,
        help="sharded inference: fan flushed cross-tenant batches across "
             "this many spawned scoring workers (default: score in-process)")
    args = parser.parse_args()

    tenants = {f"tenant-{i}": simulate_tenant(seed=100 + i)
               for i in range(NUM_TENANTS)}

    # Train the shared model once and publish it through the registry.
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-registry-"))
    config = ImDiffusionConfig(
        window_size=32, num_steps=8, epochs=2, hidden_dim=16, num_blocks=1,
        num_masked_windows=4, num_unmasked_windows=4, max_train_windows=48,
        train_stride=8, deterministic_inference=True, collect="x0",
        error_percentile=96.0, seed=0,
        # Inference-engine knob: serve with a strided reverse trajectory (4
        # denoiser calls instead of 8 per window — grad-free either way).
        # Drop back to sampler="full" for the paper's exact algorithm.
        sampler="strided", num_inference_steps=4,
    )
    train = tenants["tenant-0"][0]
    print(f"Training the shared latency model on {train.shape[0]} samples ...")
    detector = ImDiffusionDetector(config).fit(train)
    registry.save("latency-monitor", detector)
    print(f"Registry entry: {registry.record('latency-monitor').describe()}\n")

    # Serve every tenant from the same registry-loaded model.
    service = DetectorService(
        registry.load("latency-monitor"),
        ServingConfig(flush_size=8, history=512,
                      score_workers=args.score_workers))
    for tenant in tenants:
        service.register_tenant(tenant)

    if args.score_workers > 1:
        print(f"Sharded inference: {args.score_workers} scoring workers")
    print(f"Streaming {NUM_TENANTS} tenants x {SAMPLES} samples ...")
    alarms = []
    with service:  # releases the scoring pool and its shared memory on exit
        for step in range(SAMPLES):
            for tenant, (_, test, _) in tenants.items():
                if step < test.shape[0]:
                    alarms.extend(service.ingest(tenant, test[step]))
            alarms.extend(service.pump())
        alarms.extend(service.drain())

    print(f"\n{'tenant':10s} {'alarms':>7s} {'incidents':>10s} {'f1':>6s}")
    for tenant, (_, test, labels) in tenants.items():
        view = service.tenant_view(tenant)
        end = min(view.end, labels.shape[0])
        truth = labels[view.start:end]
        metrics = evaluate_labels(view.labels[:end - view.start],
                                  view.scores[:end - view.start], truth)
        count = sum(1 for alarm in alarms if alarm.tenant == tenant)
        print(f"{tenant:10s} {count:7d} {int(truth.sum()):10d} {metrics.f1:6.3f}")

    print("\nService telemetry:")
    print(service.metrics.format_table())


if __name__ == "__main__":
    main()
