"""Online latency monitoring: the paper's production scenario (Sec. 6).

Run with::

    python examples/online_latency_monitoring.py

A microservice latency stream (30-second samples, diurnal seasonality,
injected latency-regression incidents) is monitored online: ImDiffusion and
the legacy EWMA/k-sigma detector are both trained on recent history and then
stream the live test data.  The script reports the relative improvements —
the same quantities Table 7 of the paper reports for the Microsoft
email-delivery deployment.
"""

from __future__ import annotations

import numpy as np

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.data import MicroserviceLatencySimulator, ProductionConfig
from repro.data.production import ProductionTrace
from repro.production import LegacyThresholdDetector, compare_with_legacy, run_online_evaluation


def main() -> None:
    simulator = MicroserviceLatencySimulator(ProductionConfig(
        num_services=10, train_days=6.0, test_days=6.0, seed=7,
        incident_min_length=6, incident_max_length=16,
    ))
    raw = simulator.generate()
    # Latency noise and regressions are multiplicative; monitoring works on the
    # log scale (standard practice for latency telemetry).
    trace = ProductionTrace(train=np.log(raw.train), test=np.log(raw.test),
                            test_labels=raw.test_labels, segments=raw.segments)
    print(f"Latency stream: {trace.num_services} microservices, "
          f"{trace.test.shape[0]} samples, "
          f"{len(trace.segments)} injected incidents.\n")

    print("Running the legacy EWMA / k-sigma monitor ...")
    legacy = run_online_evaluation(LegacyThresholdDetector(sigma_threshold=4.0, seed=0),
                                   trace, rescore_every=64)

    print("Running ImDiffusion as the latency monitor ...")
    config = ImDiffusionConfig(
        window_size=48, num_steps=10, epochs=4, hidden_dim=24, num_blocks=1,
        num_masked_windows=4, num_unmasked_windows=4, max_train_windows=48,
        train_stride=8, deterministic_inference=True, collect="x0",
        error_percentile=93.0, seed=0,
    )
    imdiffusion = run_online_evaluation(ImDiffusionDetector(config), trace, rescore_every=96)

    print("\n                 legacy    ImDiffusion")
    print(f"Precision      : {legacy.metrics.precision:7.3f}   {imdiffusion.metrics.precision:7.3f}")
    print(f"Recall         : {legacy.metrics.recall:7.3f}   {imdiffusion.metrics.recall:7.3f}")
    print(f"F1             : {legacy.metrics.f1:7.3f}   {imdiffusion.metrics.f1:7.3f}")
    print(f"R-AUC-PR       : {legacy.metrics.r_auc_pr:7.3f}   {imdiffusion.metrics.r_auc_pr:7.3f}")
    print(f"ADD            : {legacy.metrics.add:7.1f}   {imdiffusion.metrics.add:7.1f}")

    comparison = compare_with_legacy(imdiffusion, legacy)
    print("\nRelative improvement of ImDiffusion over the legacy monitor:")
    print(f"  F1        : {comparison['f1_improvement']:+.1%}")
    print(f"  Precision : {comparison['precision_improvement']:+.1%}")
    print(f"  Recall    : {comparison['recall_improvement']:+.1%}")
    print(f"  R-AUC-PR  : {comparison['r_auc_pr_improvement']:+.1%}")
    print(f"  ADD       : {comparison['add_reduction']:+.1%} (positive = faster detection)")
    print(f"  Throughput: {comparison['inference_points_per_second']:.1f} points/second")


if __name__ == "__main__":
    main()
