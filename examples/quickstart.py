"""Quickstart: train ImDiffusion on an SMD-like dataset and detect anomalies.

Run with::

    python examples/quickstart.py

The script loads the Server-Machine-Dataset analogue, trains a small
ImDiffusion detector, predicts anomaly labels for the test split and prints
the point-adjusted precision/recall/F1 together with the detection delay.
Sizes are kept small so the whole script finishes in well under a minute on a
laptop CPU.
"""

from __future__ import annotations

import numpy as np

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.data import load_dataset
from repro.evaluation import evaluate_labels


def main() -> None:
    dataset = load_dataset("SMD", seed=0, scale=0.15)
    print(f"Dataset   : {dataset.name}  train={dataset.train.shape}  test={dataset.test.shape}")
    print(f"Anomalies : {dataset.anomaly_ratio:.1%} of test timestamps "
          f"({len(dataset.segments)} events)")

    config = ImDiffusionConfig(
        window_size=40,
        num_steps=12,
        epochs=3,
        hidden_dim=24,
        num_blocks=2,
        max_train_windows=24,
        seed=0,
    )
    detector = ImDiffusionDetector(config)

    print("\nTraining the imputed diffusion model ...")
    detector.fit(dataset.train)
    print("Epoch losses:", [round(loss, 4) for loss in detector.train_losses])

    print("\nRunning ensemble anomaly inference ...")
    result = detector.predict(dataset.test)
    metrics = evaluate_labels(result.labels, result.scores, dataset.test_labels)

    print(f"\nPrecision : {metrics.precision:.3f}")
    print(f"Recall    : {metrics.recall:.3f}")
    print(f"F1        : {metrics.f1:.3f}")
    print(f"R-AUC-PR  : {metrics.r_auc_pr:.3f}")
    print(f"ADD       : {metrics.add:.1f} timestamps")
    print(f"Throughput: {result.points_per_second:.1f} points/second")

    flagged = int(result.labels.sum())
    print(f"\nFlagged {flagged} of {result.labels.size} timestamps as anomalous "
          f"({np.mean(result.labels):.1%}).")


if __name__ == "__main__":
    main()
