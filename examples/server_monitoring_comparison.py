"""Server-monitoring scenario: ImDiffusion versus classical baselines.

Run with::

    python examples/server_monitoring_comparison.py

The scenario mirrors the paper's motivating use case — monitoring a fleet of
servers whose metrics (CPU, memory, I/O, network) are correlated and exhibit
sparse incidents.  The script evaluates ImDiffusion against three
representative baselines from different families (isolation trees,
forecasting, reconstruction) on the SMD analogue and prints a comparison
table.
"""

from __future__ import annotations

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.baselines import IsolationForestDetector, LSTMADDetector, OmniAnomalyDetector
from repro.data import load_dataset
from repro.evaluation import EvaluationSummary, evaluate_labels, format_results_table


def build_imdiffusion(seed: int) -> ImDiffusionDetector:
    config = ImDiffusionConfig(
        window_size=40, num_steps=10, epochs=3, hidden_dim=24, num_blocks=1,
        max_train_windows=24, seed=seed,
    )
    return ImDiffusionDetector(config)


def main() -> None:
    dataset = load_dataset("SMD", seed=0, scale=0.12)
    print(f"Monitoring scenario: {dataset.num_features} server metrics, "
          f"{dataset.test.shape[0]} timestamps, {len(dataset.segments)} incidents.\n")

    detectors = {
        "ImDiffusion": build_imdiffusion(0),
        "IForest": IsolationForestDetector(num_trees=30, seed=0),
        "LSTM-AD": LSTMADDetector(history=12, epochs=3, seed=0),
        "OmniAnomaly": OmniAnomalyDetector(window_size=24, epochs=3, seed=0),
    }

    summaries = []
    for name, detector in detectors.items():
        print(f"Running {name} ...")
        result = detector.fit_predict(dataset.train, dataset.test)
        metrics = evaluate_labels(result.labels, result.scores, dataset.test_labels)
        summary = EvaluationSummary(detector=name, dataset=dataset.name, runs=[metrics])
        summaries.append(summary)

    print("\n" + format_results_table(summaries))
    best = max(summaries, key=lambda s: s.f1)
    print(f"\nBest F1: {best.detector} ({best.f1:.3f})")


if __name__ == "__main__":
    main()
