"""repro — a reproduction of ImDiffusion (VLDB 2023).

ImDiffusion combines time-series *imputation* with *diffusion models* for
multivariate time-series anomaly detection.  This package provides:

* :mod:`repro.core` — the ImDiffusion detector, ensemble voting and thresholds,
* :mod:`repro.diffusion`, :mod:`repro.masking`, :mod:`repro.models` — the
  diffusion machinery, masking strategies and the ImTransformer denoiser,
* :mod:`repro.nn` — a NumPy autograd/neural-network substrate (no PyTorch),
* :mod:`repro.training` — the shared training engine (Trainer, callbacks,
  vectorized window loading) used by the detector and all baselines,
* :mod:`repro.data` — synthetic analogues of the six benchmark datasets and a
  production telemetry simulator,
* :mod:`repro.baselines` — the ten baseline detectors of the paper,
* :mod:`repro.evaluation` — point-adjusted P/R/F1, R-AUC-PR, ADD and the
  multi-run experiment harness,
* :mod:`repro.production` — the online / streaming deployment harness.

Quick start::

    from repro import ImDiffusionConfig, ImDiffusionDetector
    from repro.data import load_dataset
    from repro.evaluation import evaluate_labels

    dataset = load_dataset("SMD", seed=0, scale=0.2)
    detector = ImDiffusionDetector(ImDiffusionConfig(window_size=32, num_steps=10, epochs=3))
    result = detector.fit_predict(dataset.train, dataset.test)
    print(evaluate_labels(result.labels, result.scores, dataset.test_labels))
"""

from .core import DetectionResult, ImDiffusionConfig, ImDiffusionDetector

__version__ = "1.0.0"

__all__ = ["DetectionResult", "ImDiffusionConfig", "ImDiffusionDetector", "__version__"]
