"""repro — a reproduction of ImDiffusion (VLDB 2023).

ImDiffusion combines time-series *imputation* with *diffusion models* for
multivariate time-series anomaly detection.  This package provides:

* :mod:`repro.core` — the ImDiffusion detector, ensemble voting and thresholds,
* :mod:`repro.diffusion`, :mod:`repro.masking`, :mod:`repro.models` — the
  diffusion machinery, masking strategies and the ImTransformer denoiser,
* :mod:`repro.nn` — a NumPy autograd/neural-network substrate (no PyTorch),
* :mod:`repro.training` — the shared training engine (Trainer, callbacks,
  vectorized window loading) used by the detector and all baselines,
* :mod:`repro.data` — synthetic analogues of the six benchmark datasets, the
  dataset registry and a production telemetry simulator,
* :mod:`repro.baselines` — the ten baseline detectors of the paper,
* :mod:`repro.evaluation` — point-adjusted P/R/F1, R-AUC-PR, ADD and the
  multi-run experiment harness,
* :mod:`repro.serving` — the multi-tenant streaming service, model registry
  and sharded inference,
* :mod:`repro.analytics` — windowed score analytics and declarative alerting,
* :mod:`repro.adaptation` — streaming drift detection and the online
  fine-tune → publish → hot-swap loop,
* :mod:`repro.production` — the online / streaming deployment harness.

The names re-exported here are the supported public API: each one carries
an example-bearing docstring (enforced by a tier-1 test) and is documented
in ``docs/architecture.md``.

Quick start::

    from repro import ImDiffusionConfig, ImDiffusionDetector
    from repro.data import load_dataset
    from repro.evaluation import evaluate_labels

    dataset = load_dataset("SMD", seed=0, scale=0.2)
    detector = ImDiffusionDetector(ImDiffusionConfig(window_size=32, num_steps=10, epochs=3))
    result = detector.fit_predict(dataset.train, dataset.test)
    print(evaluate_labels(result.labels, result.scores, dataset.test_labels))
"""

from .adaptation import (
    AdaptationConfig,
    AdaptationController,
    DriftMonitor,
    DriftReference,
    parse_drift_policy,
    run_drift_scenario,
    training_tail_reference,
)
from .analytics import AnalyticsEngine, export_jsonl, load_jsonl, parse_policy
from .core import DetectionResult, ImDiffusionConfig, ImDiffusionDetector
from .data import DatasetRegistry, MTSDataset, list_datasets, load_dataset
from .diffusion.samplers import make_sampler, register_sampler, sampler_names
from .evaluation import RunMetrics, evaluate_labels
from .serving import (
    DetectorService,
    ModelRegistry,
    ServiceMetrics,
    ServingConfig,
)
from .training import Trainer, TrainResult

__version__ = "1.0.0"

__all__ = [
    # core
    "DetectionResult",
    "ImDiffusionConfig",
    "ImDiffusionDetector",
    # data
    "DatasetRegistry",
    "MTSDataset",
    "list_datasets",
    "load_dataset",
    # training
    "Trainer",
    "TrainResult",
    # evaluation
    "RunMetrics",
    "evaluate_labels",
    # diffusion samplers
    "make_sampler",
    "register_sampler",
    "sampler_names",
    # serving
    "DetectorService",
    "ModelRegistry",
    "ServiceMetrics",
    "ServingConfig",
    # analytics
    "AnalyticsEngine",
    "parse_policy",
    "export_jsonl",
    "load_jsonl",
    # adaptation
    "AdaptationConfig",
    "AdaptationController",
    "DriftMonitor",
    "DriftReference",
    "parse_drift_policy",
    "run_drift_scenario",
    "training_tail_reference",
    "__version__",
]
