"""Online adaptation: streaming drift detection and live model refresh.

This package closes the loop the rest of the stack leaves open.  Serving
(:mod:`repro.serving`) scores live telemetry against a *frozen* model;
analytics (:mod:`repro.analytics`) watches those scores; but when the data
distribution genuinely moves, somebody has to retrain and redeploy.  Here
that somebody is code:

* :mod:`repro.adaptation.detectors` — incremental drift rules (score-quantile
  shift, imputation-error shift, PSI and KS window comparators) against a
  frozen training-tail :class:`DriftReference`, composed through the same
  policy grammar the alerting engine uses and edge-triggered into
  :class:`DriftEvent` streams via :class:`DriftMonitor`.
* :mod:`repro.adaptation.controller` — :class:`AdaptationController`, which
  on a confirmed drift edge snapshots the tenant's raw ring buffer,
  fine-tunes a checkpoint clone, evaluates it on a held-out tail under
  common random numbers, publishes it to the model registry and hot-swaps
  it under the live service — rolling back bit-exactly on regression.
* :mod:`repro.adaptation.scenario` — :func:`run_drift_scenario`, the
  end-to-end frozen-vs-adapted comparison used by ``repro adapt`` and the
  ``bench-adaptation`` CI job.

See ``docs/architecture.md`` for where this sits in the dataflow and
``docs/determinism.md`` for the rollback bit-identity contract.
"""

from .controller import (
    AdaptationConfig,
    AdaptationController,
    AdaptationRecord,
    training_tail_reference,
)
from .detectors import (
    DRIFT_POLICY_PRESETS,
    DriftEvent,
    DriftMonitor,
    DriftReference,
    DriftRule,
    ErrorShiftRule,
    KSRule,
    PSIRule,
    QuantileShiftRule,
    drift_statistics,
    parse_drift_policy,
)
from .scenario import DriftScenarioResult, run_drift_scenario

__all__ = [
    "DriftReference",
    "DriftEvent",
    "DriftRule",
    "QuantileShiftRule",
    "ErrorShiftRule",
    "PSIRule",
    "KSRule",
    "DriftMonitor",
    "DRIFT_POLICY_PRESETS",
    "parse_drift_policy",
    "drift_statistics",
    "AdaptationConfig",
    "AdaptationRecord",
    "AdaptationController",
    "training_tail_reference",
    "DriftScenarioResult",
    "run_drift_scenario",
]
