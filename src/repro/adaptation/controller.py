"""The closed drift → fine-tune → publish → hot-swap loop.

:class:`AdaptationController` attaches to a running
:class:`~repro.serving.DetectorService` and closes the loop the serving and
training layers left open:

1. **Detect** — every :meth:`poll` pulls the scores each tenant's alarm scan
   pushed into the service's :class:`~repro.analytics.ScoreStore` and feeds
   them through a per-tenant :class:`~repro.adaptation.DriftMonitor` (drift
   rules vs the frozen training-tail :class:`~repro.adaptation.DriftReference`,
   edge-triggered through the analytics policy engine).
2. **Fine-tune** — on a ``drift`` edge the controller snapshots the recent
   span of the tenant's raw ring buffer, clones the serving detector from
   its checkpoint and runs :meth:`ImDiffusionDetector.fine_tune` on it
   (warm start, frozen scaler, budget + patience capped, ``num_workers``
   honored).  The clone fine-tunes on a *dedicated* random stream, so the
   serving detector's scoring stream is never consumed.
3. **Evaluate** — baseline and candidate are compared on the held-out tail
   slice of the snapshot under common random numbers
   (:meth:`ImDiffusionDetector.holdout_error` with a shared seed), a paired
   comparison.
4. **Publish + hot-swap** — the candidate is published to the
   :class:`~repro.serving.ModelRegistry` as the lineage's next version and
   swapped under the live service via the shared-memory generation counter
   (no worker restarts).
5. **Rollback** — if the candidate's held-out error regresses past
   ``regression_tolerance``, the pre-swap weights are restored bit-exactly.
   No scoring happens between swap and rollback (the service is
   single-threaded) and fine-tuning never touched the serving random
   stream, so a rolled-back stream is **bit-identical** to one that never
   swapped.

Every transition is counted in :class:`~repro.serving.ServiceMetrics`
(``drift_events``, ``adaptations_applied``, ``models_published``,
``rollbacks``, ``hot_swaps``) and recorded as an :class:`AdaptationRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core import ImDiffusionDetector
from ..core.modes import recommended_stride
from ..serving import DetectorService, ModelRegistry
from .detectors import DriftEvent, DriftMonitor, DriftReference, parse_drift_policy

__all__ = [
    "AdaptationConfig",
    "AdaptationRecord",
    "AdaptationController",
    "training_tail_reference",
]

#: Seed lanes of the adaptation loop, decoupled from the scoring stream.
_FINE_TUNE_LANE = 7919
_HOLDOUT_LANE = 6151


def training_tail_reference(detector: ImDiffusionDetector,
                            train: np.ndarray,
                            points: int = 256,
                            bins: int = 10) -> DriftReference:
    """Freeze a drift reference from the scores of the training tail.

    Scores the last ``points`` of the training series with a *checkpoint
    clone* of ``detector`` (so the serving detector's random stream is not
    consumed) and freezes the resulting final-step error distribution.
    This is the in-distribution yardstick every drift rule compares the
    live serving scores against.
    """
    train = np.asarray(train, dtype=np.float64)
    points = min(int(points), train.shape[0])
    if points < detector.config.window_size:
        raise ValueError("reference tail is shorter than one window")
    clone = ImDiffusionDetector.from_checkpoint(*detector.to_checkpoint())
    step_errors = clone.score(train[-points:])
    return DriftReference.from_scores(step_errors[max(step_errors)], bins=bins)


@dataclass
class AdaptationConfig:
    """Knobs of the online adaptation loop.

    ``policy`` is a drift expression or preset name (see
    :func:`repro.adaptation.parse_drift_policy`).  ``regression_tolerance``
    is the allowed *relative* held-out error increase before rollback
    (``0.05`` = candidate may be up to 5% worse); a negative tolerance
    forces every adaptation to roll back, which is how the tests and the
    ``bench-adaptation`` CI job exercise rollback bit-identity.
    """

    policy: str = "default"
    min_adapt_windows: int = 8          # fine-tune windows required to adapt
    adapt_epochs: int = 2               # fine-tune epoch budget
    patience: Optional[int] = None      # early-stopping patience (None = off)
    learning_rate: Optional[float] = None  # None = detector's configured LR
    holdout_fraction: float = 0.25      # snapshot tail held out for evaluation
    regression_tolerance: float = 0.05  # relative held-out regression allowed
    cooldown_points: int = 256          # per-tenant quiet span between adapts
    max_snapshot_points: int = 2048     # ring-buffer span snapshot bound
    num_workers: Optional[int] = None   # fine-tune gradient workers
    reference_points: int = 256         # training-tail scores in the reference
    reference_bins: int = 10            # PSI histogram bins of the reference

    def __post_init__(self) -> None:
        if self.min_adapt_windows < 1:
            raise ValueError("min_adapt_windows must be at least 1")
        if self.adapt_epochs < 1:
            raise ValueError("adapt_epochs must be at least 1")
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        if self.cooldown_points < 0:
            raise ValueError("cooldown_points must be non-negative")
        if self.max_snapshot_points < 1:
            raise ValueError("max_snapshot_points must be positive")


@dataclass(frozen=True)
class AdaptationRecord:
    """One resolved adaptation attempt (the loop's audit trail)."""

    tenant: str
    index: int                       # stream index of the triggering edge
    action: str                      # "adapted" | "rolled_back" | "skipped"
    version: Optional[int] = None    # registry version published (if any)
    base_error: float = float("nan")      # held-out error of the old model
    candidate_error: float = float("nan")  # held-out error of the candidate
    generation: int = 0              # parameter generation after the attempt
    detail: str = ""

    def describe(self) -> str:
        text = f"[{self.tenant}] {self.action} at t={self.index}"
        if self.version is not None:
            text += f" -> v{self.version}"
        if np.isfinite(self.base_error):
            text += (f" (held-out error {self.base_error:.6f} -> "
                     f"{self.candidate_error:.6f})")
        if self.detail:
            text += f": {self.detail}"
        return text


class AdaptationController:
    """Drive the drift→fine-tune→publish→hot-swap loop over a live service.

    The controller is single-threaded by design: call :meth:`poll` between
    ingest batches (``repro serve --adapt`` does this on every chunk).
    Because adaptation runs synchronously inside :meth:`poll`, no window is
    ever scored between a swap and its rollback — the foundation of the
    rollback bit-identity guarantee.

    Examples
    --------
    >>> controller = AdaptationController(
    ...     service, reference,
    ...     registry=registry, model_name="served",
    ...     config=AdaptationConfig(policy="sensitive"),
    ... )                                                  # doctest: +SKIP
    >>> service.ingest("tenant-0", chunk)                  # doctest: +SKIP
    >>> records = controller.poll()                        # doctest: +SKIP
    """

    def __init__(self, service: DetectorService, reference: DriftReference,
                 config: Optional[AdaptationConfig] = None,
                 registry: Optional[ModelRegistry] = None,
                 model_name: str = "served") -> None:
        self.service = service
        self.reference = reference
        self.config = config or AdaptationConfig()
        self.registry = registry
        self.model_name = model_name
        self.policy = parse_drift_policy(self.config.policy, reference,
                                         name="drift")
        self._monitors: Dict[str, DriftMonitor] = {}
        self._cursors: Dict[str, int] = {}
        self._cooldown_until: Dict[str, int] = {}
        self._rounds = 0
        self.history: List[AdaptationRecord] = []
        self.drift_events: List[DriftEvent] = []
        self.base_version: Optional[int] = None
        if registry is not None and registry.latest_version(model_name) is None:
            # Anchor the lineage: v1 is the model currently serving, so the
            # first adaptation publishes v2 and rollback targets are always
            # resolvable from the registry.
            self.base_version = registry.publish_version(
                model_name, service.scorer.detector,
                metadata={"source": "serving-baseline"})
            service.metrics.record_publish()
        elif registry is not None:
            self.base_version = registry.latest_version(model_name)

    # ------------------------------------------------------------------
    @property
    def active_version(self) -> Optional[int]:
        """The registry version currently serving (after swaps/rollbacks).

        Rolled-back and skipped attempts leave the serving weights exactly
        as they were, so the active version is the most recent *applied*
        adaptation — or the baseline when none stuck.
        """
        for record in reversed(self.history):
            if record.action == "adapted" and record.version is not None:
                return record.version
        return self.base_version

    # ------------------------------------------------------------------
    def poll(self) -> List[AdaptationRecord]:
        """Consume fresh served scores; adapt on confirmed drift edges.

        Pulls every tenant's scores from the service's analytics store
        (from the per-tenant cursor to the watermark), advances the drift
        monitors, and runs the full fine-tune→evaluate→publish→swap(-or-
        rollback) sequence for each rising edge.  Returns the adaptation
        records produced by this poll.
        """
        records: List[AdaptationRecord] = []
        store = self.service.analytics.store
        for tenant in store.tenants():
            monitor = self._monitors.get(tenant)
            if monitor is None:
                monitor = self._monitors[tenant] = DriftMonitor(self.policy,
                                                                tenant)
            watermark = store.watermark(tenant)
            cursor = self._cursors.get(tenant, 0)
            if watermark <= cursor:
                continue
            stream = store.view(tenant, cursor, watermark)
            self._cursors[tenant] = watermark
            for offset, score in enumerate(stream.scores):
                index = stream.start + offset
                for event in monitor.update(index, float(score)):
                    self.drift_events.append(event)
                    self.service.metrics.record_drift(event)
                    if event.kind != "drift":
                        continue
                    record = self._adapt(tenant, index)
                    records.append(record)
                    if record.action != "skipped":
                        # Re-arm against the post-swap score distribution.
                        monitor.reset()
        return records

    # ------------------------------------------------------------------
    def _skip(self, tenant: str, index: int, reason: str) -> AdaptationRecord:
        record = AdaptationRecord(tenant=tenant, index=index, action="skipped",
                                  detail=reason)
        self.history.append(record)
        self.service.metrics.record_adaptation("skipped")
        return record

    def _adapt(self, tenant: str, index: int) -> AdaptationRecord:
        config = self.config
        service = self.service
        scorer = service.scorer
        detector = scorer.detector
        window = scorer.window_size

        if index < self._cooldown_until.get(tenant, 0):
            return self._skip(tenant, index, "cooldown")

        snapshot = scorer.raw_tail(tenant, config.max_snapshot_points)
        holdout_points = max(window,
                             int(round(snapshot.shape[0]
                                       * config.holdout_fraction)))
        tune = snapshot[:-holdout_points]
        holdout = snapshot[-holdout_points:]
        stride = detector.config.train_stride or recommended_stride(
            detector.config)
        if tune.shape[0] < window:
            tune_windows = 0
        else:
            tune_windows = 1 + (tune.shape[0] - window) // stride
        if tune_windows < config.min_adapt_windows:
            return self._skip(
                tenant, index,
                f"{tune_windows} buffered fine-tune windows < "
                f"min_adapt_windows={config.min_adapt_windows}")

        # Warm-start candidate from the serving checkpoint.  The checkpoint
        # arrays double as the bit-exact rollback target.
        baseline_arrays, baseline_metadata = detector.to_checkpoint()
        candidate = ImDiffusionDetector.from_checkpoint(baseline_arrays,
                                                        baseline_metadata)
        round_index = self._rounds + 1
        candidate.fine_tune(
            tune,
            epochs=config.adapt_epochs,
            learning_rate=config.learning_rate,
            num_workers=config.num_workers,
            patience=config.patience,
            seed=detector.config.seed + _FINE_TUNE_LANE * round_index,
        )

        # Paired held-out comparison under common random numbers.
        eval_seed = detector.config.seed + _HOLDOUT_LANE * round_index
        base_error = detector.holdout_error(holdout, seed=eval_seed)
        candidate_error = candidate.holdout_error(holdout, seed=eval_seed)

        version = None
        if self.registry is not None:
            version = self.registry.publish_version(
                self.model_name, candidate,
                metadata={
                    "source": "adaptation",
                    "tenant": tenant,
                    "trigger_index": int(index),
                    "base_error": float(base_error),
                    "candidate_error": float(candidate_error),
                })
            service.metrics.record_publish()

        generation = service.hot_swap(candidate)
        regressed = candidate_error > ((1.0 + config.regression_tolerance)
                                       * base_error)
        if regressed:
            rollback = ImDiffusionDetector.from_checkpoint(baseline_arrays,
                                                           baseline_metadata)
            generation = service.hot_swap(rollback)
            action = "rolled_back"
            detail = (f"held-out error regressed past tolerance "
                      f"{config.regression_tolerance:+.2f}")
        else:
            action = "adapted"
            detail = f"fine-tuned on {tune_windows} windows"

        self._rounds = round_index
        self._cooldown_until[tenant] = index + config.cooldown_points
        record = AdaptationRecord(
            tenant=tenant, index=index, action=action, version=version,
            base_error=float(base_error),
            candidate_error=float(candidate_error),
            generation=int(generation), detail=detail)
        self.history.append(record)
        service.metrics.record_adaptation(action)
        return record

    # ------------------------------------------------------------------
    def rollback_to(self, version: int) -> int:
        """Manually restore a published registry version under the service.

        Loads ``model_name`` version ``version`` from the registry and
        hot-swaps it in.  Raises ``KeyError`` (and leaves the serving
        weights untouched) when that version's checkpoint no longer exists —
        the deleted-checkpoint edge case of the hot-swap tests.
        """
        if self.registry is None:
            raise ValueError("rollback_to requires a registry")
        restored = self.registry.load_version(self.model_name, version)
        return self.service.hot_swap(restored)
