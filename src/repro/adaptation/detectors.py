"""Streaming drift detectors over served score streams.

A fitted detector is only as good as the distribution it was trained on.
These rules watch each tenant's *served* anomaly scores and compare them
against a :class:`DriftReference` — statistics frozen from the model's
training tail — to decide when the world has moved:

``quantile_shift(q=90, window=64, ratio=1.4)``
    the rolling ``q``-th score percentile exceeds ``ratio`` × the frozen
    reference percentile (the serving analogue of the score-quantile shift
    monitors of production anomaly platforms),
``error_shift(window=64, ratio=1.5)``
    the rolling mean imputation error exceeds ``ratio`` × the frozen mean
    (scores *are* final-step imputation errors, so this is the
    imputation-error shift detector),
``psi(window=128, threshold=0.25)``
    the Population Stability Index between the rolling window's score
    histogram and the reference histogram (reference-quantile bins,
    Laplace-smoothed) exceeds ``threshold``,
``ks(window=128, threshold=0.35)``
    the Kolmogorov–Smirnov statistic between the rolling window's empirical
    CDF and the reference sample's CDF exceeds ``threshold``.

Every rule implements the :class:`repro.analytics.AlertRule` interface, so
drift expressions parse through the same grammar as alert policies
(``and``/``or``/parentheses, via :func:`parse_drift_policy`) and evaluate
through the same edge-triggered :class:`~repro.analytics.PolicyMonitor`
machinery — a :class:`DriftMonitor` emits one :class:`DriftEvent` with
``kind="drift"`` when the expression turns true and one with
``kind="recovered"`` when it turns false again.

The rules are *incremental* — O(window) work per appended score over a
bounded buffer — and each one also has the naive full-recompute
:meth:`~repro.analytics.AlertRule.reference` evaluation.  Both paths funnel
every window through the same ``_statistic`` kernel on the same float64
values, so they agree **bitwise** (the property tests assert
``np.array_equal`` on random streams), mirroring the
incremental-vs-recompute contract of the analytics operator library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analytics.policy import (
    AlertPolicy,
    AlertRule,
    PolicyMonitor,
    _Combinator,
    parse_policy,
)

__all__ = [
    "DriftReference",
    "DriftEvent",
    "DriftRule",
    "QuantileShiftRule",
    "ErrorShiftRule",
    "PSIRule",
    "KSRule",
    "DriftMonitor",
    "DRIFT_POLICY_PRESETS",
    "parse_drift_policy",
    "drift_statistics",
]

#: Laplace smoothing mass per histogram bin (keeps PSI finite on empty bins).
_PSI_ALPHA = 0.5

#: Named drift-policy presets accepted anywhere a drift expression is
#: (``repro serve --adapt default``, ``AdaptationConfig.policy``).
DRIFT_POLICY_PRESETS = {
    "default": ("quantile_shift(q=90, window=64, ratio=1.4) "
                "or error_shift(window=64, ratio=1.8)"),
    "sensitive": ("quantile_shift(q=75, window=32, ratio=1.2) "
                  "or error_shift(window=32, ratio=1.3) "
                  "or ks(window=64, threshold=0.3)"),
    "conservative": ("error_shift(window=128, ratio=2.0) "
                     "and psi(window=128, threshold=0.25)"),
}


class DriftReference:
    """Frozen score statistics of the model's training tail.

    Built once when a model is trained (or published) from the scores the
    model produces on the *end* of its own training series — the most recent
    data known to be in-distribution — and then compared against the live
    serving scores by the drift rules.  Everything is precomputed and
    immutable, so one reference can back any number of per-tenant monitors.

    Examples
    --------
    >>> import numpy as np
    >>> reference = DriftReference.from_scores(np.linspace(0.0, 1.0, 101))
    >>> round(reference.mean, 2)
    0.5
    >>> round(reference.quantile(90.0), 2)
    0.9
    """

    def __init__(self, sample: np.ndarray, bins: int = 10) -> None:
        sample = np.asarray(sample, dtype=np.float64).ravel()
        if sample.size < 2:
            raise ValueError("a drift reference needs at least 2 scores")
        if not np.all(np.isfinite(sample)):
            raise ValueError("reference scores must be finite")
        if bins < 2:
            raise ValueError("bins must be at least 2")
        self.sample = np.sort(sample)
        self.size = int(self.sample.size)
        self.mean = float(np.mean(self.sample))
        # Histogram bins at the reference quantiles (equal reference mass per
        # bin); duplicate edges from constant stretches are collapsed so the
        # bin index function stays well defined.
        inner = np.quantile(self.sample, np.linspace(0.0, 1.0, bins + 1)[1:-1])
        self.bin_edges = np.unique(inner)
        counts = np.bincount(self._bin_of(self.sample),
                             minlength=self.num_bins).astype(np.float64)
        self.bin_fractions = self._smooth(counts)

    @classmethod
    def from_scores(cls, scores: Sequence[float], bins: int = 10) -> "DriftReference":
        """Freeze a reference from a 1-D array of training-tail scores."""
        return cls(np.asarray(scores, dtype=np.float64), bins=bins)

    # ------------------------------------------------------------------
    @property
    def num_bins(self) -> int:
        """Number of PSI histogram bins including the two open-ended tails."""
        return self.bin_edges.size + 1

    def _bin_of(self, values: np.ndarray) -> np.ndarray:
        return np.searchsorted(self.bin_edges, values, side="right")

    def _smooth(self, counts: np.ndarray) -> np.ndarray:
        total = counts.sum()
        return ((counts + _PSI_ALPHA)
                / (total + _PSI_ALPHA * self.num_bins))

    def quantile(self, q: float) -> float:
        """The frozen ``q``-th percentile (0–100) of the reference scores."""
        return float(np.quantile(self.sample, q / 100.0))

    # -- statistics against a window ------------------------------------
    def psi(self, window: np.ndarray) -> float:
        """Population Stability Index of ``window`` vs the reference."""
        counts = np.bincount(self._bin_of(window),
                             minlength=self.num_bins).astype(np.float64)
        observed = self._smooth(counts)
        return float(np.sum((observed - self.bin_fractions)
                            * np.log(observed / self.bin_fractions)))

    def ks(self, window: np.ndarray) -> float:
        """Two-sample Kolmogorov–Smirnov statistic of ``window`` vs the reference."""
        ordered = np.sort(window)
        n = ordered.size
        ref_cdf = np.searchsorted(self.sample, ordered, side="right") / self.size
        upper = np.arange(1, n + 1, dtype=np.float64) / n
        lower = np.arange(0, n, dtype=np.float64) / n
        return float(max(np.max(np.abs(ref_cdf - upper)),
                         np.max(np.abs(ref_cdf - lower))))

    def describe(self) -> str:
        """One-line human-readable summary of the frozen reference."""
        return (f"reference(n={self.size}, mean={self.mean:.4f}, "
                f"bins={self.num_bins})")


@dataclass(frozen=True)
class DriftEvent:
    """One drift edge on one tenant's served score stream.

    Emitted by :class:`DriftMonitor` when the drift expression flips:
    ``kind="drift"`` on the rising edge, ``kind="recovered"`` on the falling
    edge.  ``statistics`` snapshots each leaf rule's latest windowed
    statistic at the edge (NaN while a rule is still warming up).
    """

    tenant: str
    index: int                 # absolute stream index of the edge
    policy: str                # the drift policy's name
    kind: str                  # "drift" | "recovered"
    score: float               # the served score that caused the edge
    statistics: Dict[str, float] = field(default_factory=dict)
    detail: str = ""           # the policy's source expression

    def describe(self) -> str:
        stats = ", ".join(f"{name}={value:.4f}"
                          for name, value in sorted(self.statistics.items()))
        return (f"[{self.tenant}] {self.kind} {self.policy!r} at t={self.index}"
                + (f" ({stats})" if stats else ""))


class DriftRule(AlertRule):
    """Base of the windowed drift rules: a bounded buffer + a statistic.

    Subclasses define ``_statistic(window)`` (a pure function of the last
    ``window`` scores as a float64 array) and ``_exceeds(statistic)``.  Both
    the incremental :meth:`update` path and the full-recompute
    :meth:`reference` path call that same kernel on the same values, which
    is what makes them agree bitwise.  The rule is inactive until the buffer
    holds a full window (warm-up), and :attr:`last_statistic` exposes the
    most recent statistic for event reporting.
    """

    def __init__(self, drift_reference: DriftReference, window: int) -> None:
        if window < 2:
            raise ValueError("drift rule window must be at least 2")
        self.drift_reference = drift_reference
        self.window = int(window)
        self._buffer: List[float] = []
        self.last_statistic = float("nan")

    # -- subclass surface ------------------------------------------------
    def _statistic(self, values: np.ndarray) -> float:
        raise NotImplementedError

    def _exceeds(self, statistic: float) -> bool:
        raise NotImplementedError

    # -- AlertRule interface ---------------------------------------------
    def update(self, index: int, score: float) -> bool:
        self._buffer.append(float(score))
        if len(self._buffer) > self.window:
            del self._buffer[0]
        if len(self._buffer) < self.window:
            self.last_statistic = float("nan")
            return False
        self.last_statistic = self._statistic(
            np.asarray(self._buffer, dtype=np.float64))
        return self._exceeds(self.last_statistic)

    def reset(self) -> None:
        self._buffer.clear()
        self.last_statistic = float("nan")

    def reference(self, scores: Sequence[float]) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        out = np.zeros(scores.shape[0], dtype=bool)
        for t in range(self.window - 1, scores.shape[0]):
            stat = self._statistic(scores[t + 1 - self.window:t + 1])
            out[t] = self._exceeds(stat)
        return out


class QuantileShiftRule(DriftRule):
    """Rolling score percentile vs the frozen training-tail percentile."""

    def __init__(self, drift_reference: DriftReference, q: float = 90.0,
                 window: int = 64, ratio: float = 1.4) -> None:
        super().__init__(drift_reference, window)
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if ratio <= 0.0:
            raise ValueError("ratio must be positive")
        self.q = float(q)
        self.ratio = float(ratio)
        self._reference_value = drift_reference.quantile(self.q)

    def _statistic(self, values: np.ndarray) -> float:
        return float(np.quantile(values, self.q / 100.0))

    def _exceeds(self, statistic: float) -> bool:
        return bool(statistic > self.ratio * self._reference_value)

    def clone(self) -> "QuantileShiftRule":
        return QuantileShiftRule(self.drift_reference, q=self.q,
                                 window=self.window, ratio=self.ratio)

    def describe(self) -> str:
        return (f"quantile_shift(q={self.q:g}, window={self.window}, "
                f"ratio={self.ratio:g})")


class ErrorShiftRule(DriftRule):
    """Rolling mean imputation error vs the frozen training-tail mean."""

    def __init__(self, drift_reference: DriftReference, window: int = 64,
                 ratio: float = 1.5) -> None:
        super().__init__(drift_reference, window)
        if ratio <= 0.0:
            raise ValueError("ratio must be positive")
        self.ratio = float(ratio)
        self._reference_value = drift_reference.mean

    def _statistic(self, values: np.ndarray) -> float:
        return float(np.mean(values))

    def _exceeds(self, statistic: float) -> bool:
        return bool(statistic > self.ratio * self._reference_value)

    def clone(self) -> "ErrorShiftRule":
        return ErrorShiftRule(self.drift_reference, window=self.window,
                              ratio=self.ratio)

    def describe(self) -> str:
        return f"error_shift(window={self.window}, ratio={self.ratio:g})"


class PSIRule(DriftRule):
    """Population Stability Index of the rolling window vs the reference."""

    def __init__(self, drift_reference: DriftReference, window: int = 128,
                 threshold: float = 0.25) -> None:
        super().__init__(drift_reference, window)
        if threshold <= 0.0:
            raise ValueError("threshold must be positive")
        self.threshold = float(threshold)

    def _statistic(self, values: np.ndarray) -> float:
        return self.drift_reference.psi(values)

    def _exceeds(self, statistic: float) -> bool:
        return bool(statistic > self.threshold)

    def clone(self) -> "PSIRule":
        return PSIRule(self.drift_reference, window=self.window,
                       threshold=self.threshold)

    def describe(self) -> str:
        return f"psi(window={self.window}, threshold={self.threshold:g})"


class KSRule(DriftRule):
    """Kolmogorov–Smirnov statistic of the rolling window vs the reference."""

    def __init__(self, drift_reference: DriftReference, window: int = 128,
                 threshold: float = 0.35) -> None:
        super().__init__(drift_reference, window)
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = float(threshold)

    def _statistic(self, values: np.ndarray) -> float:
        return self.drift_reference.ks(values)

    def _exceeds(self, statistic: float) -> bool:
        return bool(statistic > self.threshold)

    def clone(self) -> "KSRule":
        return KSRule(self.drift_reference, window=self.window,
                      threshold=self.threshold)

    def describe(self) -> str:
        return f"ks(window={self.window}, threshold={self.threshold:g})"


# ----------------------------------------------------------------------
# Parsing and monitoring
# ----------------------------------------------------------------------

def _drift_rule_functions(reference: DriftReference) -> dict:
    """The drift atoms, closed over one reference, for the policy grammar."""
    return {
        "quantile_shift": (
            lambda kw: QuantileShiftRule(
                reference, q=kw.get("q", 90.0),
                window=int(kw.get("window", 64)),
                ratio=kw.get("ratio", 1.4)),
            {"q": False, "window": False, "ratio": False},
        ),
        "error_shift": (
            lambda kw: ErrorShiftRule(
                reference, window=int(kw.get("window", 64)),
                ratio=kw.get("ratio", 1.5)),
            {"window": False, "ratio": False},
        ),
        "psi": (
            lambda kw: PSIRule(
                reference, window=int(kw.get("window", 128)),
                threshold=kw.get("threshold", 0.25)),
            {"window": False, "threshold": False},
        ),
        "ks": (
            lambda kw: KSRule(
                reference, window=int(kw.get("window", 128)),
                threshold=kw.get("threshold", 0.35)),
            {"window": False, "threshold": False},
        ),
    }


def parse_drift_policy(text: str, reference: DriftReference,
                       name: str = "drift") -> AlertPolicy:
    """Parse a drift expression against one frozen reference.

    ``text`` is either a preset name (see :data:`DRIFT_POLICY_PRESETS`) or a
    policy expression over the drift atoms (``quantile_shift``,
    ``error_shift``, ``psi``, ``ks``), composable with ``and``/``or``/
    parentheses and the plain ``score <cmp> x`` atom — the exact grammar of
    :func:`repro.analytics.parse_policy`, reusing its parser with the drift
    rule table.

    Examples
    --------
    >>> import numpy as np
    >>> reference = DriftReference.from_scores(np.linspace(0.0, 1.0, 101))
    >>> policy = parse_drift_policy("error_shift(window=4, ratio=2)", reference)
    >>> policy.source
    'error_shift(window=4, ratio=2)'
    """
    text = DRIFT_POLICY_PRESETS.get(text.strip(), text)
    return parse_policy(text, name=name,
                        functions=_drift_rule_functions(reference))


def drift_statistics(rule: AlertRule) -> Dict[str, float]:
    """Latest windowed statistic of every drift leaf under ``rule``."""
    if isinstance(rule, DriftRule):
        return {rule.describe(): rule.last_statistic}
    statistics: Dict[str, float] = {}
    if isinstance(rule, _Combinator):
        for child in rule.children:
            statistics.update(drift_statistics(child))
    return statistics


class DriftMonitor:
    """Edge-triggered drift evaluation of one policy on one tenant.

    A thin wrapper over :class:`repro.analytics.PolicyMonitor` that converts
    alert edges into :class:`DriftEvent`s carrying the leaf statistics at
    the moment of the edge.

    Examples
    --------
    >>> import numpy as np
    >>> reference = DriftReference.from_scores(np.linspace(0.0, 1.0, 101))
    >>> policy = parse_drift_policy("error_shift(window=2, ratio=2)", reference)
    >>> monitor = DriftMonitor(policy, "tenant-0")
    >>> [e.kind for score in (5.0, 5.0) for e in monitor.update(0, score)]
    ['drift']
    """

    def __init__(self, policy: AlertPolicy, tenant: str) -> None:
        self.policy = policy
        self.tenant = tenant
        self._monitor: PolicyMonitor = policy.monitor(tenant)

    @property
    def active(self) -> bool:
        """Whether the drift expression is currently true."""
        return self._monitor.active

    def update(self, index: int, score: float) -> List[DriftEvent]:
        """Consume one served score; returns the drift edge, if any."""
        return [
            DriftEvent(
                tenant=event.tenant, index=event.index, policy=event.policy,
                kind="drift" if event.kind == "fired" else "recovered",
                score=event.score,
                statistics=drift_statistics(self._monitor.root),
                detail=event.detail)
            for event in self._monitor.update(index, score)
        ]

    def reset(self) -> None:
        """Clear all rule state and re-arm (used after a model hot-swap)."""
        self._monitor.reset()
