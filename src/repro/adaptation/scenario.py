"""End-to-end drift scenarios: the adaptation loop's standard stress suite.

:func:`run_drift_scenario` serves one registry dataset (the DRIFT/REGIME/
SEASONAL generator family is the intended input) through two *identically
configured* passes over the same trained model:

* a **frozen** pass — the model that was trained before the distribution
  moved keeps serving unchanged, and
* an **adapted** pass — an :class:`~repro.adaptation.AdaptationController`
  polls between ingest chunks, detects the shift, fine-tunes, publishes and
  hot-swaps live.

Both passes stream the same points through the same serving configuration
from clones of the same checkpoint, so their scores are directly (indeed
bitwise, until the first swap) comparable; accuracy is evaluated on the
post-drift tail where they diverge.  With a negative
``regression_tolerance`` every adaptation is forced to roll back, and the
scenario's ``bit_identical`` flag asserts the central guarantee: a stream
that swapped and rolled back is **bitwise equal** to one that never swapped.

``repro adapt`` is a thin CLI veneer over this function and
``benchmarks/test_adaptation.py`` gates it in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core import ImDiffusionConfig, ImDiffusionDetector
from ..data import load_dataset
from ..evaluation import evaluate_labels
from ..serving import DetectorService, ModelRegistry, ServingConfig
from .controller import (
    AdaptationConfig,
    AdaptationController,
    AdaptationRecord,
    training_tail_reference,
)
from .detectors import DriftEvent

__all__ = ["DriftScenarioResult", "run_drift_scenario"]

_TENANT = "tenant-0"


@dataclass
class DriftScenarioResult:
    """Outcome of one frozen-vs-adapted drift scenario."""

    dataset: str
    post_drift_start: int               # first index of the evaluation tail
    frozen: dict                        # precision/recall/f1 on the tail
    adapted: dict                       # same, for the adapted pass
    records: List[AdaptationRecord]     # the controller's audit trail
    events: List[DriftEvent]            # every drift edge observed
    bit_identical: bool                 # adapted scores == frozen scores
    frozen_scores: np.ndarray
    adapted_scores: np.ndarray
    metrics: Dict[str, float] = field(default_factory=dict)  # adapted pass

    def summary_lines(self) -> List[str]:
        """Human-readable report (shared by the CLI and the benchmark)."""
        lines = [
            f"Drift scenario on {self.dataset} "
            f"(post-drift tail from t={self.post_drift_start}):",
            f"  frozen  model: precision {self.frozen['precision']:.3f} "
            f"recall {self.frozen['recall']:.3f} f1 {self.frozen['f1']:.3f}",
            f"  adapted model: precision {self.adapted['precision']:.3f} "
            f"recall {self.adapted['recall']:.3f} f1 {self.adapted['f1']:.3f}",
            f"  drift events: {len([e for e in self.events if e.kind == 'drift'])}, "
            f"adaptations: "
            f"{len([r for r in self.records if r.action == 'adapted'])}, "
            f"rollbacks: "
            f"{len([r for r in self.records if r.action == 'rolled_back'])}, "
            f"skipped: "
            f"{len([r for r in self.records if r.action == 'skipped'])}",
        ]
        for record in self.records:
            lines.append(f"  {record.describe()}")
        return lines


def _serve_stream(detector: ImDiffusionDetector, test: np.ndarray,
                  serving: ServingConfig, ingest_chunk: int,
                  controller_factory=None):
    """Stream ``test`` through a fresh service; returns (view, controller)."""
    service = DetectorService(detector, serving)
    service.register_tenant(_TENANT)
    controller = controller_factory(service) if controller_factory else None
    with service:
        for start in range(0, test.shape[0], ingest_chunk):
            service.ingest(_TENANT, test[start:start + ingest_chunk])
            if controller is not None:
                controller.poll()
        service.drain()
        if controller is not None:
            controller.poll()
        view = service.tenant_view(_TENANT)
        snapshot = service.metrics.snapshot()
    return view, controller, snapshot


def run_drift_scenario(dataset: str = "DRIFT", scale: float = 0.05,
                       seed: int = 0,
                       overrides: Optional[dict] = None,
                       adaptation: Optional[AdaptationConfig] = None,
                       score_workers: int = 1,
                       registry: Optional[ModelRegistry] = None,
                       model_name: str = "drift-demo",
                       train_fraction: float = 0.45,
                       tail_fraction: float = 0.5,
                       ingest_chunk: int = 32) -> DriftScenarioResult:
    """Serve one drifting dataset frozen and adapted; compare tail accuracy.

    Parameters
    ----------
    dataset:
        A registered dataset name; the DRIFT/REGIME/SEASONAL generators are
        the canonical stress scenarios.
    scale:
        Length multiplier forwarded to :func:`repro.data.load_dataset`.
    overrides:
        :class:`~repro.core.ImDiffusionConfig` overrides for the shared
        model (the scenario defaults are CPU-friendly).
    adaptation:
        The :class:`AdaptationConfig` of the adapted pass.  A negative
        ``regression_tolerance`` turns the scenario into the forced-rollback
        bit-identity check.
    registry:
        When given, the adapted pass publishes its lineage (baseline + every
        candidate) there as ``model_name`` versions.
    train_fraction:
        Fit on only this leading fraction of the training series.  The DRIFT
        generators ramp their drift over each series, so training on the
        early slice leaves the stream's later drift levels genuinely
        out-of-distribution for the frozen model — the regime online
        adaptation exists for.
    tail_fraction:
        Final fraction of the test stream treated as "post-drift" for the
        accuracy comparison.
    """
    if not 0.0 < train_fraction <= 1.0:
        raise ValueError("train_fraction must be in (0, 1]")
    data = load_dataset(dataset, seed=seed, scale=scale)
    config = ImDiffusionConfig(**{
        "window_size": 16, "num_steps": 8, "epochs": 2, "hidden_dim": 16,
        "num_blocks": 1, "num_masked_windows": 4, "num_unmasked_windows": 4,
        "max_train_windows": 48, "train_stride": 8, "batch_size": 8,
        "deterministic_inference": True, "collect": "x0",
        "error_percentile": 96.0, "seed": seed,
        **(overrides or {}),
    })
    adaptation = adaptation or AdaptationConfig()

    train = np.asarray(data.train, dtype=np.float64)
    train = train[:max(int(round(train.shape[0] * train_fraction)),
                       2 * config.window_size)]

    detector = ImDiffusionDetector(config)
    detector.fit(train)
    checkpoint = detector.to_checkpoint()
    reference = training_tail_reference(
        detector, train, points=adaptation.reference_points,
        bins=adaptation.reference_bins)

    test = np.asarray(data.test, dtype=np.float64)
    labels = np.asarray(data.test_labels)
    serving = ServingConfig(
        flush_size=4, flush_age=3600.0, history=test.shape[0],
        raw_capacity=max(test.shape[0], 4 * config.window_size),
        analytics_history=test.shape[0], score_workers=score_workers)

    frozen_view, _, _ = _serve_stream(
        ImDiffusionDetector.from_checkpoint(*checkpoint), test, serving,
        ingest_chunk)

    def controller_factory(service: DetectorService) -> AdaptationController:
        return AdaptationController(service, reference, config=adaptation,
                                    registry=registry, model_name=model_name)

    adapted_view, controller, adapted_metrics = _serve_stream(
        ImDiffusionDetector.from_checkpoint(*checkpoint), test, serving,
        ingest_chunk, controller_factory)

    tail_start = int(round(test.shape[0] * (1.0 - tail_fraction)))
    tail_start = min(max(tail_start, frozen_view.start), test.shape[0] - 1)

    def tail_metrics(view) -> dict:
        start, view_labels, view_scores = view.slice_from(tail_start)
        end = min(view.end, labels.shape[0])
        span = end - start
        truth = labels[start:end]
        run = evaluate_labels(view_labels[:span], view_scores[:span], truth)
        return {"precision": float(run.precision),
                "recall": float(run.recall), "f1": float(run.f1)}

    bit_identical = (
        frozen_view.start == adapted_view.start
        and frozen_view.end == adapted_view.end
        and np.array_equal(frozen_view.scores, adapted_view.scores,
                           equal_nan=True))

    return DriftScenarioResult(
        dataset=data.name,
        post_drift_start=tail_start,
        frozen=tail_metrics(frozen_view),
        adapted=tail_metrics(adapted_view),
        records=list(controller.history),
        events=list(controller.drift_events),
        bit_identical=bool(bit_identical),
        frozen_scores=np.asarray(frozen_view.scores),
        adapted_scores=np.asarray(adapted_view.scores),
        metrics=adapted_metrics,
    )
