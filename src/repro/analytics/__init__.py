"""Windowed score analytics and declarative alerting over score streams.

Scores used to leave :class:`~repro.serving.DetectorService` as raw
per-tenant floats.  This package is the layer between scoring and the user:

* :mod:`~repro.analytics.store` — bounded, watermarked per-tenant score
  history (:class:`ScoreStore`), fed on the serving hot path,
* :mod:`~repro.analytics.operators` — SQL-window-function operators
  (rolling mean/std/quantile, LAG/LEAD/delta, rank-over-window, EWMA), each
  as an incremental O(window)-per-append form **and** a naive full-recompute
  reference that agree bitwise,
* :mod:`~repro.analytics.episodes` — sessionized anomaly episodes
  (merge-within-gap, min-length), incremental and reference,
* :mod:`~repro.analytics.policy` — the declarative alert-policy engine:
  threshold / hysteresis / episode-length / quantile-exceedance rules
  composable with ``and`` / ``or``, evaluated incrementally per appended
  score, emitting edge-triggered :class:`AlertEvent`s,
* :mod:`~repro.analytics.engine` — :class:`AnalyticsEngine`, the per-tenant
  orchestrator the serving layer feeds,
* :mod:`~repro.analytics.io` — JSONL capture/replay of score streams
  (``repro serve --export-scores`` / ``repro query --from``).

Quickstart::

    from repro.analytics import AnalyticsEngine

    engine = AnalyticsEngine(
        history=4096,
        policies=["score > 0.8 and episode(threshold=0.8, min_len=3, gap=2)"])
    for index, (score, label) in enumerate(stream):
        for event in engine.observe("tenant-0", index, score, label):
            page_oncall(event)
    print(engine.query("tenant-0", "mean:64,quantile:64:99"))
"""

from .engine import AnalyticsEngine
from .episodes import Episode, EpisodeTracker, sessionize
from .io import (SCHEMA_NAME, SCHEMA_VERSION, export_jsonl,
                 load_jsonl, streams_to_store)
from .operators import (
    EWMA,
    OPERATOR_REGISTRY,
    Delta,
    Lag,
    Lead,
    RollingMean,
    RollingQuantile,
    RollingRank,
    RollingStd,
    StreamOperator,
    apply_pipeline,
    parse_operator,
    parse_pipeline,
)
from .policy import (
    AlertEvent,
    AlertPolicy,
    AlertRule,
    AllOf,
    AnyOf,
    EpisodeRule,
    HysteresisRule,
    PolicyMonitor,
    QuantileRule,
    ThresholdRule,
    parse_policy,
)
from .store import ScoreStore, ScoreStream

__all__ = [
    "AlertEvent",
    "AlertPolicy",
    "AlertRule",
    "AllOf",
    "AnalyticsEngine",
    "AnyOf",
    "Delta",
    "EWMA",
    "Episode",
    "EpisodeRule",
    "EpisodeTracker",
    "HysteresisRule",
    "Lag",
    "Lead",
    "OPERATOR_REGISTRY",
    "PolicyMonitor",
    "QuantileRule",
    "RollingMean",
    "RollingQuantile",
    "RollingRank",
    "RollingStd",
    "ScoreStore",
    "ScoreStream",
    "StreamOperator",
    "ThresholdRule",
    "apply_pipeline",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "export_jsonl",
    "load_jsonl",
    "parse_operator",
    "parse_pipeline",
    "parse_policy",
    "sessionize",
    "streams_to_store",
]
