"""The analytics engine: score store + episodes + alert policies, per tenant.

:class:`AnalyticsEngine` is the single object the serving layer (and the
online evaluation harness) feeds on the hot path.  Per appended block of
scored points it

* appends scores/labels to the bounded per-tenant :class:`ScoreStore`
  (advancing the tenant's watermark),
* advances the tenant's sessionized :class:`EpisodeTracker` over the
  anomaly labels,
* runs every configured :class:`AlertPolicy` monitor incrementally over the
  scores, collecting edge-triggered :class:`AlertEvent`s.

All state is per tenant; policies are shared specifications instantiated
per tenant via :meth:`AlertPolicy.monitor`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .episodes import Episode, EpisodeTracker
from .operators import StreamOperator, apply_pipeline, parse_pipeline
from .policy import AlertEvent, AlertPolicy, PolicyMonitor, parse_policy
from .store import ScoreStore, ScoreStream

__all__ = ["AnalyticsEngine"]


class AnalyticsEngine:
    """Windowed analytics and alerting over per-tenant score streams.

    Parameters
    ----------
    history:
        Per-tenant score-store retention (rows).
    policies:
        Alert policies to evaluate incrementally; strings are parsed with
        :func:`repro.analytics.policy.parse_policy`.
    episode_gap / episode_min_length:
        Sessionization knobs of the label-driven episode tracker: quiet gaps
        of up to ``episode_gap`` points merge into the surrounding episode,
        and episodes spanning fewer than ``episode_min_length`` points are
        dropped.
    max_events:
        Bound on the retained (undrained) alert-event list.
    """

    def __init__(self, history: int = 4096,
                 policies: Sequence[Union[AlertPolicy, str]] = (),
                 episode_gap: int = 2, episode_min_length: int = 1,
                 max_events: int = 4096) -> None:
        self.store = ScoreStore(history)
        self.policies: List[AlertPolicy] = [
            parse_policy(p, name=f"policy-{i}") if isinstance(p, str) else p
            for i, p in enumerate(policies)]
        self.episode_gap = int(episode_gap)
        self.episode_min_length = int(episode_min_length)
        self.max_events = int(max_events)
        self.events: List[AlertEvent] = []
        self.events_dropped = 0
        self._monitors: Dict[str, List[PolicyMonitor]] = {}
        self._trackers: Dict[str, EpisodeTracker] = {}

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def register_tenant(self, tenant: str) -> None:
        """Idempotent; :meth:`observe_block` auto-registers."""
        self.store.register_tenant(tenant)
        self._monitors.setdefault(
            tenant, [policy.monitor(tenant) for policy in self.policies])
        self._trackers.setdefault(
            tenant, EpisodeTracker(merge_gap=self.episode_gap,
                                   min_length=self.episode_min_length))

    def tenants(self) -> List[str]:
        """Registered tenant names, sorted."""
        return self.store.tenants()

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def observe_block(self, tenant: str, start: int, scores: np.ndarray,
                      labels: Optional[np.ndarray] = None) -> List[AlertEvent]:
        """Consume one contiguous block of freshly scored points.

        ``start`` must be the tenant's watermark (blocks arrive in order,
        exactly once).  Returns the alert events this block produced; the
        same events are also queued on :attr:`events` until drained.
        """
        self.register_tenant(tenant)
        scores = np.atleast_1d(np.asarray(scores, dtype=np.float64))
        self.store.append(tenant, start, scores, labels)

        tracker = self._trackers[tenant]
        if labels is not None:
            label_flags = np.atleast_1d(np.asarray(labels)) != 0
            for offset, flag in enumerate(label_flags):
                tracker.update(start + offset, bool(flag))

        fresh: List[AlertEvent] = []
        for monitor in self._monitors[tenant]:
            for offset, score in enumerate(scores):
                fresh.extend(monitor.update(start + offset, float(score)))
        if fresh:
            # Events interleave per policy; present them in stream order.
            fresh.sort(key=lambda event: event.index)
            self.events.extend(fresh)
            overflow = len(self.events) - self.max_events
            if overflow > 0:
                del self.events[:overflow]
                self.events_dropped += overflow
        return fresh

    def observe(self, tenant: str, index: int, score: float,
                label: Optional[int] = None) -> List[AlertEvent]:
        """Single-point convenience wrapper over :meth:`observe_block`."""
        labels = None if label is None else np.asarray([label])
        return self.observe_block(tenant, index, np.asarray([score]), labels)

    def drain_events(self) -> List[AlertEvent]:
        """Return and clear the queued alert events."""
        events, self.events = self.events, []
        return events

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def watermark(self, tenant: str) -> int:
        """Absolute index up to which this tenant's scores were observed."""
        return self.store.watermark(tenant)

    def episodes(self, tenant: str, include_open: bool = True) -> List[Episode]:
        """Sessionized anomaly episodes of one tenant (labels seen so far)."""
        self.register_tenant(tenant)
        return self._trackers[tenant].all_episodes(include_open=include_open)

    def active_policies(self, tenant: str) -> List[str]:
        """Names of the policies currently in the fired state for a tenant."""
        return [monitor.policy.name
                for monitor in self._monitors.get(tenant, [])
                if monitor.active]

    def view(self, tenant: str) -> ScoreStream:
        """The tenant's full retained score stream (see :meth:`ScoreStore.view`)."""
        return self.store.view(tenant)

    def query(self, tenant: str,
              pipeline: Union[str, Sequence[StreamOperator]],
              engine: str = "incremental") -> Dict[str, np.ndarray]:
        """Run an operator pipeline over a tenant's retained score history."""
        operators = parse_pipeline(pipeline) if isinstance(pipeline, str) else pipeline
        return apply_pipeline(operators, self.store.view(tenant).scores, engine=engine)
