"""Sessionized anomaly episodes over boolean streams.

A production alert is rarely a single flagged timestamp: operators think in
*episodes* — contiguous anomalous spans, with short quiet gaps merged into
the surrounding span (the sessionization semantics of streaming SQL's
``SESSION`` windows).  This module provides the two required forms of that
computation:

* :func:`sessionize` — the naive reference: a pure function from a full
  boolean array to the episode list,
* :class:`EpisodeTracker` — the incremental form: one :meth:`update` per
  appended flag, emitting episodes as soon as they are definitively closed
  (the quiet gap exceeded ``merge_gap``), with the still-open episode
  queryable at any time.

Feeding a stream through the tracker and calling :meth:`EpisodeTracker.finish`
yields exactly the :func:`sessionize` output (property-tested on random
streams in ``tests/analytics/test_episodes.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Episode", "sessionize", "EpisodeTracker"]


@dataclass(frozen=True)
class Episode:
    """One merged anomalous span ``[start, end)`` of a stream.

    ``end`` is one past the last anomalous index of the span; gaps of up to
    ``merge_gap`` quiet points *inside* the span are counted in ``length``
    but not in ``anomalous_points``.
    """

    start: int
    end: int
    anomalous_points: int

    @property
    def length(self) -> int:
        return self.end - self.start

    def describe(self) -> str:
        return (f"episode [{self.start}, {self.end}) "
                f"length={self.length} anomalous={self.anomalous_points}")


def sessionize(flags: Sequence[bool], merge_gap: int = 0, min_length: int = 1,
               offset: int = 0) -> List[Episode]:
    """Naive full recompute: merge anomalous runs separated by small gaps.

    Runs of ``True`` separated by at most ``merge_gap`` ``False`` points are
    merged into one episode; episodes spanning fewer than ``min_length``
    points are dropped.  ``offset`` shifts the reported indices (the absolute
    index of ``flags[0]``).
    """
    if merge_gap < 0:
        raise ValueError("merge_gap must be non-negative")
    if min_length < 1:
        raise ValueError("min_length must be positive")
    flags = np.asarray(flags, dtype=bool)
    episodes: List[Episode] = []
    start: Optional[int] = None
    last_true = -1
    count = 0
    for i, flag in enumerate(flags):
        if flag:
            if start is None or i - last_true - 1 > merge_gap:
                if start is not None:
                    episodes.append(Episode(start + offset, last_true + 1 + offset, count))
                start, count = i, 0
            last_true = i
            count += 1
    if start is not None:
        episodes.append(Episode(start + offset, last_true + 1 + offset, count))
    return [e for e in episodes if e.length >= min_length]


class EpisodeTracker:
    """Incremental sessionization: O(1) per appended flag.

    ``update(index, flag)`` consumes the stream in index order (indices must
    be strictly increasing but need not be contiguous — missing indices are
    treated as quiet).  Closed episodes that satisfy ``min_length`` are
    returned by the ``update`` that closes them; :attr:`open_episode` exposes
    the span still under construction, and :meth:`finish` closes it.
    """

    def __init__(self, merge_gap: int = 0, min_length: int = 1) -> None:
        if merge_gap < 0:
            raise ValueError("merge_gap must be non-negative")
        if min_length < 1:
            raise ValueError("min_length must be positive")
        self.merge_gap = int(merge_gap)
        self.min_length = int(min_length)
        self.episodes: List[Episode] = []
        self._start: Optional[int] = None
        self._last_true = -1
        self._count = 0
        self._last_index = -1

    # ------------------------------------------------------------------
    @property
    def open_episode(self) -> Optional[Episode]:
        """The not-yet-closed episode, regardless of ``min_length``."""
        if self._start is None:
            return None
        return Episode(self._start, self._last_true + 1, self._count)

    def _close(self) -> List[Episode]:
        closed: List[Episode] = []
        if self._start is not None:
            episode = Episode(self._start, self._last_true + 1, self._count)
            if episode.length >= self.min_length:
                self.episodes.append(episode)
                closed.append(episode)
        self._start, self._count = None, 0
        return closed

    def update(self, index: int, flag: bool) -> List[Episode]:
        """Consume one flag; returns the episodes this update closed (0 or 1)."""
        if index <= self._last_index:
            raise ValueError(
                f"indices must be strictly increasing; got {index} after {self._last_index}")
        self._last_index = index
        closed: List[Episode] = []
        if self._start is not None and index - self._last_true - 1 > self.merge_gap:
            closed = self._close()
        if flag:
            if self._start is None:
                self._start = index
            self._last_true = index
            self._count += 1
        return closed

    def finish(self) -> List[Episode]:
        """Close the open episode (end of stream); returns what it closed."""
        return self._close()

    def all_episodes(self, include_open: bool = True) -> List[Episode]:
        """Closed episodes plus (optionally) the open one if long enough."""
        episodes = list(self.episodes)
        if include_open:
            open_episode = self.open_episode
            if open_episode is not None and open_episode.length >= self.min_length:
                episodes.append(open_episode)
        return episodes
