"""JSONL capture and replay of score streams (the ``repro.scores`` schema).

This is schema ``repro.scores`` version 1, documented normatively in
``docs/architecture.md``.  A capture is an optional header line followed by
one JSON object per scored point::

    {"schema": "repro.scores", "version": 1}
    {"tenant": "tenant-0", "index": 17, "score": 0.4031, "label": 0}

Data rows carry exactly the fields ``tenant`` (str), ``index`` (int),
``score`` (float) and optionally ``label`` (0/1, omitted for points whose
label was never decided).  :func:`export_jsonl` writes the header;
:func:`load_jsonl` accepts captures with or without it (files predating the
header are version-1 data rows only) and rejects unknown schema names or
newer versions.  The format is append-friendly (a serving process can
stream it out line by line) and order-tolerant on load (rows are re-sorted
per tenant), but each tenant's index sequence must be contiguous once
sorted — the streams round-trip through the bounded
:class:`~repro.analytics.store.ScoreStore` watermark contract.
``repro serve --export-scores`` writes this format and ``repro query
--from`` reads it back (round-trip tested).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Union

import numpy as np

from .store import ScoreStore, ScoreStream

__all__ = ["SCHEMA_NAME", "SCHEMA_VERSION", "export_jsonl", "load_jsonl",
           "streams_to_store"]

#: Schema identity of a JSONL score capture (the optional header line).
SCHEMA_NAME = "repro.scores"
SCHEMA_VERSION = 1


def export_jsonl(path: Union[str, "os.PathLike[str]"],
                 streams: Union[ScoreStore, Dict[str, ScoreStream]]) -> int:
    """Write every retained point of every tenant; returns the data-row count.

    Accepts either a :class:`ScoreStore` (exports each tenant's retained
    view) or an already-materialised ``{tenant: ScoreStream}`` mapping.
    The file starts with the ``repro.scores`` v1 schema header line, which
    is not counted in the returned row count.
    """
    if isinstance(streams, ScoreStore):
        streams = {tenant: streams.view(tenant) for tenant in streams.tenants()}
    lines = 0
    with open(path, "w") as handle:
        handle.write(json.dumps({"schema": SCHEMA_NAME,
                                 "version": SCHEMA_VERSION}) + "\n")
        for tenant in sorted(streams):
            stream = streams[tenant]
            for offset in range(stream.scores.shape[0]):
                row = {"tenant": tenant,
                       "index": int(stream.start + offset),
                       "score": float(stream.scores[offset])}
                label = stream.labels[offset]
                if not np.isnan(label):
                    row["label"] = int(label)
                handle.write(json.dumps(row) + "\n")
                lines += 1
    return lines


def load_jsonl(path: Union[str, "os.PathLike[str]"]) -> Dict[str, ScoreStream]:
    """Read a score-stream capture back into ``{tenant: ScoreStream}``.

    Accepts captures with or without the schema header line and raises
    ``ValueError`` on an unknown schema name or an unsupported (newer)
    version.
    """
    rows: Dict[str, List[dict]] = {}
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                if "schema" in row and "tenant" not in row:
                    if row["schema"] != SCHEMA_NAME:
                        raise ValueError(f"unknown schema {row['schema']!r} "
                                         f"(expected {SCHEMA_NAME!r})")
                    if int(row.get("version", 1)) > SCHEMA_VERSION:
                        raise ValueError(
                            f"schema version {row['version']} is newer than "
                            f"the supported version {SCHEMA_VERSION}")
                    continue
                tenant, index = row["tenant"], int(row["index"])
                score = float(row["score"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line_number}: bad score row: {exc}") from exc
            rows.setdefault(tenant, []).append(
                {"index": index, "score": score, "label": row.get("label")})

    streams: Dict[str, ScoreStream] = {}
    for tenant, tenant_rows in rows.items():
        tenant_rows.sort(key=lambda r: r["index"])
        indices = [r["index"] for r in tenant_rows]
        start = indices[0]
        if indices != list(range(start, start + len(indices))):
            raise ValueError(
                f"tenant {tenant!r} has a non-contiguous or duplicated index "
                f"sequence in {path}")
        scores = np.array([r["score"] for r in tenant_rows], dtype=np.float64)
        labels = np.array(
            [np.nan if r["label"] is None else float(r["label"]) for r in tenant_rows],
            dtype=np.float64)
        streams[tenant] = ScoreStream(tenant=tenant, start=start,
                                      scores=scores, labels=labels)
    return streams


def streams_to_store(streams: Dict[str, ScoreStream],
                     history: int = 0) -> ScoreStore:
    """Replay loaded streams into a :class:`ScoreStore`.

    ``history=0`` sizes the store to hold every loaded point (no eviction on
    replay); a positive value bounds retention like a live store would.
    Streams whose ``start`` is not 0 replay with the same absolute indices:
    the pre-capture prefix counts as evicted.
    """
    if history <= 0:
        history = max((s.end for s in streams.values()), default=1) or 1
    store = ScoreStore(history)
    for tenant in sorted(streams):
        stream = streams[tenant]
        store.register_tenant(tenant)
        # Re-establish the absolute index space: rows before the capture
        # start were never exported, so they replay as a skipped prefix.
        store.skip_to(tenant, stream.start)
        store.append(tenant, stream.start, stream.scores, stream.labels)
    return store
