"""SQL-window-function operators over score streams.

Every operator exists in two forms that are required to agree **bitwise**:

* :meth:`StreamOperator.update` — the *incremental* form.  One call per
  appended value; amortised cost is O(window) (constant in the stream
  length), because state is a bounded ring of the trailing window rather
  than the full history.
* :meth:`StreamOperator.reference` — the *naive full-recompute* form.  A
  pure function of the whole stream that rebuilds the entire output array
  from scratch, the way an offline SQL engine would evaluate
  ``f(x) OVER (ROWS BETWEEN w-1 PRECEDING AND CURRENT ROW)``.

Bitwise agreement is structural, not approximate: the incremental form
applies *the same numpy reduction to the same values in the same order* as
the reference applies to the trailing slice, so no float-drift tolerance is
needed anywhere (the property tests in ``tests/analytics`` assert exact
equality on randomized streams).  This mirrors the incremental-vs-recompute
contract of :class:`repro.serving.IncrementalScorer`.

Warm-up semantics follow SQL window frames: aggregates (``mean``, ``std``,
``quantile``, ``rank``) evaluate over however many rows are available, while
offset operators (``lag``, ``lead``, ``delta``) emit NaN where the offset
row does not exist.  NaN *inputs* propagate through aggregates exactly as
numpy propagates them over the corresponding slice.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Sequence

import numpy as np

__all__ = [
    "StreamOperator",
    "RollingMean",
    "RollingStd",
    "RollingQuantile",
    "Lag",
    "Lead",
    "Delta",
    "RollingRank",
    "EWMA",
    "OPERATOR_REGISTRY",
    "parse_operator",
    "parse_pipeline",
    "apply_pipeline",
]


class StreamOperator:
    """One windowed operator over a stream of floats.

    Subclasses implement :meth:`update` (incremental) and :meth:`reference`
    (naive full recompute).  ``delay`` is the number of rows by which the
    incremental outputs lag the inputs: causal operators have ``delay = 0``
    and ``update`` returns the output for the row just pushed; ``lead(k)``
    has ``delay = k`` and ``update`` returns the output for the row ``k``
    positions back (with :meth:`finish` supplying the trailing outputs once
    the stream ends).  Only ``delay == 0`` operators may drive the
    incremental alert engine.
    """

    name: str = "operator"
    delay: int = 0

    def update(self, value: float) -> float:
        raise NotImplementedError

    def finish(self) -> List[float]:
        """Outputs for rows still pending when the stream ends (delay > 0)."""
        return []

    def reset(self) -> None:
        raise NotImplementedError

    def clone(self) -> "StreamOperator":
        """A fresh instance with the same parameters and no state."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    # ------------------------------------------------------------------
    def apply(self, values: Sequence[float]) -> np.ndarray:
        """Run the incremental form over a whole stream (resets first)."""
        self.reset()
        outs = [self.update(float(v)) for v in np.asarray(values, dtype=np.float64)]
        outs.extend(self.finish())
        return np.asarray(outs[self.delay:], dtype=np.float64)

    def reference(self, values: Sequence[float]) -> np.ndarray:
        """Naive full recompute of the whole output array."""
        raise NotImplementedError


class _TrailingWindowOperator(StreamOperator):
    """Base for aggregates over the trailing ``window`` rows (current included).

    The incremental state is a bounded deque of the trailing rows; each
    update materialises it as a contiguous float64 array — chronologically
    ordered, exactly like the slice the reference takes — and applies the
    subclass's reduction.  Same values, same order, same reduction ⇒ bitwise
    equality with the reference.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = int(window)
        self._buf: deque = deque(maxlen=self.window)

    def _reduce(self, frame: np.ndarray) -> float:
        raise NotImplementedError

    def update(self, value: float) -> float:
        self._buf.append(float(value))
        return float(self._reduce(np.asarray(self._buf, dtype=np.float64)))

    def reset(self) -> None:
        self._buf.clear()

    def clone(self) -> "StreamOperator":
        return type(self)(self.window)

    def describe(self) -> str:
        return f"{self.name}:{self.window}"

    def reference(self, values: Sequence[float]) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.empty(values.shape[0], dtype=np.float64)
        for t in range(values.shape[0]):
            out[t] = self._reduce(values[max(0, t - self.window + 1):t + 1])
        return out


class RollingMean(_TrailingWindowOperator):
    """``AVG(score) OVER (ROWS window-1 PRECEDING)``."""

    name = "mean"

    def _reduce(self, frame: np.ndarray) -> float:
        return float(np.mean(frame))


class RollingStd(_TrailingWindowOperator):
    """Population standard deviation over the trailing window."""

    name = "std"

    def _reduce(self, frame: np.ndarray) -> float:
        return float(np.std(frame))


class RollingQuantile(_TrailingWindowOperator):
    """``q``-th percentile (0-100) over the trailing window."""

    name = "quantile"

    def __init__(self, window: int, q: float = 50.0) -> None:
        super().__init__(window)
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must lie in [0, 100]")
        self.q = float(q)

    def _reduce(self, frame: np.ndarray) -> float:
        return float(np.percentile(frame, self.q))

    def clone(self) -> "StreamOperator":
        return RollingQuantile(self.window, self.q)

    def describe(self) -> str:
        return f"{self.name}:{self.window}:{self.q:g}"


class RollingRank(_TrailingWindowOperator):
    """1-based rank of the current row within the trailing window.

    ``RANK() OVER (ORDER BY score ROWS window-1 PRECEDING)`` with ties
    counted at-or-below: the output is how many window rows (the current one
    included) are ``<=`` the current value.  A NaN current row ranks NaN.
    """

    name = "rank"

    def _reduce(self, frame: np.ndarray) -> float:
        current = frame[-1]
        if np.isnan(current):
            return float("nan")
        return float(np.sum(frame <= current))


class Lag(StreamOperator):
    """``LAG(score, k)``: the value ``k`` rows back; NaN during warm-up."""

    name = "lag"

    def __init__(self, k: int = 1) -> None:
        if k < 0:
            raise ValueError("lag offset must be non-negative")
        self.k = int(k)
        self._buf: deque = deque(maxlen=self.k + 1)

    def update(self, value: float) -> float:
        self._buf.append(float(value))
        if len(self._buf) <= self.k:
            return float("nan")
        return self._buf[0]

    def reset(self) -> None:
        self._buf.clear()

    def clone(self) -> "StreamOperator":
        return Lag(self.k)

    def describe(self) -> str:
        return f"{self.name}:{self.k}"

    def reference(self, values: Sequence[float]) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.full(values.shape[0], np.nan)
        if self.k == 0:
            return values.copy()
        out[self.k:] = values[:-self.k or None]
        return out


class Lead(StreamOperator):
    """``LEAD(score, k)``: the value ``k`` rows ahead; NaN for the last ``k``.

    LEAD looks into the future, so the incremental form is *delayed*: the
    output for row ``t`` only becomes known when row ``t + k`` arrives
    (``delay = k``), and :meth:`finish` emits the trailing NaNs.  It is a
    pipeline/query operator, not an alerting one.
    """

    name = "lead"

    def __init__(self, k: int = 1) -> None:
        if k < 0:
            raise ValueError("lead offset must be non-negative")
        self.k = int(k)
        self.delay = self.k

    def update(self, value: float) -> float:
        # The arriving value *is* LEAD(k) of the row `k` positions back.
        return float(value)

    def finish(self) -> List[float]:
        return [float("nan")] * self.k

    def reset(self) -> None:
        pass

    def clone(self) -> "StreamOperator":
        return Lead(self.k)

    def describe(self) -> str:
        return f"{self.name}:{self.k}"

    def reference(self, values: Sequence[float]) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.full(values.shape[0], np.nan)
        if self.k == 0:
            return values.copy()
        out[:-self.k] = values[self.k:]
        return out


class Delta(StreamOperator):
    """``score - LAG(score, k)``: the k-step difference; NaN during warm-up."""

    name = "delta"

    def __init__(self, k: int = 1) -> None:
        if k < 1:
            raise ValueError("delta offset must be positive")
        self.k = int(k)
        self._buf: deque = deque(maxlen=self.k + 1)

    def update(self, value: float) -> float:
        self._buf.append(float(value))
        if len(self._buf) <= self.k:
            return float("nan")
        return self._buf[-1] - self._buf[0]

    def reset(self) -> None:
        self._buf.clear()

    def clone(self) -> "StreamOperator":
        return Delta(self.k)

    def describe(self) -> str:
        return f"{self.name}:{self.k}"

    def reference(self, values: Sequence[float]) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.full(values.shape[0], np.nan)
        out[self.k:] = values[self.k:] - values[:-self.k]
        return out


class EWMA(StreamOperator):
    """Exponentially weighted moving average: ``y = (1-a)*y + a*x``.

    The incremental form is genuinely O(1) per update.  The reference form
    replays the same recursion from the start of the stream, so agreement is
    bitwise by construction.  ``y_0 = x_0`` (no zero-bias warm-up).
    """

    name = "ewma"

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        self.alpha = float(alpha)
        self._value: float = float("nan")
        self._seen = False

    def update(self, value: float) -> float:
        value = float(value)
        if not self._seen:
            self._value = value
            self._seen = True
        else:
            self._value = (1.0 - self.alpha) * self._value + self.alpha * value
        return self._value

    def reset(self) -> None:
        self._value = float("nan")
        self._seen = False

    def clone(self) -> "StreamOperator":
        return EWMA(self.alpha)

    def describe(self) -> str:
        return f"{self.name}:{self.alpha:g}"

    def reference(self, values: Sequence[float]) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.empty(values.shape[0], dtype=np.float64)
        current = float("nan")
        for t, value in enumerate(values):
            value = float(value)
            current = value if t == 0 else (1.0 - self.alpha) * current + self.alpha * value
            out[t] = current
        return out


# ----------------------------------------------------------------------
# Spec parsing: `name[:arg[:arg]]`, comma-separated pipelines.
# ----------------------------------------------------------------------

def _int_arg(spec: str, args: List[str], default: int) -> int:
    if len(args) > 1:
        raise ValueError(f"operator spec {spec!r} takes at most one argument")
    return int(args[0]) if args else default


OPERATOR_REGISTRY: Dict[str, Callable[[str, List[str]], StreamOperator]] = {
    "mean": lambda spec, args: RollingMean(_int_arg(spec, args, 32)),
    "std": lambda spec, args: RollingStd(_int_arg(spec, args, 32)),
    "rank": lambda spec, args: RollingRank(_int_arg(spec, args, 32)),
    "quantile": lambda spec, args: RollingQuantile(
        int(args[0]) if args else 32,
        float(args[1]) if len(args) > 1 else 50.0),
    "lag": lambda spec, args: Lag(_int_arg(spec, args, 1)),
    "lead": lambda spec, args: Lead(_int_arg(spec, args, 1)),
    "delta": lambda spec, args: Delta(_int_arg(spec, args, 1)),
    "ewma": lambda spec, args: EWMA(float(args[0]) if args else 0.2),
}


def parse_operator(spec: str) -> StreamOperator:
    """Build one operator from ``name[:arg[:arg]]``, e.g. ``quantile:64:95``."""
    parts = [part.strip() for part in spec.strip().split(":")]
    name, args = parts[0], [p for p in parts[1:] if p]
    if name not in OPERATOR_REGISTRY:
        raise ValueError(
            f"unknown operator {name!r}; available: {', '.join(sorted(OPERATOR_REGISTRY))}")
    try:
        return OPERATOR_REGISTRY[name](spec, args)
    except (TypeError, ValueError, IndexError) as exc:
        raise ValueError(f"bad operator spec {spec!r}: {exc}") from exc


def parse_pipeline(spec: str) -> List[StreamOperator]:
    """Parse a comma-separated operator pipeline, e.g. ``mean:64,ewma:0.3``."""
    operators = [parse_operator(part) for part in spec.split(",") if part.strip()]
    if not operators:
        raise ValueError("empty operator pipeline")
    return operators


def apply_pipeline(operators: Sequence[StreamOperator], values: Sequence[float],
                   engine: str = "incremental") -> Dict[str, np.ndarray]:
    """Evaluate each operator over the stream (operators run side by side).

    ``engine`` selects the implementation: ``"incremental"`` streams every
    value through :meth:`StreamOperator.update`; ``"reference"`` runs the
    naive full recompute.  Both return ``{described_name: outputs}``; the two
    engines agree bitwise (see ``tests/analytics/test_operators.py``).
    """
    values = np.asarray(values, dtype=np.float64)
    if engine == "incremental":
        return {op.describe(): op.apply(values) for op in operators}
    if engine == "reference":
        return {op.describe(): op.reference(values) for op in operators}
    raise ValueError(f"unknown engine {engine!r}; use 'incremental' or 'reference'")
