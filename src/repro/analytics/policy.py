"""Declarative alert policies over score streams.

A policy is a boolean expression over stateful *rules*, evaluated
incrementally — O(rule-window) per appended score — with alerts emitted on
**edges**: an :class:`AlertEvent` with ``kind="fired"`` when the expression
turns true and one with ``kind="resolved"`` when it turns false again.

Rules (the atoms of the grammar)::

    score > 0.8                       -- plain threshold (also >=, <, <=)
    hysteresis(up=0.8, down=0.4)      -- fires above `up`, resolves below `down`
    episode(threshold=0.8, min_len=3, gap=2)
                                      -- a sessionized anomalous episode
                                         (quiet gaps <= `gap` merged) has
                                         reached span `min_len`
    quantile(q=99, window=128, mult=1.0)
                                      -- score exceeds `mult` x the rolling
                                         `q`-th percentile of the previous
                                         `window` scores (inactive during
                                         warm-up)

composable with ``and`` / ``or`` and parentheses::

    score > 0.5 and (episode(threshold=0.5, min_len=3) or quantile(q=99, window=64))

Every rule also has a naive reference evaluation (:meth:`AlertRule.reference`)
that recomputes the activity series from the full stream, mirroring the
incremental-vs-recompute contract of the operator library; the property
tests assert agreement on random streams.

Policies are *specifications*: one parsed policy can monitor many tenants,
each through its own :meth:`AlertPolicy.monitor` (rules are stateful, so
every tenant gets fresh clones).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .episodes import EpisodeTracker, sessionize
from .operators import RollingQuantile

__all__ = [
    "AlertEvent",
    "AlertRule",
    "ThresholdRule",
    "HysteresisRule",
    "EpisodeRule",
    "QuantileRule",
    "AllOf",
    "AnyOf",
    "AlertPolicy",
    "PolicyMonitor",
    "parse_policy",
]


@dataclass(frozen=True)
class AlertEvent:
    """One policy edge on one tenant's stream."""

    tenant: str
    index: int           # absolute stream index at which the edge occurred
    policy: str          # the policy's name
    kind: str            # "fired" | "resolved"
    score: float         # the score that caused the edge
    detail: str = ""     # human-readable rule description

    def describe(self) -> str:
        return (f"[{self.tenant}] {self.kind} {self.policy!r} at t={self.index} "
                f"(score {self.score:.4f})")


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------

class AlertRule:
    """One stateful boolean condition over a score stream.

    ``update`` must be called exactly once per appended score, in index
    order, for *every* rule of a policy (combinators never short-circuit —
    rules carry state that must see the whole stream).
    """

    def update(self, index: int, score: float) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def clone(self) -> "AlertRule":
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def reference(self, scores: Sequence[float]) -> np.ndarray:
        """Naive full recompute of the activity series over a whole stream."""
        raise NotImplementedError


_COMPARATORS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


class ThresholdRule(AlertRule):
    """``score <cmp> threshold`` — the stateless atom."""

    def __init__(self, threshold: float, comparator: str = ">") -> None:
        if comparator not in _COMPARATORS:
            raise ValueError(f"unknown comparator {comparator!r}")
        self.threshold = float(threshold)
        self.comparator = comparator

    def update(self, index: int, score: float) -> bool:
        return bool(_COMPARATORS[self.comparator](score, self.threshold))

    def reset(self) -> None:
        pass

    def clone(self) -> "AlertRule":
        return ThresholdRule(self.threshold, self.comparator)

    def describe(self) -> str:
        return f"score {self.comparator} {self.threshold:g}"

    def reference(self, scores: Sequence[float]) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        return _COMPARATORS[self.comparator](scores, self.threshold)


class HysteresisRule(AlertRule):
    """Two-threshold flap damping: on above ``up``, off below ``down``."""

    def __init__(self, up: float, down: float) -> None:
        if down > up:
            raise ValueError("hysteresis needs down <= up")
        self.up = float(up)
        self.down = float(down)
        self._active = False

    def update(self, index: int, score: float) -> bool:
        if self._active:
            if score < self.down:
                self._active = False
        elif score > self.up:
            self._active = True
        return self._active

    def reset(self) -> None:
        self._active = False

    def clone(self) -> "AlertRule":
        return HysteresisRule(self.up, self.down)

    def describe(self) -> str:
        return f"hysteresis(up={self.up:g}, down={self.down:g})"

    def reference(self, scores: Sequence[float]) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        out = np.zeros(scores.shape[0], dtype=bool)
        active = False
        for t, score in enumerate(scores):
            if active:
                if score < self.down:
                    active = False
            elif score > self.up:
                active = True
            out[t] = active
        return out


class EpisodeRule(AlertRule):
    """Active while a sessionized anomalous episode has reached ``min_len``.

    Points with ``score > threshold`` are anomalous; quiet gaps of up to
    ``gap`` points merge into the surrounding episode (during a merged gap
    the rule stays active — the incident is still open).  The rule turns
    inactive once the gap since the last anomalous point exceeds ``gap``.
    """

    def __init__(self, threshold: float, min_len: int = 1, gap: int = 0) -> None:
        if min_len < 1:
            raise ValueError("min_len must be positive")
        if gap < 0:
            raise ValueError("gap must be non-negative")
        self.threshold = float(threshold)
        self.min_len = int(min_len)
        self.gap = int(gap)
        self._tracker = EpisodeTracker(merge_gap=gap, min_length=min_len)
        self._position = 0

    def update(self, index: int, score: float) -> bool:
        self._tracker.update(self._position, bool(score > self.threshold))
        self._position += 1
        open_episode = self._tracker.open_episode
        if open_episode is None:
            return False
        # Still within merge range of the last anomalous point?
        if self._position - open_episode.end > self.gap:
            return False
        return open_episode.length >= self.min_len

    def reset(self) -> None:
        self._tracker = EpisodeTracker(merge_gap=self.gap, min_length=self.min_len)
        self._position = 0

    def clone(self) -> "AlertRule":
        return EpisodeRule(self.threshold, self.min_len, self.gap)

    def describe(self) -> str:
        return (f"episode(threshold={self.threshold:g}, "
                f"min_len={self.min_len}, gap={self.gap})")

    def reference(self, scores: Sequence[float]) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        flags = scores > self.threshold
        out = np.zeros(scores.shape[0], dtype=bool)
        for t in range(scores.shape[0]):
            # Full recompute: sessionize the prefix, look at its last episode.
            episodes = sessionize(flags[:t + 1], merge_gap=self.gap, min_length=1)
            if not episodes:
                continue
            last = episodes[-1]
            out[t] = (t + 1 - last.end <= self.gap) and last.length >= self.min_len
        return out


class QuantileRule(AlertRule):
    """Score exceeds ``mult`` x the rolling ``q``-percentile of prior scores.

    The baseline quantile is computed over the *previous* ``window`` scores
    (the current one excluded, so a spike cannot lift its own baseline); the
    rule is inactive until a full window of history exists (warm-up).
    """

    def __init__(self, q: float = 99.0, window: int = 128, mult: float = 1.0) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.q = float(q)
        self.window = int(window)
        self.mult = float(mult)
        self._baseline = RollingQuantile(window, self.q)
        self._count = 0

    def update(self, index: int, score: float) -> bool:
        active = False
        if self._count >= self.window:
            # The operator state currently holds exactly the previous window.
            frame = np.asarray(self._baseline._buf, dtype=np.float64)
            active = bool(score > self.mult * self._baseline._reduce(frame))
        self._baseline.update(score)
        self._count += 1
        return active

    def reset(self) -> None:
        self._baseline.reset()
        self._count = 0

    def clone(self) -> "AlertRule":
        return QuantileRule(self.q, self.window, self.mult)

    def describe(self) -> str:
        return f"quantile(q={self.q:g}, window={self.window}, mult={self.mult:g})"

    def reference(self, scores: Sequence[float]) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        out = np.zeros(scores.shape[0], dtype=bool)
        for t in range(self.window, scores.shape[0]):
            baseline = np.percentile(scores[t - self.window:t], self.q)
            out[t] = bool(scores[t] > self.mult * baseline)
        return out


class _Combinator(AlertRule):
    _JOIN = ""

    def __init__(self, children: Sequence[AlertRule]) -> None:
        if not children:
            raise ValueError("combinator needs at least one child rule")
        self.children = list(children)

    def _combine(self, states: List[bool]) -> bool:
        raise NotImplementedError

    def update(self, index: int, score: float) -> bool:
        # Never short-circuit: every stateful child must see every score.
        return self._combine([child.update(index, score) for child in self.children])

    def reset(self) -> None:
        for child in self.children:
            child.reset()

    def clone(self) -> "AlertRule":
        return type(self)([child.clone() for child in self.children])

    def describe(self) -> str:
        parts = []
        for child in self.children:
            text = child.describe()
            parts.append(f"({text})" if isinstance(child, _Combinator) else text)
        return self._JOIN.join(parts)

    def reference(self, scores: Sequence[float]) -> np.ndarray:
        states = np.stack([child.reference(scores) for child in self.children])
        return self._reduce_reference(states)

    def _reduce_reference(self, states: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class AllOf(_Combinator):
    """True when every child rule is active (``and``)."""

    _JOIN = " and "

    def _combine(self, states: List[bool]) -> bool:
        return all(states)

    def _reduce_reference(self, states: np.ndarray) -> np.ndarray:
        return np.all(states, axis=0)


class AnyOf(_Combinator):
    """True when any child rule is active (``or``)."""

    _JOIN = " or "

    def _combine(self, states: List[bool]) -> bool:
        return any(states)

    def _reduce_reference(self, states: np.ndarray) -> np.ndarray:
        return np.any(states, axis=0)


# ----------------------------------------------------------------------
# Policies and per-tenant monitors
# ----------------------------------------------------------------------

class AlertPolicy:
    """A named, reusable rule expression.

    The policy itself is stateless; call :meth:`monitor` per tenant for an
    edge-triggered evaluator with its own rule state.
    """

    def __init__(self, root: AlertRule, name: str = "policy",
                 source: Optional[str] = None) -> None:
        self.root = root
        self.name = name
        self.source = source if source is not None else root.describe()

    def monitor(self, tenant: str) -> "PolicyMonitor":
        return PolicyMonitor(self, tenant)

    def describe(self) -> str:
        return f"{self.name}: {self.root.describe()}"

    def evaluate_reference(self, scores: Sequence[float]) -> np.ndarray:
        """Naive full recompute of the policy's activity series."""
        return self.root.reference(scores)


class PolicyMonitor:
    """Edge-triggered incremental evaluation of one policy on one tenant."""

    def __init__(self, policy: AlertPolicy, tenant: str) -> None:
        self.policy = policy
        self.tenant = tenant
        self._root = policy.root.clone()
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    @property
    def root(self) -> AlertRule:
        """This monitor's private rule-state tree (a clone of the policy's)."""
        return self._root

    def reset(self) -> None:
        """Clear all rule state and re-arm the monitor (no edge is emitted)."""
        self._root.reset()
        self._active = False

    def update(self, index: int, score: float) -> List[AlertEvent]:
        """Consume one score; returns the fired/resolved edge, if any."""
        state = self._root.update(index, float(score))
        if state == self._active:
            return []
        self._active = state
        return [AlertEvent(
            tenant=self.tenant, index=int(index), policy=self.policy.name,
            kind="fired" if state else "resolved", score=float(score),
            detail=self.policy.source)]

    def activity(self, scores: Sequence[float],
                 start_index: int = 0) -> np.ndarray:
        """Incremental activity series over a block (advances the state)."""
        return np.asarray(
            [self._root.update(start_index + i, float(s))
             for i, s in enumerate(np.asarray(scores, dtype=np.float64))],
            dtype=bool)


# ----------------------------------------------------------------------
# Grammar:  expr := term ('or' term)* ; term := factor ('and' factor)* ;
#           factor := '(' expr ')' | atom
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<lparen>\() | (?P<rparen>\)) |
        (?P<cmp>>=|<=|>|<) |
        (?P<comma>,) | (?P<eq>=) |
        (?P<number>[-+]?\d+(?:\.\d*)?(?:[eE][-+]?\d+)?) |
        (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    )""", re.VERBOSE)

#: Rule-function atoms: name -> (builder, {param: (required, default)}).
_RULE_FUNCTIONS = {
    "hysteresis": (
        lambda kw: HysteresisRule(up=kw["up"], down=kw["down"]),
        {"up": True, "down": True},
    ),
    "episode": (
        lambda kw: EpisodeRule(threshold=kw["threshold"],
                               min_len=int(kw.get("min_len", 1)),
                               gap=int(kw.get("gap", 0))),
        {"threshold": True, "min_len": False, "gap": False},
    ),
    "quantile": (
        lambda kw: QuantileRule(q=kw.get("q", 99.0),
                                window=int(kw.get("window", 128)),
                                mult=kw.get("mult", 1.0)),
        {"q": False, "window": False, "mult": False},
    ),
}


class _PolicyParser:
    def __init__(self, text: str, functions: Optional[dict] = None) -> None:
        self.text = text
        self.tokens = self._tokenize(text)
        self.position = 0
        # Rule-function table: the alerting atoms by default; other layers
        # (e.g. the drift detectors of repro.adaptation) reuse the grammar
        # with their own atoms by passing a table of the same shape.
        self.functions = _RULE_FUNCTIONS if functions is None else functions

    @staticmethod
    def _tokenize(text: str) -> List[tuple]:
        tokens, position = [], 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None or match.end() == position:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise ValueError(f"bad policy syntax near {remainder[:20]!r}")
            position = match.end()
            kind = match.lastgroup
            if kind is not None:
                tokens.append((kind, match.group(kind)))
        return tokens

    # -- token helpers --------------------------------------------------
    def _peek(self) -> Optional[tuple]:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def _next(self) -> tuple:
        token = self._peek()
        if token is None:
            raise ValueError(f"unexpected end of policy {self.text!r}")
        self.position += 1
        return token

    def _expect(self, kind: str) -> str:
        token = self._next()
        if token[0] != kind:
            raise ValueError(
                f"expected {kind} but found {token[1]!r} in policy {self.text!r}")
        return token[1]

    # -- grammar --------------------------------------------------------
    def parse(self) -> AlertRule:
        rule = self._expr()
        if self._peek() is not None:
            raise ValueError(
                f"trailing tokens after policy expression: {self._peek()[1]!r}")
        return rule

    def _expr(self) -> AlertRule:
        terms = [self._term()]
        while self._peek() is not None and self._peek()[1].lower() == "or":
            self._next()
            terms.append(self._term())
        return terms[0] if len(terms) == 1 else AnyOf(terms)

    def _term(self) -> AlertRule:
        factors = [self._factor()]
        while self._peek() is not None and self._peek()[1].lower() == "and":
            self._next()
            factors.append(self._factor())
        return factors[0] if len(factors) == 1 else AllOf(factors)

    def _factor(self) -> AlertRule:
        token = self._peek()
        if token is None:
            raise ValueError(f"unexpected end of policy {self.text!r}")
        if token[0] == "lparen":
            self._next()
            rule = self._expr()
            self._expect("rparen")
            return rule
        return self._atom()

    def _atom(self) -> AlertRule:
        kind, value = self._next()
        if kind != "name":
            raise ValueError(f"expected a rule, found {value!r} in {self.text!r}")
        name = value.lower()
        if name == "score":
            comparator = self._expect("cmp")
            threshold = float(self._expect("number"))
            return ThresholdRule(threshold, comparator)
        if name not in self.functions:
            raise ValueError(
                f"unknown rule {value!r}; available: score, "
                f"{', '.join(sorted(self.functions))}")
        builder, params = self.functions[name]
        self._expect("lparen")
        kwargs: Dict[str, float] = {}
        while True:
            token = self._peek()
            if token is not None and token[0] == "rparen":
                self._next()
                break
            key = self._expect("name").lower()
            if key not in params:
                raise ValueError(
                    f"unknown parameter {key!r} of rule {name!r}; "
                    f"expected: {', '.join(sorted(params))}")
            if key in kwargs:
                raise ValueError(f"duplicate parameter {key!r} of rule {name!r}")
            self._expect("eq")
            kwargs[key] = float(self._expect("number"))
            token = self._peek()
            if token is not None and token[0] == "comma":
                self._next()
        missing = [key for key, required in params.items()
                   if required and key not in kwargs]
        if missing:
            raise ValueError(
                f"rule {name!r} is missing required parameter(s): "
                f"{', '.join(sorted(missing))}")
        return builder(kwargs)


def parse_policy(text: str, name: str = "policy",
                 functions: Optional[dict] = None) -> AlertPolicy:
    """Parse a policy expression (see the module docstring for the grammar).

    ``functions`` optionally replaces the rule-function table — a mapping
    ``atom_name -> (builder, {param: required})`` — so other layers can reuse
    the grammar and the edge-triggered monitor machinery with their own
    stateful rules (``repro.adaptation`` does this for drift detection).
    The ``score <cmp> x`` atom and the ``and``/``or``/parentheses structure
    are always available.

    Examples
    --------
    >>> policy = parse_policy("score > 0.8 and quantile(q=99, window=64)")
    >>> monitor = policy.monitor("tenant-0")
    >>> monitor.update(0, 0.1)
    []
    """
    if not text or not text.strip():
        raise ValueError("empty policy expression")
    root = _PolicyParser(text, functions=functions).parse()
    return AlertPolicy(root, name=name, source=text.strip())
