"""Bounded per-tenant score history with watermarks.

:class:`ScoreStore` is the queryable surface between the serving hot path
and the analytics layer: :class:`~repro.serving.DetectorService` (or any
caller of :class:`~repro.serving.IncrementalScorer`) appends each tenant's
final-step anomaly score — and, once decided, its label — as it is produced,
and queries/operator pipelines/alert policies read from the store instead of
re-deriving history from the scorer.

Rows are addressed by *absolute* stream index (the serving layer's
convention, see :mod:`repro.serving.buffers`), retention is a fixed-capacity
ring per tenant, and each tenant carries a **watermark**: the absolute index
up to which scores have been appended.  Appends must be contiguous at the
watermark — the store is a history, not a random-access table — which keeps
"what has analytics seen" a single integer per tenant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..serving.buffers import RingBuffer

__all__ = ["ScoreStream", "ScoreStore"]


@dataclass
class ScoreStream:
    """A contiguous span of one tenant's scored stream.

    ``labels`` uses NaN for points whose label was never recorded (the store
    accepts score-only appends; labels arrive with the alarm decision).
    """

    tenant: str
    start: int
    scores: np.ndarray
    labels: np.ndarray

    @property
    def end(self) -> int:
        return self.start + self.scores.shape[0]

    def label_array(self) -> np.ndarray:
        """Labels as int64 with unknown labels coerced to 0 (not anomalous)."""
        labels = np.where(np.isnan(self.labels), 0.0, self.labels)
        return labels.astype(np.int64)


class ScoreStore:
    """Bounded, watermarked per-tenant score/label history."""

    #: Ring layout: column 0 = final-step score, column 1 = label (NaN = unknown).
    _WIDTH = 2

    def __init__(self, history: int = 4096) -> None:
        if history < 1:
            raise ValueError("history must be positive")
        self.history = int(history)
        self._rings: Dict[str, RingBuffer] = {}
        # First absolute index holding a really-appended row: a skipped
        # prefix (stream replayed mid-capture) zero-fills the ring, and those
        # rows are not evidence — views never surface them.
        self._valid_from: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------
    def register_tenant(self, tenant: str) -> None:
        """Idempotent: appending auto-registers, this only pre-creates."""
        self._rings.setdefault(tenant, RingBuffer(self.history, self._WIDTH))
        self._valid_from.setdefault(tenant, 0)

    def tenants(self) -> List[str]:
        return sorted(self._rings)

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._rings

    def _ring(self, tenant: str) -> RingBuffer:
        try:
            return self._rings[tenant]
        except KeyError:
            raise KeyError(f"unknown tenant {tenant!r}") from None

    # ------------------------------------------------------------------
    # Watermarks and retention
    # ------------------------------------------------------------------
    def watermark(self, tenant: str) -> int:
        """Absolute index up to which this tenant's scores were appended."""
        return self._ring(tenant).end_index

    def retained_from(self, tenant: str) -> int:
        """Oldest absolute index still queryable (evicted or skipped before)."""
        return max(self._ring(tenant).start_index, self._valid_from[tenant])

    def evicted(self, tenant: str) -> int:
        return self._ring(tenant).evicted

    def skip_to(self, tenant: str, index: int) -> None:
        """Advance a tenant's watermark without data (uncaptured prefix)."""
        self.register_tenant(tenant)
        ring = self._rings[tenant]
        if index > ring.end_index:
            ring.skip_to(index)
            self._valid_from[tenant] = max(self._valid_from[tenant], index)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def append(self, tenant: str, start: int, scores: np.ndarray,
               labels: Optional[np.ndarray] = None) -> int:
        """Append a contiguous block of scores (and optional labels).

        ``start`` must equal the tenant's watermark: history grows in order,
        with no gaps and no rewrites.  Returns the new watermark.
        """
        self.register_tenant(tenant)
        ring = self._rings[tenant]
        scores = np.atleast_1d(np.asarray(scores, dtype=np.float64))
        if scores.ndim != 1:
            raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
        if start != ring.end_index:
            raise ValueError(
                f"append for {tenant!r} must start at the watermark "
                f"{ring.end_index}, got {start}")
        if labels is None:
            label_col = np.full(scores.shape[0], np.nan)
        else:
            label_col = np.atleast_1d(np.asarray(labels, dtype=np.float64))
            if label_col.shape != scores.shape:
                raise ValueError("labels must match scores in length")
        if scores.shape[0]:
            ring.append(np.stack([scores, label_col], axis=1))
        return ring.end_index

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def view(self, tenant: str, start: Optional[int] = None,
             end: Optional[int] = None) -> ScoreStream:
        """Retained scores/labels over ``[start, end)`` (defaults: all retained)."""
        ring = self._ring(tenant)
        floor = self.retained_from(tenant)
        lo = floor if start is None else max(int(start), floor)
        hi = ring.end_index if end is None else min(int(end), ring.end_index)
        lo = min(lo, hi)
        rows = ring.view(lo, hi)
        return ScoreStream(tenant=tenant, start=lo,
                           scores=rows[:, 0], labels=rows[:, 1])

    def tail(self, tenant: str, count: int) -> ScoreStream:
        """The newest ``count`` retained rows."""
        ring = self._ring(tenant)
        count = min(int(count), ring.size)
        return self.view(tenant, ring.end_index - count, ring.end_index)
