"""The ten baseline detectors the paper compares ImDiffusion against."""

from .base import BaseDetector, BaselineResult
from .beatgan import BeatGANDetector
from .gdn import GDNDetector
from .iforest import IsolationForestDetector
from .interfusion import InterFusionDetector
from .lstm_ad import LSTMADDetector
from .mad_gan import MADGANDetector
from .mscred import MSCREDDetector
from .mtad_gat import MTADGATDetector
from .omni_anomaly import OmniAnomalyDetector
from .tranad import TranADDetector

#: Registry mapping the paper's baseline names to their implementations.
BASELINE_REGISTRY = {
    "IForest": IsolationForestDetector,
    "BeatGAN": BeatGANDetector,
    "LSTM-AD": LSTMADDetector,
    "InterFusion": InterFusionDetector,
    "OmniAnomaly": OmniAnomalyDetector,
    "GDN": GDNDetector,
    "MAD-GAN": MADGANDetector,
    "MTAD-GAT": MTADGATDetector,
    "MSCRED": MSCREDDetector,
    "TranAD": TranADDetector,
}

__all__ = [
    "BaseDetector",
    "BaselineResult",
    "BASELINE_REGISTRY",
    "IsolationForestDetector",
    "BeatGANDetector",
    "LSTMADDetector",
    "InterFusionDetector",
    "OmniAnomalyDetector",
    "GDNDetector",
    "MADGANDetector",
    "MTADGATDetector",
    "MSCREDDetector",
    "TranADDetector",
]
