"""Common scaffolding shared by the baseline anomaly detectors.

Every baseline in this package follows the same protocol as
:class:`repro.core.ImDiffusionDetector`:

* ``fit(train)`` learns from a (mostly normal) training series,
* ``score(test)`` produces one continuous anomaly score per test timestamp,
* ``predict(test)`` thresholds the scores (upper percentile by default, POT
  for the detectors whose original papers use it) and returns a
  :class:`BaselineResult` exposing ``labels`` and ``scores`` so the
  evaluation runner treats every detector identically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.thresholding import apply_threshold, percentile_threshold, pot_threshold
from ..data.preprocessing import StandardScaler
from ..data.windows import overlap_average, sliding_windows
from ..nn import Adam
from ..training import EarlyStopping, Trainer, TrainResult, WindowLoader

__all__ = ["BaselineResult", "BaseDetector"]


@dataclass
class BaselineResult:
    """Prediction of a baseline detector: binary labels plus raw scores."""

    labels: np.ndarray
    scores: np.ndarray


class BaseDetector(ABC):
    """Abstract base class for the ten baseline detectors.

    Parameters
    ----------
    threshold_percentile:
        Upper percentile of the test scores used as the anomaly threshold.
    use_pot:
        Use the Peaks-Over-Threshold estimator instead of a fixed percentile
        (OmniAnomaly's protocol).
    seed:
        Seed of the detector's private random generator.
    """

    name: str = "Base"

    #: Whether EarlyStopping may roll the trained parameters back to the best
    #: epoch.  Adversarial detectors set this False: only the generator runs
    #: through the Trainer, so restoring it would desynchronise it from the
    #: discriminator (which keeps stepping inside the loss function).
    _restore_best_weights: bool = True

    def __init__(self, threshold_percentile: float = 97.0, use_pot: bool = False,
                 seed: int = 0,
                 early_stopping_patience: Optional[int] = None,
                 early_stopping_min_delta: float = 0.0) -> None:
        self.threshold_percentile = threshold_percentile
        self.use_pot = use_pot
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.scaler = StandardScaler()
        self._num_features: Optional[int] = None
        self.early_stopping_patience = early_stopping_patience
        self.early_stopping_min_delta = early_stopping_min_delta
        self.train_losses: List[float] = []
        self.last_train_result: Optional[TrainResult] = None

    # ------------------------------------------------------------------
    @abstractmethod
    def _fit(self, train: np.ndarray) -> None:
        """Detector-specific training on the scaled series."""

    @abstractmethod
    def _score(self, test: np.ndarray) -> np.ndarray:
        """Detector-specific scoring of the scaled series (one score per timestamp)."""

    # ------------------------------------------------------------------
    def fit(self, train: np.ndarray) -> "BaseDetector":
        train = self._validate(train, fitting=True)
        scaled = self.scaler.fit_transform(train)
        self._fit(scaled)
        return self

    def score(self, test: np.ndarray) -> np.ndarray:
        test = self._validate(test, fitting=False)
        scaled = self.scaler.transform(test)
        scores = np.asarray(self._score(scaled), dtype=np.float64)
        if scores.shape != (test.shape[0],):
            raise RuntimeError(
                f"{self.name}: _score returned shape {scores.shape}, expected ({test.shape[0]},)"
            )
        return scores

    def predict(self, test: np.ndarray) -> BaselineResult:
        scores = self.score(test)
        if self.use_pot:
            threshold = pot_threshold(scores)
        else:
            threshold = percentile_threshold(scores, self.threshold_percentile)
        return BaselineResult(labels=apply_threshold(scores, threshold), scores=scores)

    def fit_predict(self, train: np.ndarray, test: np.ndarray) -> BaselineResult:
        return self.fit(train).predict(test)

    # ------------------------------------------------------------------
    def _validate(self, data: np.ndarray, fitting: bool) -> np.ndarray:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("expected a 2-D array of shape (time, features)")
        if fitting:
            self._num_features = data.shape[1]
        elif self._num_features is None:
            raise RuntimeError(f"{self.name} must be fitted before scoring")
        elif data.shape[1] != self._num_features:
            raise ValueError(
                f"{self.name} was fitted on {self._num_features} features, got {data.shape[1]}"
            )
        return data

    # ------------------------------------------------------------------
    # Shared training engine hook
    # ------------------------------------------------------------------
    def _run_trainer(self, parameters: Sequence, loss_fn: Callable,
                     arrays: Sequence[np.ndarray], *, epochs: int,
                     batch_size: int, learning_rate: float,
                     grad_clip: Optional[float] = 5.0,
                     optimizer=None, callbacks: Sequence = ()) -> TrainResult:
        """Train through the shared :class:`repro.training.Trainer`.

        Every baseline funnels its epoch loop through here: ``arrays`` are
        the aligned sample arrays (windows, or histories + targets) batched
        by a vectorized :class:`~repro.training.WindowLoader` driven by the
        detector's own ``rng``, and ``loss_fn(batch, state)`` computes the
        per-batch loss.  The detector-level ``early_stopping_patience``
        plugs in an :class:`~repro.training.EarlyStopping` callback; the
        resulting loss curve lands in ``self.train_losses``.
        """
        loader = WindowLoader(*arrays, batch_size=batch_size, rng=self.rng)
        if optimizer is None:
            optimizer = Adam(parameters, lr=learning_rate)
        # Detector-derived callbacks run before caller-supplied ones (the
        # same order ImDiffusionDetector.fit uses), so a trailing Checkpoint
        # always snapshots the post-restore weights.
        engine_callbacks = []
        if self.early_stopping_patience is not None:
            engine_callbacks.append(EarlyStopping(
                patience=self.early_stopping_patience,
                min_delta=self.early_stopping_min_delta,
                restore_best=self._restore_best_weights,
            ))
        trainer = Trainer(parameters, optimizer, loss_fn, grad_clip=grad_clip,
                          callbacks=engine_callbacks + list(callbacks),
                          rng=self.rng)
        result = trainer.fit(loader, epochs=epochs)
        self.train_losses = list(result.epoch_losses)
        self.last_train_result = result
        return result

    # ------------------------------------------------------------------
    # Helpers shared by the window-based baselines
    # ------------------------------------------------------------------
    def _windows(self, series: np.ndarray, window_size: int, stride: int) -> Tuple[np.ndarray, np.ndarray]:
        window_size = min(window_size, series.shape[0])
        return sliding_windows(series, window_size, stride)

    @staticmethod
    def _merge_window_scores(window_scores: np.ndarray, starts: np.ndarray,
                             length: int) -> np.ndarray:
        """Average overlapping per-window, per-timestamp scores back to a series."""
        return overlap_average(window_scores, starts, length)
