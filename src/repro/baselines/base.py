"""Common scaffolding shared by the baseline anomaly detectors.

Every baseline in this package follows the same protocol as
:class:`repro.core.ImDiffusionDetector`:

* ``fit(train)`` learns from a (mostly normal) training series,
* ``score(test)`` produces one continuous anomaly score per test timestamp,
* ``predict(test)`` thresholds the scores (upper percentile by default, POT
  for the detectors whose original papers use it) and returns a
  :class:`BaselineResult` exposing ``labels`` and ``scores`` so the
  evaluation runner treats every detector identically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.thresholding import apply_threshold, percentile_threshold, pot_threshold
from ..data.preprocessing import StandardScaler
from ..data.windows import overlap_average, sliding_windows
from ..nn import Adam, no_grad
from ..training import (
    VALIDATION_SEED_OFFSET,
    VALIDATION_SPLITS,
    AdversarialMethodLossSpec,
    EarlyStopping,
    MethodLossSpec,
    ParallelTrainer,
    Trainer,
    TrainResult,
    WindowLoader,
    split_windows,
)

__all__ = ["BaselineResult", "BaseDetector"]


@dataclass
class BaselineResult:
    """Prediction of a baseline detector: binary labels plus raw scores."""

    labels: np.ndarray
    scores: np.ndarray


class BaseDetector(ABC):
    """Abstract base class for the ten baseline detectors.

    Parameters
    ----------
    threshold_percentile:
        Upper percentile of the test scores used as the anomaly threshold.
    use_pot:
        Use the Peaks-Over-Threshold estimator instead of a fixed percentile
        (OmniAnomaly's protocol).
    seed:
        Seed of the detector's private random generator.
    early_stopping_patience / early_stopping_min_delta:
        Stop training after ``patience`` non-improving epochs (``None``
        disables).  The monitored loss is the held-out validation loss when
        ``validation_fraction > 0``, the train loss otherwise.
    validation_fraction:
        Fraction of the training samples held out of gradient descent and
        scored grad-free at every epoch end (0 disables; the random stream
        then matches the legacy loops bit for bit).
    validation_split:
        ``"random"`` (deterministic permutation) or ``"tail"`` (hold out the
        last samples — closest to production drift monitoring, consumes no
        randomness).
    num_workers:
        Data-parallel training: shard every batch across this many spawned
        gradient workers and average their gradients before the single
        optimizer step.  1 (the default) trains in-process.  Only detectors
        whose loss is spawn-safe (pure, picklable, rng-free) support more
        than one worker; the others raise at fit time.
    """

    name: str = "Base"

    #: Whether EarlyStopping may roll the trained parameters back to the best
    #: epoch.  Adversarial detectors set this False: only the generator runs
    #: through the Trainer, so restoring it would desynchronise it from the
    #: discriminator (which keeps stepping inside the loss function).
    _restore_best_weights: bool = True

    #: Declarative data-parallel capability flag.  A class sets this True
    #: when its training loss is factored as a :class:`ParallelLossSpec`
    #: (picklable methods, parent-side randomness); ``num_workers > 1`` is
    #: rejected otherwise with :attr:`parallel_unsupported_reason`.
    supports_parallel: bool = False

    #: The class-specific reason shown when ``num_workers > 1`` is rejected.
    #: Subclasses that stay serial state their real constraint here.
    parallel_unsupported_reason: str = \
        "its training loss is not factored as a ParallelLossSpec"

    #: Name of the picklable loss *method* used for data-parallel training.
    #: Takes ``(batch, state)``, or ``(batch, payload, state)`` when a
    #: ``_parallel_draw_method`` is set.
    _parallel_loss_method: Optional[str] = None

    #: Name of the method pre-drawing the loss's randomness in the parent:
    #: ``(batch, rng, state) -> tuple of arrays`` whose leading dimension
    #: indexes batch samples (so the payload shards alongside the batch).
    _parallel_draw_method: Optional[str] = None

    #: Name of the adversary (discriminator) loss method of GAN-style
    #: detectors, ``(batch, payload, state)``.  When set, the spec also uses
    #: ``_adversary_parameters()`` and the ``_discriminator_opt`` attribute
    #: for the parent-side adversary step.
    _adversary_loss_method: Optional[str] = None

    #: Test/bench knob: route ``num_workers=1`` through the spec path
    #: (``ParallelTrainer`` + ``SpecReducer``) instead of the frozen serial
    #: closure, to exercise the bit-identity contract between the two.
    _force_parallel_spec: bool = False

    def __init__(self, threshold_percentile: float = 97.0, use_pot: bool = False,
                 seed: int = 0,
                 early_stopping_patience: Optional[int] = None,
                 early_stopping_min_delta: float = 0.0,
                 validation_fraction: float = 0.0,
                 validation_split: str = "random",
                 num_workers: int = 1) -> None:
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation_fraction must lie in [0, 1)")
        if validation_split not in VALIDATION_SPLITS:
            raise ValueError(f"validation_split must be one of {VALIDATION_SPLITS}")
        if early_stopping_patience is not None and early_stopping_patience < 1:
            raise ValueError("early_stopping_patience must be at least 1")
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.threshold_percentile = threshold_percentile
        self.use_pot = use_pot
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.scaler = StandardScaler()
        self._num_features: Optional[int] = None
        self.early_stopping_patience = early_stopping_patience
        self.early_stopping_min_delta = early_stopping_min_delta
        self.validation_fraction = validation_fraction
        self.validation_split = validation_split
        self.num_workers = num_workers
        self.train_losses: List[float] = []
        self.val_losses: List[float] = []
        self.last_train_result: Optional[TrainResult] = None

    # ------------------------------------------------------------------
    @abstractmethod
    def _fit(self, train: np.ndarray) -> None:
        """Detector-specific training on the scaled series."""

    @abstractmethod
    def _score(self, test: np.ndarray) -> np.ndarray:
        """Detector-specific scoring of the scaled series (one score per timestamp)."""

    # ------------------------------------------------------------------
    def fit(self, train: np.ndarray) -> "BaseDetector":
        train = self._validate(train, fitting=True)
        scaled = self.scaler.fit_transform(train)
        self._fit(scaled)
        return self

    def score(self, test: np.ndarray) -> np.ndarray:
        test = self._validate(test, fitting=False)
        scaled = self.scaler.transform(test)
        scores = np.asarray(self._score(scaled), dtype=np.float64)
        if scores.shape != (test.shape[0],):
            raise RuntimeError(
                f"{self.name}: _score returned shape {scores.shape}, expected ({test.shape[0]},)"
            )
        return scores

    def predict(self, test: np.ndarray) -> BaselineResult:
        scores = self.score(test)
        if self.use_pot:
            threshold = pot_threshold(scores)
        else:
            threshold = percentile_threshold(scores, self.threshold_percentile)
        return BaselineResult(labels=apply_threshold(scores, threshold), scores=scores)

    def fit_predict(self, train: np.ndarray, test: np.ndarray) -> BaselineResult:
        return self.fit(train).predict(test)

    # ------------------------------------------------------------------
    def _validate(self, data: np.ndarray, fitting: bool) -> np.ndarray:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("expected a 2-D array of shape (time, features)")
        if fitting:
            self._num_features = data.shape[1]
        elif self._num_features is None:
            raise RuntimeError(f"{self.name} must be fitted before scoring")
        elif data.shape[1] != self._num_features:
            raise ValueError(
                f"{self.name} was fitted on {self._num_features} features, got {data.shape[1]}"
            )
        return data

    # ------------------------------------------------------------------
    # Shared training engine hook
    # ------------------------------------------------------------------
    def _run_trainer(self, parameters: Sequence, loss_fn: Callable,
                     arrays: Sequence[np.ndarray], *, epochs: int,
                     batch_size: int, learning_rate: float,
                     grad_clip: Optional[float] = 5.0,
                     optimizer=None, callbacks: Sequence = (),
                     val_loss_fn: Optional[Callable] = None) -> TrainResult:
        """Train through the shared :class:`repro.training.Trainer`.

        Every baseline funnels its epoch loop through here: ``arrays`` are
        the aligned sample arrays (windows, or histories + targets) batched
        by a vectorized :class:`~repro.training.WindowLoader` driven by the
        detector's own ``rng``, and ``loss_fn(batch, state)`` computes the
        per-batch loss.  The detector-level ``early_stopping_patience``
        plugs in an :class:`~repro.training.EarlyStopping` callback; the
        resulting loss curve lands in ``self.train_losses``.

        With ``validation_fraction > 0`` the arrays are deterministically
        split first and the held-out part is scored grad-free at every epoch
        end (curve in ``self.val_losses``); early stopping then monitors the
        held-out loss.  ``val_loss_fn`` overrides the loss used for that
        pass — required whenever ``loss_fn`` has training side effects, like
        the GAN baselines stepping their discriminator inside the closure.
        """
        arrays, val_arrays = split_windows(
            tuple(arrays), self.validation_fraction, self.rng,
            split=self.validation_split)
        loader = WindowLoader(*arrays, batch_size=batch_size, rng=self.rng)
        validate_fn = None
        if val_arrays is not None:
            validate_fn = self._make_validate_fn(
                val_arrays, batch_size, val_loss_fn or loss_fn)
        if optimizer is None:
            optimizer = Adam(parameters, lr=learning_rate)
        # Detector-derived callbacks run before caller-supplied ones (the
        # same order ImDiffusionDetector.fit uses), so a trailing Checkpoint
        # always snapshots the post-restore weights.
        engine_callbacks = []
        if self.early_stopping_patience is not None:
            engine_callbacks.append(EarlyStopping(
                patience=self.early_stopping_patience,
                min_delta=self.early_stopping_min_delta,
                restore_best=self._restore_best_weights,
            ))
        common = dict(grad_clip=grad_clip,
                      callbacks=engine_callbacks + list(callbacks),
                      rng=self.rng, validate_fn=validate_fn)
        if self.num_workers != 1 or self._force_parallel_spec:
            spec = self._parallel_spec()
            if spec is None:
                raise ValueError(
                    f"{self.name} does not support num_workers > 1: "
                    f"{self.parallel_unsupported_reason}.  "
                    "Train with num_workers=1."
                )
            trainer = ParallelTrainer(parameters, optimizer, spec,
                                      num_workers=self.num_workers, **common)
        else:
            trainer = Trainer(parameters, optimizer, loss_fn, **common)
        result = trainer.fit(loader, epochs=epochs)
        self.train_losses = list(result.epoch_losses)
        self.val_losses = list(result.val_losses)
        self.last_train_result = result
        return result

    def _parallel_spec(self) -> Optional[MethodLossSpec]:
        """The data-parallel loss spec of this detector, or ``None``.

        Detectors opt in by setting :attr:`supports_parallel` and exposing
        their loss as a picklable *method* (named by
        ``_parallel_loss_method``) plus :meth:`_trainer_parameters`; the spec
        then ships the whole detector to each spawned worker once, and every
        batch is computed shard-wise with shard-size weighting (exact for
        the per-sample mean losses the baselines use).  Stochastic losses
        name a ``_parallel_draw_method`` so their randomness is drawn in the
        parent; GAN-style detectors name an ``_adversary_loss_method`` so
        the discriminator updates through the adversary-gradient reduction.
        """
        if not self.supports_parallel or self._parallel_loss_method is None:
            return None
        if self._adversary_loss_method is not None:
            return AdversarialMethodLossSpec(
                self, self._parallel_loss_method, self._adversary_loss_method,
                draw_method=self._parallel_draw_method)
        return MethodLossSpec(self, self._parallel_loss_method,
                              "_trainer_parameters",
                              draw_method=self._parallel_draw_method)

    def _trainer_parameters(self) -> List:
        """The trainable parameters, in the order given to ``_run_trainer``.

        Parallel-capable baselines override this; worker replicas rebuild
        their parameter list through it, so the order must match the parent's
        exactly.
        """
        raise NotImplementedError(
            f"{self.name} must implement _trainer_parameters to support "
            "data-parallel training"
        )

    def _make_validate_fn(self, val_arrays: Sequence[np.ndarray],
                          batch_size: int, loss_fn: Callable) -> Callable:
        """Wrap ``loss_fn`` into a grad-free held-out pass over ``val_arrays``.

        The detector's ``rng`` is swapped for a generator re-seeded with
        ``seed + VALIDATION_SEED_OFFSET`` for the duration of the pass, so
        stochastic losses (the VAE reparameterisations, the GAN latent
        draws) see identical randomness at every epoch — comparable values —
        without consuming the training stream the loss closures share.
        """
        val_loader = WindowLoader(*val_arrays, batch_size=batch_size, shuffle=False)

        def validate(trainer, state) -> float:
            total, count = 0.0, 0
            train_rng = self.rng
            self.rng = np.random.default_rng(self.seed + VALIDATION_SEED_OFFSET)
            try:
                with no_grad():
                    for batch in val_loader:
                        loss = loss_fn(batch, state)
                        total += float(loss.data) * batch.size
                        count += batch.size
            finally:
                self.rng = train_rng
            return total / max(count, 1)

        return validate

    # ------------------------------------------------------------------
    # Helpers shared by the window-based baselines
    # ------------------------------------------------------------------
    def _subsample_indices(self, num_samples: int, max_samples: int) -> np.ndarray:
        """Random subset of sample indices, time-ordered under a tail split.

        Draws exactly one ``rng.choice`` (the legacy subsampling draw).  For
        random validation splits the subset keeps the drawn (shuffled) order,
        preserving bit-identity with the legacy loops; a tail split sorts it
        so "the last samples" are genuinely the most recent ones.
        """
        indices = self.rng.choice(num_samples, size=max_samples, replace=False)
        if self.validation_split == "tail":
            indices = np.sort(indices)
        return indices

    def _windows(self, series: np.ndarray, window_size: int, stride: int) -> Tuple[np.ndarray, np.ndarray]:
        window_size = min(window_size, series.shape[0])
        return sliding_windows(series, window_size, stride)

    @staticmethod
    def _merge_window_scores(window_scores: np.ndarray, starts: np.ndarray,
                             length: int) -> np.ndarray:
        """Average overlapping per-window, per-timestamp scores back to a series."""
        return overlap_average(window_scores, starts, length)
