"""BeatGAN (Zhou et al., 2019): adversarially regularised reconstruction.

An encoder-decoder generator reconstructs windows of the series while a
discriminator tries to tell reconstructions from real windows; the generator
is trained with a reconstruction loss plus an adversarial feature-matching
term.  The anomaly score of a timestamp is its reconstruction error averaged
over the windows that contain it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Adam, MLP, Sequential, Sigmoid, Linear, ReLU, Tensor
from ..nn import functional as F
from .base import BaseDetector

__all__ = ["BeatGANDetector"]


class BeatGANDetector(BaseDetector):
    """GAN-regularised autoencoder over flattened windows."""

    name = "BeatGAN"
    # The discriminator trains outside the Trainer; rolling back only the
    # generator would desynchronise the adversarial pair.
    _restore_best_weights = False
    supports_parallel = True
    _parallel_loss_method = "_generator_loss"
    _adversary_loss_method = "_adversary_loss"

    def __init__(self, window_size: int = 32, latent_dim: int = 16, hidden_dim: int = 64,
                 epochs: int = 5, batch_size: int = 16, learning_rate: float = 2e-3,
                 adversarial_weight: float = 0.1, max_train_windows: int = 128,
                 threshold_percentile: float = 97.0, seed: int = 0,
                 early_stopping_patience: Optional[int] = None,
                 early_stopping_min_delta: float = 0.0,
                 validation_fraction: float = 0.0,
                 validation_split: str = "random",
                 num_workers: int = 1) -> None:
        super().__init__(threshold_percentile=threshold_percentile, seed=seed,
                         early_stopping_patience=early_stopping_patience,
                         early_stopping_min_delta=early_stopping_min_delta,
                         validation_fraction=validation_fraction,
                         validation_split=validation_split,
                         num_workers=num_workers)
        self.window_size = window_size
        self.latent_dim = latent_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.adversarial_weight = adversarial_weight
        self.max_train_windows = max_train_windows
        self._encoder: Optional[MLP] = None
        self._decoder: Optional[MLP] = None
        self._discriminator: Optional[Sequential] = None
        self._discriminator_opt: Optional[Adam] = None
        self._window_size = window_size

    # ------------------------------------------------------------------
    def _trainer_parameters(self):
        return self._encoder.parameters() + self._decoder.parameters()

    def _adversary_parameters(self):
        return self._discriminator.parameters()

    def _adversary_loss(self, batch, payload, state) -> Tensor:
        """Discriminator objective: real windows vs detached reconstructions."""
        batch_tensor = Tensor(batch.data)
        reconstruction = self._decoder(self._encoder(batch_tensor)).detach()
        real_pred = self._discriminator(batch_tensor)
        fake_pred = self._discriminator(reconstruction)
        return F.binary_cross_entropy(real_pred, Tensor(np.ones((batch.size, 1)))) + \
            F.binary_cross_entropy(fake_pred, Tensor(np.zeros((batch.size, 1))))

    def _generator_loss(self, batch, payload, state) -> Tensor:
        """Generator objective: reconstruction + fool the discriminator."""
        batch_tensor = Tensor(batch.data)
        reconstruction = self._decoder(self._encoder(batch_tensor))
        recon_loss = F.mse_loss(reconstruction, batch_tensor)
        adv_pred = self._discriminator(reconstruction)
        adv_loss = F.binary_cross_entropy(adv_pred, Tensor(np.ones((batch.size, 1))))
        return recon_loss + self.adversarial_weight * adv_loss

    def _fit(self, train: np.ndarray) -> None:
        num_features = train.shape[1]
        self._window_size = min(self.window_size, train.shape[0])
        flat_dim = self._window_size * num_features

        self._encoder = MLP([flat_dim, self.hidden_dim, self.latent_dim], rng=self.rng)
        self._decoder = MLP([self.latent_dim, self.hidden_dim, flat_dim], rng=self.rng)
        self._discriminator = Sequential(
            Linear(flat_dim, self.hidden_dim, rng=self.rng), ReLU(),
            Linear(self.hidden_dim, 1, rng=self.rng), Sigmoid(),
        )

        windows, _ = self._windows(train, self._window_size, self._window_size // 2 or 1)
        flat = windows.reshape(windows.shape[0], -1)
        if flat.shape[0] > self.max_train_windows:
            idx = self._subsample_indices(flat.shape[0], self.max_train_windows)
            flat = flat[idx]

        generator_params = self._trainer_parameters()
        self._discriminator_opt = Adam(self._discriminator.parameters(),
                                       lr=self.learning_rate)

        def adversarial_loss(batch, state):
            """Discriminator update inline, then the generator loss.

            The shared Trainer owns only the generator optimizer; the
            discriminator takes its own Adam step here before the generator
            loss is formed, exactly the alternation of the original loop.
            """
            self._discriminator_opt.zero_grad()
            d_loss = self._adversary_loss(batch, (), state)
            d_loss.backward()
            self._discriminator_opt.step()
            return self._generator_loss(batch, (), state)

        def validation_loss(batch, state):
            # Side-effect-free generator objective for the held-out pass:
            # same reconstruction + adversarial terms, but the discriminator
            # is only consulted, never stepped.
            return self._generator_loss(batch, (), state)

        self._run_trainer(generator_params, adversarial_loss, (flat,),
                          epochs=self.epochs, batch_size=self.batch_size,
                          learning_rate=self.learning_rate,
                          val_loss_fn=validation_loss)

    def _score(self, test: np.ndarray) -> np.ndarray:
        num_features = test.shape[1]
        windows, starts = self._windows(test, self._window_size, self._window_size // 2 or 1)
        flat = windows.reshape(windows.shape[0], -1)
        window_errors = np.zeros((windows.shape[0], windows.shape[1]))
        for start in range(0, flat.shape[0], self.batch_size):
            chunk = slice(start, start + self.batch_size)
            reconstruction = self._decoder(self._encoder(Tensor(flat[chunk]))).data
            reshaped = reconstruction.reshape(-1, windows.shape[1], num_features)
            window_errors[chunk] = ((reshaped - windows[chunk]) ** 2).mean(axis=2)
        return self._merge_window_scores(window_errors, starts, test.shape[0])
