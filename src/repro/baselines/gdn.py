"""GDN (Deng & Hooi, 2021): Graph Deviation Network.

GDN learns an embedding per sensor, builds a sparse similarity graph over the
sensors (top-k cosine similarity of the embeddings), forecasts each sensor
from its graph neighbours with attention, and scores anomalies by the maximum
normalised forecasting deviation over sensors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Linear, MLP, Parameter, Tensor
from ..nn import functional as F
from ..nn import init as nn_init
from ..training import LambdaCallback
from .base import BaseDetector

__all__ = ["GDNDetector"]


class GDNDetector(BaseDetector):
    """Graph-structure-learning forecaster with per-sensor deviation scoring."""

    name = "GDN"
    supports_parallel = True
    _parallel_loss_method = "_spec_deviation_loss"
    _parallel_draw_method = "_draw_graph"

    def __init__(self, history: int = 12, embedding_dim: int = 16, top_k: int = 5,
                 hidden_dim: int = 32, epochs: int = 4, batch_size: int = 32,
                 learning_rate: float = 3e-3, max_train_samples: int = 384,
                 threshold_percentile: float = 97.0, seed: int = 0,
                 early_stopping_patience: Optional[int] = None,
                 early_stopping_min_delta: float = 0.0,
                 validation_fraction: float = 0.0,
                 validation_split: str = "random",
                 num_workers: int = 1) -> None:
        super().__init__(threshold_percentile=threshold_percentile, seed=seed,
                         early_stopping_patience=early_stopping_patience,
                         early_stopping_min_delta=early_stopping_min_delta,
                         validation_fraction=validation_fraction,
                         validation_split=validation_split,
                         num_workers=num_workers)
        self.history = history
        self.embedding_dim = embedding_dim
        self.top_k = top_k
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.max_train_samples = max_train_samples
        self._sensor_embedding: Optional[Parameter] = None
        self._history_proj: Optional[Linear] = None
        self._output_head: Optional[MLP] = None
        self._adjacency: Optional[np.ndarray] = None
        self._spec_adjacency: Optional[np.ndarray] = None
        self._error_median: Optional[np.ndarray] = None
        self._error_iqr: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _learn_graph(self) -> np.ndarray:
        """Top-k cosine-similarity adjacency over the learned sensor embeddings."""
        embeddings = self._sensor_embedding.data
        norms = np.linalg.norm(embeddings, axis=1, keepdims=True) + 1e-9
        similarity = (embeddings / norms) @ (embeddings / norms).T
        np.fill_diagonal(similarity, -np.inf)
        num_sensors = similarity.shape[0]
        adjacency = np.zeros_like(similarity)
        k = min(self.top_k, num_sensors - 1)
        if k > 0:
            for i in range(num_sensors):
                neighbours = np.argsort(similarity[i])[-k:]
                adjacency[i, neighbours] = 1.0
        return adjacency

    def _forecast(self, histories: np.ndarray, adjacency: np.ndarray) -> Tensor:
        """Predict the next value of every sensor from its neighbours' histories.

        ``histories`` has shape ``(batch, history, num_sensors)``.
        """
        batch, history, num_sensors = histories.shape
        # Per-sensor history representation: (batch, sensors, hidden).
        per_sensor = Tensor(histories.transpose(0, 2, 1))
        hidden = self._history_proj(per_sensor).relu()

        # Aggregate neighbour representations with the (row-normalised) adjacency.
        row_sums = adjacency.sum(axis=1, keepdims=True)
        weights = adjacency / np.maximum(row_sums, 1.0)
        neighbour_info = Tensor(np.broadcast_to(weights, (batch, num_sensors, num_sensors)).copy()) \
            .matmul(hidden)

        embeddings = Tensor(np.broadcast_to(self._sensor_embedding.data,
                                            (batch, num_sensors, self.embedding_dim)).copy())
        combined = hidden + neighbour_info
        fused = combined * self._embedding_gate(embeddings)
        return self._output_head(fused).squeeze(2)

    def _embedding_gate(self, embeddings: Tensor) -> Tensor:
        """Project the sensor embedding to a multiplicative gate over hidden units."""
        return self._embedding_proj(embeddings).sigmoid()

    def _trainer_parameters(self):
        return ([self._sensor_embedding] + self._history_proj.parameters()
                + self._embedding_proj.parameters() + self._output_head.parameters())

    def _draw_graph(self, batch, rng: np.random.Generator, state):
        """Epoch-frozen adjacency, shipped with the batch as a spec payload.

        Consumes no randomness.  Rebuilt from the parent's current embeddings
        at the first batch of every epoch (``state.batch == 0``) — the
        embeddings have not moved since epoch start, so this equals the
        serial ``on_epoch_start`` rebuild — and broadcast over the batch so
        every shard carries the same graph.
        """
        if state.batch == 0 or self._spec_adjacency is None:
            self._spec_adjacency = self._learn_graph()
        num_sensors = self._spec_adjacency.shape[0]
        return (np.broadcast_to(self._spec_adjacency,
                                (batch.size, num_sensors, num_sensors)),)

    def _spec_deviation_loss(self, batch, payload, state) -> Tensor:
        batch_inputs, batch_targets = batch
        prediction = self._forecast(batch_inputs, payload[0][0])
        return F.mse_loss(prediction, Tensor(batch_targets))

    def _make_samples(self, series: np.ndarray) -> tuple:
        history = self.history
        inputs, targets, positions = [], [], []
        for t in range(history, series.shape[0]):
            inputs.append(series[t - history:t])
            targets.append(series[t])
            positions.append(t)
        return np.asarray(inputs), np.asarray(targets), np.asarray(positions)

    def _fit(self, train: np.ndarray) -> None:
        num_sensors = train.shape[1]
        self.history = min(self.history, max(2, train.shape[0] // 4))
        self._sensor_embedding = Parameter(
            nn_init.normal((num_sensors, self.embedding_dim), self.rng, std=0.1))
        self._history_proj = Linear(self.history, self.hidden_dim, rng=self.rng)
        self._embedding_proj = Linear(self.embedding_dim, self.hidden_dim, rng=self.rng)
        self._output_head = MLP([self.hidden_dim, self.hidden_dim, 1], rng=self.rng)

        parameters = self._trainer_parameters()

        inputs, targets, _ = self._make_samples(train)
        if inputs.shape[0] > self.max_train_samples:
            idx = self._subsample_indices(inputs.shape[0], self.max_train_samples)
            inputs, targets = inputs[idx], targets[idx]

        # The graph follows the evolving embeddings: rebuilt at every epoch
        # start (always before the first batch reads it), frozen within the
        # epoch — the original GDN protocol.
        graph = {"adjacency": None}

        def rebuild_graph(trainer, state):
            graph["adjacency"] = self._learn_graph()

        def deviation_loss(batch, state):
            batch_inputs, batch_targets = batch
            prediction = self._forecast(batch_inputs, graph["adjacency"])
            return F.mse_loss(prediction, Tensor(batch_targets))

        self._run_trainer(parameters, deviation_loss, (inputs, targets),
                          epochs=self.epochs, batch_size=self.batch_size,
                          learning_rate=self.learning_rate,
                          callbacks=[LambdaCallback(on_epoch_start=rebuild_graph)])

        # Robust normalisation statistics of the training errors (per sensor).
        self._adjacency = self._learn_graph()
        train_errors = self._per_sensor_errors(train)
        self._error_median = np.median(train_errors, axis=0)
        q75, q25 = np.percentile(train_errors, [75, 25], axis=0)
        self._error_iqr = np.maximum(q75 - q25, 1e-6)

    def _per_sensor_errors(self, series: np.ndarray) -> np.ndarray:
        inputs, targets, positions = self._make_samples(series)
        errors = np.zeros((series.shape[0], series.shape[1]))
        for start in range(0, inputs.shape[0], self.batch_size):
            chunk = slice(start, start + self.batch_size)
            prediction = self._forecast(inputs[chunk], self._adjacency).data
            errors[positions[chunk]] = np.abs(prediction - targets[chunk])
        if inputs.shape[0] > 0:
            errors[:positions[0]] = np.median(errors[positions], axis=0)
        return errors

    def _score(self, test: np.ndarray) -> np.ndarray:
        errors = self._per_sensor_errors(test)
        normalised = (errors - self._error_median) / self._error_iqr
        return normalised.max(axis=1)
