"""Isolation Forest (Liu et al., 2008/2012) — the classical tree-based baseline.

Implemented from scratch: an ensemble of isolation trees is built on random
sub-samples of the training points; the anomaly score of a test point is the
standard ``2^(-E[h(x)] / c(n))`` transform of its average path length.  Each
timestamp of the multivariate series is treated as one point, augmented with a
short local window mean/std so temporal context is not discarded entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .base import BaseDetector

__all__ = ["IsolationForestDetector"]


@dataclass
class _Node:
    """A node of an isolation tree: either a split or a leaf holding a size."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    size: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


def _average_path_length(n: int) -> float:
    """Expected path length c(n) of an unsuccessful BST search (Liu et al.)."""
    if n <= 1:
        return 0.0
    harmonic = np.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


def _build_tree(points: np.ndarray, depth: int, max_depth: int,
                rng: np.random.Generator) -> _Node:
    n = points.shape[0]
    if depth >= max_depth or n <= 1:
        return _Node(size=n)
    feature = int(rng.integers(0, points.shape[1]))
    low, high = points[:, feature].min(), points[:, feature].max()
    if high <= low:
        return _Node(size=n)
    threshold = float(rng.uniform(low, high))
    mask = points[:, feature] < threshold
    return _Node(
        feature=feature,
        threshold=threshold,
        left=_build_tree(points[mask], depth + 1, max_depth, rng),
        right=_build_tree(points[~mask], depth + 1, max_depth, rng),
    )


def _path_length(node: _Node, point: np.ndarray, depth: int = 0) -> float:
    if node.is_leaf:
        return depth + _average_path_length(node.size)
    if point[node.feature] < node.threshold:
        return _path_length(node.left, point, depth + 1)
    return _path_length(node.right, point, depth + 1)


class IsolationForestDetector(BaseDetector):
    """Isolation-forest anomaly detector over per-timestamp feature vectors."""

    name = "IForest"
    supports_parallel = False
    parallel_unsupported_reason = ("isolation forests have no gradient "
                                   "training loop to shard")

    def __init__(self, num_trees: int = 50, subsample_size: int = 256,
                 context_window: int = 5, threshold_percentile: float = 97.0,
                 seed: int = 0) -> None:
        super().__init__(threshold_percentile=threshold_percentile, seed=seed)
        self.num_trees = num_trees
        self.subsample_size = subsample_size
        self.context_window = context_window
        self._trees: List[_Node] = []
        self._sample_size = 0

    # ------------------------------------------------------------------
    def _augment(self, series: np.ndarray) -> np.ndarray:
        """Append a rolling mean and std so points carry local temporal context."""
        window = self.context_window
        length = series.shape[0]
        means = np.empty_like(series)
        stds = np.empty_like(series)
        for i in range(length):
            lo = max(0, i - window)
            chunk = series[lo:i + 1]
            means[i] = chunk.mean(axis=0)
            stds[i] = chunk.std(axis=0)
        return np.concatenate([series, means, stds], axis=1)

    def _fit(self, train: np.ndarray) -> None:
        points = self._augment(train)
        self._sample_size = min(self.subsample_size, points.shape[0])
        self._trees = []
        max_depth = int(np.ceil(np.log2(max(self._sample_size, 2))))
        for _ in range(self.num_trees):
            idx = self.rng.choice(points.shape[0], size=self._sample_size, replace=False)
            self._trees.append(_build_tree(points[idx], 0, max_depth, self.rng))

    def _score(self, test: np.ndarray) -> np.ndarray:
        points = self._augment(test)
        normaliser = _average_path_length(self._sample_size)
        scores = np.empty(points.shape[0])
        for i, point in enumerate(points):
            lengths = [_path_length(tree, point) for tree in self._trees]
            scores[i] = 2.0 ** (-np.mean(lengths) / max(normaliser, 1e-9))
        return scores
