"""InterFusion (Li et al., 2021): hierarchical inter-metric + temporal modelling.

InterFusion models a window with two latent variables — one capturing
inter-metric structure (how the channels relate at each timestamp) and one
capturing temporal structure (how the window evolves) — and reconstructs the
window from both.  This implementation keeps that two-view hierarchical VAE:

* the *inter-metric* encoder compresses each timestamp's feature vector,
* the *temporal* encoder (a GRU) compresses the sequence of compressed
  timestamps into a window-level latent,
* the decoder reconstructs the window from the temporal latent plus the
  per-timestamp inter-metric latents.

The anomaly score is the per-timestamp reconstruction error.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import GRU, Linear, MLP, Tensor
from ..nn import functional as F
from .base import BaseDetector

__all__ = ["InterFusionDetector"]


class InterFusionDetector(BaseDetector):
    """Hierarchical two-view VAE reconstruction detector."""

    name = "InterFusion"
    supports_parallel = True
    _parallel_loss_method = "_spec_elbo_loss"
    _parallel_draw_method = "_draw_vae_noise"

    def __init__(self, window_size: int = 32, metric_latent_dim: int = 8,
                 temporal_latent_dim: int = 8, hidden_dim: int = 32,
                 epochs: int = 5, batch_size: int = 16, learning_rate: float = 2e-3,
                 kl_weight: float = 0.05, max_train_windows: int = 128,
                 threshold_percentile: float = 97.0, seed: int = 0,
                 early_stopping_patience: Optional[int] = None,
                 early_stopping_min_delta: float = 0.0,
                 validation_fraction: float = 0.0,
                 validation_split: str = "random",
                 num_workers: int = 1) -> None:
        super().__init__(threshold_percentile=threshold_percentile, seed=seed,
                         early_stopping_patience=early_stopping_patience,
                         early_stopping_min_delta=early_stopping_min_delta,
                         validation_fraction=validation_fraction,
                         validation_split=validation_split,
                         num_workers=num_workers)
        self.window_size = window_size
        self.metric_latent_dim = metric_latent_dim
        self.temporal_latent_dim = temporal_latent_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.kl_weight = kl_weight
        self.max_train_windows = max_train_windows
        self._window_size = window_size

    # ------------------------------------------------------------------
    def _build(self, num_features: int) -> None:
        rng = self.rng
        self._metric_encoder = MLP([num_features, self.hidden_dim, 2 * self.metric_latent_dim],
                                   rng=rng)
        self._temporal_encoder = GRU(self.metric_latent_dim, self.hidden_dim, rng=rng)
        self._temporal_mu = Linear(self.hidden_dim, self.temporal_latent_dim, rng=rng)
        self._temporal_logvar = Linear(self.hidden_dim, self.temporal_latent_dim, rng=rng)
        self._decoder = MLP(
            [self.metric_latent_dim + self.temporal_latent_dim, self.hidden_dim, num_features],
            rng=rng)
        self._parameters = (self._metric_encoder.parameters()
                            + self._temporal_encoder.parameters()
                            + self._temporal_mu.parameters()
                            + self._temporal_logvar.parameters()
                            + self._decoder.parameters())

    def _trainer_parameters(self):
        return list(self._parameters)

    def _draw_vae_noise(self, batch, rng: np.random.Generator, state):
        """Both reparameterisation draws of one batch, in the serial order.

        The serial ELBO draws metric noise ``(B, L, mz)`` first and temporal
        noise ``(B, tz)`` second from the same stream; pre-drawing in that
        order keeps the spec path bit-identical.
        """
        length = batch.data.shape[1]
        return (rng.standard_normal((batch.size, length, self.metric_latent_dim)),
                rng.standard_normal((batch.size, self.temporal_latent_dim)))

    def _spec_elbo_loss(self, batch, payload, state):
        return self._hierarchical_elbo(batch.data, noise=payload)

    def _hierarchical_elbo(self, data: np.ndarray, noise=None):
        reconstruction, metric_mu, metric_logvar, temporal_mu, temporal_logvar = \
            self._encode_decode(data, sample=True, noise=noise)
        return F.mse_loss(reconstruction, Tensor(data)) \
            + self.kl_weight * F.kl_divergence_normal(metric_mu.reshape(-1, self.metric_latent_dim),
                                                      metric_logvar.reshape(-1, self.metric_latent_dim)) \
            + self.kl_weight * F.kl_divergence_normal(temporal_mu, temporal_logvar)

    def _encode_decode(self, batch: np.ndarray, sample: bool = True, noise=None):
        """Return the reconstruction plus the variational statistics.

        ``noise`` optionally injects the pre-drawn ``(metric, temporal)``
        reparameterisation noise pair; when omitted (the serial path) both
        draws come from ``self.rng`` in the same order.
        """
        batch_size, length, _ = batch.shape
        x = Tensor(batch)

        metric_stats = self._metric_encoder(x)                       # (B, L, 2*mz)
        metric_mu = metric_stats[:, :, :self.metric_latent_dim]
        metric_logvar = metric_stats[:, :, self.metric_latent_dim:].clip(-6.0, 6.0)
        if sample:
            drawn = noise[0] if noise is not None \
                else self.rng.standard_normal(metric_mu.shape)
            metric_latent = metric_mu + (metric_logvar * 0.5).exp() * Tensor(drawn)
        else:
            metric_latent = metric_mu

        _, final_hidden = self._temporal_encoder(metric_latent)      # (B, hidden)
        temporal_mu = self._temporal_mu(final_hidden)
        temporal_logvar = self._temporal_logvar(final_hidden).clip(-6.0, 6.0)
        if sample:
            drawn = noise[1] if noise is not None \
                else self.rng.standard_normal(temporal_mu.shape)
            temporal_latent = temporal_mu + (temporal_logvar * 0.5).exp() * Tensor(drawn)
        else:
            temporal_latent = temporal_mu

        # Broadcast the temporal latent over the window and decode per timestamp.
        repeated = temporal_latent.expand_dims(1).repeat(length, axis=1)
        from ..nn import concat

        joint = concat([metric_latent, repeated], axis=2)
        reconstruction = self._decoder(joint)                        # (B, L, K)
        return reconstruction, metric_mu, metric_logvar, temporal_mu, temporal_logvar

    def _fit(self, train: np.ndarray) -> None:
        num_features = train.shape[1]
        self._window_size = min(self.window_size, train.shape[0])
        self._build(num_features)

        windows, _ = self._windows(train, self._window_size, self._window_size // 2 or 1)
        if windows.shape[0] > self.max_train_windows:
            idx = self._subsample_indices(windows.shape[0], self.max_train_windows)
            windows = windows[idx]

        def hierarchical_elbo(batch, state):
            return self._hierarchical_elbo(batch.data)

        self._run_trainer(self._parameters, hierarchical_elbo, (windows,),
                          epochs=self.epochs, batch_size=self.batch_size,
                          learning_rate=self.learning_rate)

    def _score(self, test: np.ndarray) -> np.ndarray:
        windows, starts = self._windows(test, self._window_size, self._window_size // 2 or 1)
        window_errors = np.zeros((windows.shape[0], windows.shape[1]))
        for start in range(0, windows.shape[0], self.batch_size):
            chunk = slice(start, start + self.batch_size)
            reconstruction, *_ = self._encode_decode(windows[chunk], sample=False)
            window_errors[chunk] = ((reconstruction.data - windows[chunk]) ** 2).mean(axis=2)
        return self._merge_window_scores(window_errors, starts, test.shape[0])
