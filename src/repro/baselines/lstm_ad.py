"""LSTM-AD (Malhotra et al., 2015): LSTM forecasting with prediction-error scoring.

A stacked LSTM observes a short history window and predicts the next
timestamp; the anomaly score of a timestamp is the mean squared prediction
error over all channels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import LSTM, Linear, Tensor
from ..nn import functional as F
from .base import BaseDetector

__all__ = ["LSTMADDetector"]


class LSTMADDetector(BaseDetector):
    """Forecasting-based detector: score = next-step prediction error."""

    name = "LSTM-AD"
    supports_parallel = True
    _parallel_loss_method = "_forecast_loss"

    def __init__(self, history: int = 16, hidden_size: int = 32, num_layers: int = 1,
                 epochs: int = 5, batch_size: int = 32, learning_rate: float = 5e-3,
                 max_train_samples: int = 512, threshold_percentile: float = 97.0,
                 seed: int = 0, early_stopping_patience: Optional[int] = None,
                 early_stopping_min_delta: float = 0.0,
                 validation_fraction: float = 0.0,
                 validation_split: str = "random",
                 num_workers: int = 1) -> None:
        super().__init__(threshold_percentile=threshold_percentile, seed=seed,
                         early_stopping_patience=early_stopping_patience,
                         early_stopping_min_delta=early_stopping_min_delta,
                         validation_fraction=validation_fraction,
                         validation_split=validation_split,
                         num_workers=num_workers)
        self.history = history
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.max_train_samples = max_train_samples
        self._lstm: Optional[LSTM] = None
        self._head: Optional[Linear] = None

    # ------------------------------------------------------------------
    def _make_samples(self, series: np.ndarray) -> tuple:
        """Slice (history, next value) pairs from a series."""
        history = min(self.history, series.shape[0] - 1)
        inputs, targets, positions = [], [], []
        for t in range(history, series.shape[0]):
            inputs.append(series[t - history:t])
            targets.append(series[t])
            positions.append(t)
        return np.asarray(inputs), np.asarray(targets), np.asarray(positions)

    def _trainer_parameters(self):
        return self._lstm.parameters() + self._head.parameters()

    def _forecast_loss(self, batch, state):
        # A method (not a closure) so data-parallel workers can rebuild it
        # from a pickled replica of the detector.
        batch_inputs, batch_targets = batch
        _, last_hidden = self._lstm(Tensor(batch_inputs))
        prediction = self._head(last_hidden)
        return F.mse_loss(prediction, Tensor(batch_targets))

    def _fit(self, train: np.ndarray) -> None:
        num_features = train.shape[1]
        self._lstm = LSTM(num_features, self.hidden_size, num_layers=self.num_layers,
                          rng=self.rng)
        self._head = Linear(self.hidden_size, num_features, rng=self.rng)

        inputs, targets, _ = self._make_samples(train)
        if inputs.shape[0] > self.max_train_samples:
            idx = self._subsample_indices(inputs.shape[0], self.max_train_samples)
            inputs, targets = inputs[idx], targets[idx]

        self._run_trainer(self._trainer_parameters(), self._forecast_loss,
                          (inputs, targets),
                          epochs=self.epochs, batch_size=self.batch_size,
                          learning_rate=self.learning_rate)

    def _score(self, test: np.ndarray) -> np.ndarray:
        inputs, targets, positions = self._make_samples(test)
        scores = np.zeros(test.shape[0])
        for start in range(0, inputs.shape[0], self.batch_size):
            chunk = slice(start, start + self.batch_size)
            _, last_hidden = self._lstm(Tensor(inputs[chunk]))
            prediction = self._head(last_hidden).data
            errors = ((prediction - targets[chunk]) ** 2).mean(axis=1)
            scores[positions[chunk]] = errors
        # The first `history` timestamps have no prediction; use the median score.
        if inputs.shape[0] > 0:
            scores[:positions[0]] = np.median(scores[positions])
        return scores
