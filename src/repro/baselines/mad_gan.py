"""MAD-GAN (Li et al., 2019): GAN-based detection with discriminator + reconstruction scores.

An LSTM generator maps latent noise sequences to windows and an LSTM
discriminator separates real from generated windows.  At test time the anomaly
score combines (i) the discriminator's "fake" probability of the window and
(ii) the best reconstruction error over a small set of latent candidates —
a light-weight stand-in for the original's latent-space gradient search.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Adam, LSTM, Linear, Tensor
from ..nn import functional as F
from .base import BaseDetector

__all__ = ["MADGANDetector"]


class MADGANDetector(BaseDetector):
    """Generative-adversarial anomaly detector with a recurrent generator."""

    name = "MAD-GAN"
    # The discriminator trains outside the Trainer; rolling back only the
    # generator would desynchronise the adversarial pair.
    _restore_best_weights = False
    supports_parallel = True
    _parallel_loss_method = "_generator_loss"
    _parallel_draw_method = "_draw_latent"
    _adversary_loss_method = "_adversary_loss"

    def __init__(self, window_size: int = 32, latent_dim: int = 8, hidden_size: int = 32,
                 epochs: int = 5, batch_size: int = 16, learning_rate: float = 2e-3,
                 num_latent_candidates: int = 8, discriminator_weight: float = 0.3,
                 max_train_windows: int = 128, threshold_percentile: float = 97.0,
                 seed: int = 0, early_stopping_patience: Optional[int] = None,
                 early_stopping_min_delta: float = 0.0,
                 validation_fraction: float = 0.0,
                 validation_split: str = "random",
                 num_workers: int = 1) -> None:
        super().__init__(threshold_percentile=threshold_percentile, seed=seed,
                         early_stopping_patience=early_stopping_patience,
                         early_stopping_min_delta=early_stopping_min_delta,
                         validation_fraction=validation_fraction,
                         validation_split=validation_split,
                         num_workers=num_workers)
        self.window_size = window_size
        self.latent_dim = latent_dim
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.num_latent_candidates = num_latent_candidates
        self.discriminator_weight = discriminator_weight
        self.max_train_windows = max_train_windows
        self._generator_lstm: Optional[LSTM] = None
        self._generator_head: Optional[Linear] = None
        self._discriminator_lstm: Optional[LSTM] = None
        self._discriminator_head: Optional[Linear] = None
        self._discriminator_opt: Optional[Adam] = None
        self._window_size = window_size

    # ------------------------------------------------------------------
    def _generate(self, latent: np.ndarray) -> Tensor:
        outputs, _ = self._generator_lstm(Tensor(latent))
        return self._generator_head(outputs)

    def _discriminate(self, windows: Tensor) -> Tensor:
        _, last_hidden = self._discriminator_lstm(windows)
        return self._discriminator_head(last_hidden).sigmoid()

    def _trainer_parameters(self):
        return self._generator_lstm.parameters() + self._generator_head.parameters()

    def _adversary_parameters(self):
        return (self._discriminator_lstm.parameters()
                + self._discriminator_head.parameters())

    def _draw_latent(self, batch, rng: np.random.Generator, state):
        """The latent draw of one batch, shared by both rounds of the GAN step."""
        return (rng.standard_normal((batch.size, self._window_size, self.latent_dim)),)

    def _adversary_loss(self, batch, payload, state) -> Tensor:
        """Discriminator objective: real windows vs detached generations."""
        fake = self._generate(payload[0]).detach()
        real_pred = self._discriminate(Tensor(batch.data))
        fake_pred = self._discriminate(fake)
        return F.binary_cross_entropy(real_pred, Tensor(np.ones((batch.size, 1)))) + \
            F.binary_cross_entropy(fake_pred, Tensor(np.zeros((batch.size, 1))))

    def _generator_loss(self, batch, payload, state) -> Tensor:
        """Generator objective: fool the discriminator + stay close to real."""
        generated = self._generate(payload[0])
        g_pred = self._discriminate(generated)
        return F.binary_cross_entropy(g_pred, Tensor(np.ones((batch.size, 1)))) + \
            0.5 * F.mse_loss(generated, Tensor(batch.data))

    def _fit(self, train: np.ndarray) -> None:
        num_features = train.shape[1]
        self._window_size = min(self.window_size, train.shape[0])
        self._generator_lstm = LSTM(self.latent_dim, self.hidden_size, rng=self.rng)
        self._generator_head = Linear(self.hidden_size, num_features, rng=self.rng)
        self._discriminator_lstm = LSTM(num_features, self.hidden_size, rng=self.rng)
        self._discriminator_head = Linear(self.hidden_size, 1, rng=self.rng)

        generator_params = self._trainer_parameters()
        self._discriminator_opt = Adam(self._adversary_parameters(),
                                       lr=self.learning_rate)

        windows, _ = self._windows(train, self._window_size, self._window_size // 2 or 1)
        if windows.shape[0] > self.max_train_windows:
            idx = self._subsample_indices(windows.shape[0], self.max_train_windows)
            windows = windows[idx]

        def adversarial_loss(batch, state):
            # Discriminator update inline; the Trainer steps the generator.
            # One latent draw feeds both rounds, as in the original loop.
            payload = self._draw_latent(batch, self.rng, state)
            self._discriminator_opt.zero_grad()
            d_loss = self._adversary_loss(batch, payload, state)
            d_loss.backward()
            self._discriminator_opt.step()
            return self._generator_loss(batch, payload, state)

        def validation_loss(batch, state):
            # Side-effect-free generator objective for the held-out pass: the
            # discriminator is only consulted, never stepped, and the latent
            # draw comes from the dedicated validation generator.
            payload = self._draw_latent(batch, self.rng, state)
            return self._generator_loss(batch, payload, state)

        self._run_trainer(generator_params, adversarial_loss, (windows,),
                          val_loss_fn=validation_loss,
                          epochs=self.epochs, batch_size=self.batch_size,
                          learning_rate=self.learning_rate)

    def _score(self, test: np.ndarray) -> np.ndarray:
        windows, starts = self._windows(test, self._window_size, self._window_size // 2 or 1)
        num_windows = windows.shape[0]
        window_errors = np.zeros((num_windows, windows.shape[1]))
        discriminator_scores = np.zeros(num_windows)

        for index in range(num_windows):
            window = windows[index:index + 1]
            # Best-of-k latent reconstruction (cheap surrogate for latent optimisation).
            latents = self.rng.standard_normal(
                (self.num_latent_candidates, self._window_size, self.latent_dim))
            candidates = self._generate(latents).data
            errors = ((candidates - window) ** 2).mean(axis=2)  # (k, window)
            best = int(np.argmin(errors.mean(axis=1)))
            window_errors[index] = errors[best]
            fake_probability = 1.0 - float(self._discriminate(Tensor(window)).data[0, 0])
            discriminator_scores[index] = fake_probability

        reconstruction_series = self._merge_window_scores(window_errors, starts, test.shape[0])
        discriminator_series = self._merge_window_scores(
            np.repeat(discriminator_scores[:, None], windows.shape[1], axis=1), starts, test.shape[0])
        return reconstruction_series + self.discriminator_weight * discriminator_series
