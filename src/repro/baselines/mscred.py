"""MSCRED (Zhang et al., 2019): multi-scale signature-matrix reconstruction.

MSCRED characterises each window by *signature matrices* — inter-channel
correlation matrices computed at several temporal scales — and learns to
reconstruct them with a convolutional-recurrent autoencoder.  Anomalies
surface as poorly reconstructed signature matrices.

This implementation keeps the defining idea (multi-scale signature matrices,
reconstruction-residual scoring) while replacing the heavy ConvLSTM
encoder/decoder with a dense autoencoder over the flattened matrices, which
preserves the ranking behaviour at a fraction of the cost on the NumPy
substrate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn import MLP, Tensor
from ..nn import functional as F
from .base import BaseDetector

__all__ = ["MSCREDDetector"]


class MSCREDDetector(BaseDetector):
    """Signature-matrix reconstruction detector."""

    name = "MSCRED"
    supports_parallel = True
    _parallel_loss_method = "_reconstruction_loss"

    def __init__(self, window_size: int = 32, scales: Tuple[int, ...] = (8, 16, 32),
                 hidden_dim: int = 64, latent_dim: int = 16,
                 epochs: int = 5, batch_size: int = 16, learning_rate: float = 2e-3,
                 max_train_windows: int = 96, threshold_percentile: float = 97.0,
                 seed: int = 0, early_stopping_patience: Optional[int] = None,
                 early_stopping_min_delta: float = 0.0,
                 validation_fraction: float = 0.0,
                 validation_split: str = "random",
                 num_workers: int = 1) -> None:
        super().__init__(threshold_percentile=threshold_percentile, seed=seed,
                         early_stopping_patience=early_stopping_patience,
                         early_stopping_min_delta=early_stopping_min_delta,
                         validation_fraction=validation_fraction,
                         validation_split=validation_split,
                         num_workers=num_workers)
        self.window_size = window_size
        self.scales = scales
        self.hidden_dim = hidden_dim
        self.latent_dim = latent_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.max_train_windows = max_train_windows
        self._autoencoder: Optional[MLP] = None
        self._window_size = window_size
        self._effective_scales: Tuple[int, ...] = scales

    # ------------------------------------------------------------------
    def _signature_matrices(self, window: np.ndarray) -> np.ndarray:
        """Stack of normalised inner-product matrices at each temporal scale."""
        num_features = window.shape[1]
        matrices = []
        for scale in self._effective_scales:
            segment = window[-scale:]
            matrix = segment.T @ segment / scale
            matrices.append(matrix)
        return np.stack(matrices).reshape(-1)  # (num_scales * K * K,)

    def _features(self, windows: np.ndarray) -> np.ndarray:
        return np.stack([self._signature_matrices(w) for w in windows])

    def _fit(self, train: np.ndarray) -> None:
        self._window_size = min(self.window_size, train.shape[0])
        self._effective_scales = tuple(min(s, self._window_size) for s in self.scales)
        windows, _ = self._windows(train, self._window_size, self._window_size // 2 or 1)
        if windows.shape[0] > self.max_train_windows:
            idx = self._subsample_indices(windows.shape[0], self.max_train_windows)
            windows = windows[idx]
        features = self._features(windows)
        input_dim = features.shape[1]
        self._autoencoder = MLP([input_dim, self.hidden_dim, self.latent_dim,
                                 self.hidden_dim, input_dim], rng=self.rng)

        self._run_trainer(self._trainer_parameters(), self._reconstruction_loss,
                          (features,), epochs=self.epochs,
                          batch_size=self.batch_size,
                          learning_rate=self.learning_rate)

    def _trainer_parameters(self):
        return self._autoencoder.parameters()

    def _reconstruction_loss(self, batch, state):
        # A method (not a closure) so data-parallel workers can rebuild it
        # from a pickled replica of the detector.
        target = Tensor(batch.data)
        return F.mse_loss(self._autoencoder(target), target)

    def _score(self, test: np.ndarray) -> np.ndarray:
        windows, starts = self._windows(test, self._window_size, max(self._window_size // 4, 1))
        features = self._features(windows)
        reconstruction = np.zeros_like(features)
        for start in range(0, features.shape[0], self.batch_size):
            chunk = slice(start, start + self.batch_size)
            reconstruction[chunk] = self._autoencoder(Tensor(features[chunk])).data
        window_scores = ((reconstruction - features) ** 2).mean(axis=1)
        # A window-level residual is attributed to every timestamp it covers.
        per_timestamp = np.repeat(window_scores[:, None], self._window_size, axis=1)
        return self._merge_window_scores(per_timestamp, starts, test.shape[0])
