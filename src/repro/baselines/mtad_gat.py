"""MTAD-GAT (Zhao et al., 2020): graph-attention detector with joint objectives.

Two attention layers process each window — one over the *feature* axis (which
features influence each other) and one over the *time* axis — followed by a
GRU.  Two heads are trained jointly: a forecasting head predicting the next
timestamp and a reconstruction head recovering the window.  The anomaly score
combines the forecasting and reconstruction errors, as in the original paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import GRU, Linear, MLP, MultiHeadSelfAttention, Tensor
from ..nn import functional as F
from .base import BaseDetector

__all__ = ["MTADGATDetector"]


class MTADGATDetector(BaseDetector):
    """Feature- and time-oriented attention with joint forecast + reconstruction."""

    name = "MTAD-GAT"
    supports_parallel = True
    _parallel_loss_method = "_joint_loss"

    def __init__(self, window_size: int = 24, hidden_size: int = 32,
                 epochs: int = 4, batch_size: int = 8, learning_rate: float = 2e-3,
                 forecast_weight: float = 0.5, max_train_windows: int = 96,
                 threshold_percentile: float = 97.0, seed: int = 0,
                 early_stopping_patience: Optional[int] = None,
                 early_stopping_min_delta: float = 0.0,
                 validation_fraction: float = 0.0,
                 validation_split: str = "random",
                 num_workers: int = 1) -> None:
        super().__init__(threshold_percentile=threshold_percentile, seed=seed,
                         early_stopping_patience=early_stopping_patience,
                         early_stopping_min_delta=early_stopping_min_delta,
                         validation_fraction=validation_fraction,
                         validation_split=validation_split,
                         num_workers=num_workers)
        self.window_size = window_size
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.forecast_weight = forecast_weight
        self.max_train_windows = max_train_windows
        self._feature_attention: Optional[MultiHeadSelfAttention] = None
        self._time_attention: Optional[MultiHeadSelfAttention] = None
        self._input_proj: Optional[Linear] = None
        self._gru: Optional[GRU] = None
        self._forecast_head: Optional[MLP] = None
        self._reconstruction_head: Optional[MLP] = None
        self._window_size = window_size
        self._num_features = None

    # ------------------------------------------------------------------
    def _encode(self, windows: np.ndarray) -> Tensor:
        """Shared representation: feature attention, time attention, GRU."""
        batch, length, num_features = windows.shape
        x = Tensor(windows)

        # Feature-oriented attention: sequence axis = features.
        feature_view = x.transpose(0, 2, 1)                      # (batch, K, L)
        feature_in = self._feature_proj(feature_view)            # (batch, K, hidden)
        feature_out = self._feature_attention(feature_in)        # (batch, K, hidden)

        # Time-oriented attention: sequence axis = time.
        time_in = self._input_proj(x)                            # (batch, L, hidden)
        time_out = self._time_attention(time_in)                 # (batch, L, hidden)

        # Broadcast the feature summary over time and fuse.
        feature_summary = feature_out.mean(axis=1).expand_dims(1)   # (batch, 1, hidden)
        fused = time_out + feature_summary
        outputs, last_hidden = self._gru(fused)
        return outputs, last_hidden

    def _fit(self, train: np.ndarray) -> None:
        num_features = train.shape[1]
        self._num_features = num_features
        self._window_size = min(self.window_size, train.shape[0] - 1)
        hidden = self.hidden_size

        self._feature_proj = Linear(self._window_size, hidden, rng=self.rng)
        self._feature_attention = MultiHeadSelfAttention(hidden, 2, rng=self.rng)
        self._input_proj = Linear(num_features, hidden, rng=self.rng)
        self._time_attention = MultiHeadSelfAttention(hidden, 2, rng=self.rng)
        self._gru = GRU(hidden, hidden, rng=self.rng)
        self._forecast_head = MLP([hidden, hidden, num_features], rng=self.rng)
        self._reconstruction_head = MLP([hidden, hidden, self._window_size * num_features],
                                        rng=self.rng)

        # Each sample: a window plus the value right after it (forecast target).
        windows, starts = self._windows(train[:-1], self._window_size, self._window_size // 2 or 1)
        targets = np.stack([train[start + self._window_size] for start in starts])
        if windows.shape[0] > self.max_train_windows:
            idx = self._subsample_indices(windows.shape[0], self.max_train_windows)
            windows, targets = windows[idx], targets[idx]

        self._run_trainer(self._trainer_parameters(), self._joint_loss,
                          (windows, targets),
                          epochs=self.epochs, batch_size=self.batch_size,
                          learning_rate=self.learning_rate)

    def _trainer_parameters(self):
        return (self._feature_proj.parameters() + self._feature_attention.parameters()
                + self._input_proj.parameters() + self._time_attention.parameters()
                + self._gru.parameters() + self._forecast_head.parameters()
                + self._reconstruction_head.parameters())

    def _joint_loss(self, batch, state):
        # A method (not a closure) so data-parallel workers can rebuild it
        # from a pickled replica of the detector.
        batch_windows, batch_targets = batch
        _, last_hidden = self._encode(batch_windows)
        forecast = self._forecast_head(last_hidden)
        reconstruction = self._reconstruction_head(last_hidden)
        forecast_loss = F.mse_loss(forecast, Tensor(batch_targets))
        reconstruction_loss = F.mse_loss(
            reconstruction, Tensor(batch_windows.reshape(batch_windows.shape[0], -1)))
        return self.forecast_weight * forecast_loss + reconstruction_loss

    def _score(self, test: np.ndarray) -> np.ndarray:
        length, num_features = test.shape
        windows, starts = self._windows(test, self._window_size, self._window_size // 2 or 1)
        window_errors = np.zeros((windows.shape[0], windows.shape[1]))
        forecast_scores = np.zeros(length)
        forecast_counts = np.zeros(length)

        for start in range(0, windows.shape[0], self.batch_size):
            chunk = slice(start, min(start + self.batch_size, windows.shape[0]))
            batch = windows[chunk]
            _, last_hidden = self._encode(batch)
            reconstruction = self._reconstruction_head(last_hidden).data
            reshaped = reconstruction.reshape(-1, self._window_size, num_features)
            window_errors[chunk] = ((reshaped - batch) ** 2).mean(axis=2)

            forecast = self._forecast_head(last_hidden).data
            for i, window_start in enumerate(starts[chunk]):
                target_index = window_start + self._window_size
                if target_index < length:
                    error = float(((forecast[i] - test[target_index]) ** 2).mean())
                    forecast_scores[target_index] += error
                    forecast_counts[target_index] += 1

        reconstruction_series = self._merge_window_scores(window_errors, starts, length)
        forecast_series = forecast_scores / np.maximum(forecast_counts, 1.0)
        return reconstruction_series + self.forecast_weight * forecast_series
