"""OmniAnomaly (Su et al., 2019): GRU + VAE with POT thresholding.

A GRU encodes each window into a sequence of hidden states; a variational
bottleneck produces a latent distribution from the final state, a decoder
reconstructs the window, and the anomaly score is the reconstruction error
(the negative log-likelihood surrogate).  The threshold is chosen with the
Peaks-Over-Threshold method, as in the original paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import GRU, Linear, MLP, Tensor
from ..nn import functional as F
from .base import BaseDetector

__all__ = ["OmniAnomalyDetector"]


class OmniAnomalyDetector(BaseDetector):
    """Stochastic recurrent reconstruction detector (GRU encoder + VAE bottleneck)."""

    name = "OmniAnomaly"
    supports_parallel = True
    _parallel_loss_method = "_spec_elbo_loss"
    _parallel_draw_method = "_draw_elbo_noise"

    def __init__(self, window_size: int = 32, hidden_size: int = 32, latent_dim: int = 8,
                 epochs: int = 5, batch_size: int = 16, learning_rate: float = 2e-3,
                 kl_weight: float = 0.05, max_train_windows: int = 128,
                 seed: int = 0, early_stopping_patience: Optional[int] = None,
                 early_stopping_min_delta: float = 0.0,
                 validation_fraction: float = 0.0,
                 validation_split: str = "random",
                 num_workers: int = 1) -> None:
        super().__init__(use_pot=True, seed=seed,
                         early_stopping_patience=early_stopping_patience,
                         early_stopping_min_delta=early_stopping_min_delta,
                         validation_fraction=validation_fraction,
                         validation_split=validation_split,
                         num_workers=num_workers)
        self.window_size = window_size
        self.hidden_size = hidden_size
        self.latent_dim = latent_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.kl_weight = kl_weight
        self.max_train_windows = max_train_windows
        self._encoder: Optional[GRU] = None
        self._mu_head: Optional[Linear] = None
        self._logvar_head: Optional[Linear] = None
        self._decoder: Optional[MLP] = None
        self._window_size = window_size

    # ------------------------------------------------------------------
    def _fit(self, train: np.ndarray) -> None:
        num_features = train.shape[1]
        self._window_size = min(self.window_size, train.shape[0])
        flat_dim = self._window_size * num_features

        self._encoder = GRU(num_features, self.hidden_size, rng=self.rng)
        self._mu_head = Linear(self.hidden_size, self.latent_dim, rng=self.rng)
        self._logvar_head = Linear(self.hidden_size, self.latent_dim, rng=self.rng)
        self._decoder = MLP([self.latent_dim, self.hidden_size, flat_dim], rng=self.rng)

        parameters = (self._encoder.parameters() + self._mu_head.parameters()
                      + self._logvar_head.parameters() + self._decoder.parameters())

        windows, _ = self._windows(train, self._window_size, self._window_size // 2 or 1)
        if windows.shape[0] > self.max_train_windows:
            idx = self._subsample_indices(windows.shape[0], self.max_train_windows)
            windows = windows[idx]

        self._run_trainer(parameters,
                          lambda batch, state: self._elbo_loss(batch.data),
                          (windows,), epochs=self.epochs,
                          batch_size=self.batch_size,
                          learning_rate=self.learning_rate)

    def _trainer_parameters(self):
        return (self._encoder.parameters() + self._mu_head.parameters()
                + self._logvar_head.parameters() + self._decoder.parameters())

    def _draw_elbo_noise(self, batch, rng: np.random.Generator, state):
        """Reparameterisation noise of one batch, drawn in the parent.

        The single draw of the serial ELBO, same shape and stream position
        (``(batch, latent_dim)``), so pre-drawing keeps the spec path
        bit-identical to :meth:`_elbo_loss`.
        """
        return (rng.standard_normal((batch.size, self.latent_dim)),)

    def _spec_elbo_loss(self, batch, payload, state) -> Tensor:
        return self._elbo_from_noise(batch.data, payload[0])

    def _elbo_loss(self, batch: np.ndarray) -> Tensor:
        noise = self.rng.standard_normal((batch.shape[0], self.latent_dim))
        return self._elbo_from_noise(batch, noise)

    def _elbo_from_noise(self, batch: np.ndarray, noise: np.ndarray) -> Tensor:
        _, last_hidden = self._encoder(Tensor(batch))
        mu = self._mu_head(last_hidden)
        log_var = self._logvar_head(last_hidden).clip(-6.0, 6.0)
        latent = mu + (log_var * 0.5).exp() * Tensor(noise)
        reconstruction = self._decoder(latent)
        target = Tensor(batch.reshape(batch.shape[0], -1))
        return F.mse_loss(reconstruction, target) + self.kl_weight * F.kl_divergence_normal(mu, log_var)

    def _reconstruct(self, batch: np.ndarray) -> np.ndarray:
        _, last_hidden = self._encoder(Tensor(batch))
        mu = self._mu_head(last_hidden)
        reconstruction = self._decoder(mu).data
        return reconstruction.reshape(batch.shape)

    def _score(self, test: np.ndarray) -> np.ndarray:
        windows, starts = self._windows(test, self._window_size, self._window_size // 2 or 1)
        window_errors = np.zeros((windows.shape[0], windows.shape[1]))
        for start in range(0, windows.shape[0], self.batch_size):
            chunk = slice(start, start + self.batch_size)
            reconstruction = self._reconstruct(windows[chunk])
            window_errors[chunk] = ((reconstruction - windows[chunk]) ** 2).mean(axis=2)
        return self._merge_window_scores(window_errors, starts, test.shape[0])
