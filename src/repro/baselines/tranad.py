"""TranAD (Tuli et al., 2022): transformer reconstruction with adversarial self-conditioning.

TranAD encodes a window with a transformer and decodes it twice: a first pass
produces a reconstruction and its error ("focus score"), which conditions a
second adversarially-trained pass.  The anomaly score blends the two
reconstruction errors.  This implementation keeps the two-phase
self-conditioned reconstruction and the blended score.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Linear, Tensor, TransformerEncoder
from ..nn import functional as F
from .base import BaseDetector

__all__ = ["TranADDetector"]


class TranADDetector(BaseDetector):
    """Two-phase transformer reconstruction detector."""

    name = "TranAD"
    supports_parallel = True
    _parallel_loss_method = "_two_phase_loss"

    def __init__(self, window_size: int = 24, hidden_size: int = 32, num_layers: int = 1,
                 num_heads: int = 2, epochs: int = 4, batch_size: int = 8,
                 learning_rate: float = 2e-3, blend: float = 0.5,
                 max_train_windows: int = 96, threshold_percentile: float = 97.0,
                 seed: int = 0, early_stopping_patience: Optional[int] = None,
                 early_stopping_min_delta: float = 0.0,
                 validation_fraction: float = 0.0,
                 validation_split: str = "random",
                 num_workers: int = 1) -> None:
        super().__init__(threshold_percentile=threshold_percentile, seed=seed,
                         early_stopping_patience=early_stopping_patience,
                         early_stopping_min_delta=early_stopping_min_delta,
                         validation_fraction=validation_fraction,
                         validation_split=validation_split,
                         num_workers=num_workers)
        self.window_size = window_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.blend = blend
        self.max_train_windows = max_train_windows
        self._input_proj: Optional[Linear] = None
        self._focus_proj: Optional[Linear] = None
        self._encoder: Optional[TransformerEncoder] = None
        self._decoder1: Optional[Linear] = None
        self._decoder2: Optional[Linear] = None
        self._window_size = window_size

    # ------------------------------------------------------------------
    def _two_phase(self, batch: np.ndarray):
        """Return the phase-1 and phase-2 reconstructions of ``batch``."""
        x = Tensor(batch)
        zero_focus = Tensor(np.zeros_like(batch))
        phase1_in = self._input_proj(x) + self._focus_proj(zero_focus)
        phase1 = self._decoder1(self._encoder(phase1_in))

        focus = (phase1 - x) * (phase1 - x)
        phase2_in = self._input_proj(x) + self._focus_proj(focus.detach())
        phase2 = self._decoder2(self._encoder(phase2_in))
        return phase1, phase2

    def _fit(self, train: np.ndarray) -> None:
        num_features = train.shape[1]
        self._window_size = min(self.window_size, train.shape[0])
        self._input_proj = Linear(num_features, self.hidden_size, rng=self.rng)
        self._focus_proj = Linear(num_features, self.hidden_size, rng=self.rng)
        self._encoder = TransformerEncoder(self.hidden_size, self.num_heads,
                                           num_layers=self.num_layers, rng=self.rng)
        self._decoder1 = Linear(self.hidden_size, num_features, rng=self.rng)
        self._decoder2 = Linear(self.hidden_size, num_features, rng=self.rng)

        windows, _ = self._windows(train, self._window_size, self._window_size // 2 or 1)
        if windows.shape[0] > self.max_train_windows:
            idx = self._subsample_indices(windows.shape[0], self.max_train_windows)
            windows = windows[idx]

        self._run_trainer(self._trainer_parameters(), self._two_phase_loss, (windows,),
                          epochs=self.epochs, batch_size=self.batch_size,
                          learning_rate=self.learning_rate,
                          val_loss_fn=self._validation_loss)

    def _trainer_parameters(self):
        return (self._input_proj.parameters() + self._focus_proj.parameters()
                + self._encoder.parameters() + self._decoder1.parameters()
                + self._decoder2.parameters())

    def _two_phase_loss(self, batch, state):
        # A method (not a closure) so data-parallel workers can rebuild it
        # from a pickled replica of the detector.  The adversarial schedule
        # of TranAD: phase-2 weight grows with epochs (shipped to workers
        # through the slim TrainState).
        phase2_weight = 1.0 - 1.0 / (state.epoch + 1)
        phase1, phase2 = self._two_phase(batch.data)
        target = Tensor(batch.data)
        return (1.0 - phase2_weight) * F.mse_loss(phase1, target) \
            + phase2_weight * F.mse_loss(phase2, target)

    def _validation_loss(self, batch, state):
        # Fixed ``blend`` weighting (the scoring-time combination): the
        # training schedule's moving phase-2 weight would make the
        # held-out curve drift epoch over epoch even at constant model
        # quality, confounding early stopping.
        phase1, phase2 = self._two_phase(batch.data)
        target = Tensor(batch.data)
        return (1.0 - self.blend) * F.mse_loss(phase1, target) \
            + self.blend * F.mse_loss(phase2, target)

    def _score(self, test: np.ndarray) -> np.ndarray:
        windows, starts = self._windows(test, self._window_size, self._window_size // 2 or 1)
        window_errors = np.zeros((windows.shape[0], windows.shape[1]))
        for start in range(0, windows.shape[0], self.batch_size):
            chunk = slice(start, start + self.batch_size)
            batch = windows[chunk]
            phase1, phase2 = self._two_phase(batch)
            error1 = ((phase1.data - batch) ** 2).mean(axis=2)
            error2 = ((phase2.data - batch) ** 2).mean(axis=2)
            window_errors[chunk] = self.blend * error1 + (1.0 - self.blend) * error2
        return self._merge_window_scores(window_errors, starts, test.shape[0])
