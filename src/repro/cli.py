"""Command-line interface for the ImDiffusion reproduction.

Three subcommands cover the common workflows without writing any code::

    python -m repro.cli detect   --dataset SMD --scale 0.1 --epochs 3
    python -m repro.cli compare  --dataset GCP --detectors ImDiffusion,IForest,LSTM-AD
    python -m repro.cli datasets

``detect`` trains ImDiffusion on one benchmark analogue and reports the full
metric set; ``compare`` evaluates a comma-separated list of detectors on the
same dataset; ``datasets`` lists the available dataset analogues with their
profiles.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import ImDiffusionConfig, ImDiffusionDetector
from .baselines import BASELINE_REGISTRY
from .data import DATASET_PROFILES, list_datasets, load_dataset
from .evaluation import EvaluationSummary, evaluate_labels, format_results_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ImDiffusion reproduction: anomaly detection on benchmark analogues.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    detect = subparsers.add_parser("detect", help="run ImDiffusion on one dataset")
    _add_dataset_arguments(detect)
    detect.add_argument("--window-size", type=int, default=32)
    detect.add_argument("--num-steps", type=int, default=10)
    detect.add_argument("--epochs", type=int, default=3)
    detect.add_argument("--hidden-dim", type=int, default=24)
    detect.add_argument("--error-percentile", type=float, default=96.0)
    detect.add_argument("--no-ensemble", action="store_true",
                        help="threshold only the final denoising step")

    compare = subparsers.add_parser("compare", help="compare several detectors on one dataset")
    _add_dataset_arguments(compare)
    compare.add_argument("--detectors", default="ImDiffusion,IForest,LSTM-AD",
                         help="comma-separated detector names (ImDiffusion or any baseline)")

    subparsers.add_parser("datasets", help="list the available dataset analogues")
    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="SMD", help="dataset analogue name")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="length multiplier of the dataset analogue")
    parser.add_argument("--seed", type=int, default=0)


def _run_detect(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    config = ImDiffusionConfig(
        window_size=args.window_size,
        num_steps=args.num_steps,
        epochs=args.epochs,
        hidden_dim=args.hidden_dim,
        error_percentile=args.error_percentile,
        ensemble=not args.no_ensemble,
        seed=args.seed,
    )
    detector = ImDiffusionDetector(config)
    print(f"Training ImDiffusion on {dataset.name} "
          f"(train={dataset.train.shape}, test={dataset.test.shape}) ...")
    result = detector.fit_predict(dataset.train, dataset.test)
    metrics = evaluate_labels(result.labels, result.scores, dataset.test_labels)
    print(f"precision={metrics.precision:.3f} recall={metrics.recall:.3f} "
          f"f1={metrics.f1:.3f} r_auc_pr={metrics.r_auc_pr:.3f} add={metrics.add:.1f}")
    print(f"throughput={result.points_per_second:.1f} points/second")
    return 0


def _make_detector(name: str, seed: int):
    if name == "ImDiffusion":
        return ImDiffusionDetector(ImDiffusionConfig(
            window_size=32, num_steps=10, epochs=3, hidden_dim=24, num_blocks=1,
            max_train_windows=48, seed=seed))
    if name in BASELINE_REGISTRY:
        return BASELINE_REGISTRY[name](seed=seed)
    raise KeyError(
        f"unknown detector {name!r}; available: ImDiffusion, {', '.join(BASELINE_REGISTRY)}"
    )


def _run_compare(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    names = [name.strip() for name in args.detectors.split(",") if name.strip()]
    summaries: List[EvaluationSummary] = []
    for name in names:
        detector = _make_detector(name, args.seed)
        print(f"Running {name} on {dataset.name} ...")
        result = detector.fit_predict(dataset.train, dataset.test)
        metrics = evaluate_labels(result.labels, result.scores, dataset.test_labels)
        summaries.append(EvaluationSummary(detector=name, dataset=dataset.name, runs=[metrics]))
    print()
    print(format_results_table(summaries))
    return 0


def _run_datasets() -> int:
    print(f"{'name':6s} {'features':>8s} {'train':>7s} {'test':>7s} {'anomaly %':>10s}  description")
    for name in list_datasets():
        profile = DATASET_PROFILES[name]
        print(f"{name:6s} {profile.num_features:8d} {profile.train_length:7d} "
              f"{profile.test_length:7d} {profile.anomaly_fraction:10.1%}  {profile.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "detect":
        return _run_detect(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "datasets":
        return _run_datasets()
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
