"""Command-line interface for the ImDiffusion reproduction.

Eight subcommands cover the common workflows without writing any code::

    repro detect   --dataset SMD --scale 0.1 --epochs 3
    repro compare  --dataset GCP --detectors ImDiffusion,IForest,LSTM-AD
    repro bench    --detectors ImDiffusion,LSTM-AD --datasets SMD,GCP \\
                   --samplers full,ddim --workers 1,2 --output BENCH_matrix.json
    repro train    --dataset GCP --early-stop-patience 3 --registry ./models
    repro datasets
    repro serve    --tenants 4 --samples 384 --export-scores scores.jsonl
    repro query    --from scores.jsonl --ops mean:64,quantile:64:99 \\
                   --policy "score > 0.8 and hysteresis(up=0.8, down=0.5)"
    repro adapt    --dataset DRIFT --scale 0.1 --seed 1

(``python -m repro.cli`` works identically when the package is not
installed.)  ``detect`` trains ImDiffusion on one benchmark analogue and
reports the full metric set; ``compare`` evaluates a comma-separated list of
detectors on the same dataset; ``train`` runs the training engine of
:mod:`repro.training` (early stopping, LR schedules, resumable checkpoints),
reports the loss curve and publishes the fitted model to a
:class:`~repro.serving.ModelRegistry` so ``serve`` can warm-load it;
``bench`` sweeps the detector × dataset × sampler × workers benchmark
matrix of :mod:`repro.evaluation.matrix` and writes one schema-versioned
``BENCH_matrix.json``; ``datasets`` lists the registered datasets with their
registry metadata;
``serve`` runs the multi-tenant streaming service of :mod:`repro.serving` on
simulated microservice latency streams, sharing one registry-loaded model
across all tenants (``--policy`` attaches live alert policies, ``--adapt``
attaches the online adaptation loop of :mod:`repro.adaptation`,
``--export-scores`` captures every tenant's scored stream as JSONL);
``query`` replays such a capture offline through :mod:`repro.analytics` —
window-function pipelines, sessionized episodes and declarative alert
policies — without touching a model; ``adapt`` runs the end-to-end
frozen-vs-adapted drift scenario of :mod:`repro.adaptation.scenario` on a
drifting registry dataset and reports whether online adaptation beat the
frozen model on the post-drift tail.

The generated command reference lives in ``docs/cli.md`` (rebuild it with
``python -m repro.cli_reference``).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import tempfile
from dataclasses import asdict
from typing import List, Optional

import numpy as np

from . import ImDiffusionConfig, ImDiffusionDetector
from .baselines import BASELINE_REGISTRY
from .data import list_datasets, load_dataset
from .evaluation import EvaluationSummary, evaluate_labels, format_results_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ImDiffusion reproduction: anomaly detection on benchmark analogues.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    detect = subparsers.add_parser("detect", help="run ImDiffusion on one dataset")
    _add_dataset_arguments(detect)
    detect.add_argument("--window-size", type=int, default=32)
    detect.add_argument("--num-steps", type=int, default=10)
    detect.add_argument("--epochs", type=int, default=3)
    detect.add_argument("--hidden-dim", type=int, default=24)
    detect.add_argument("--error-percentile", type=float, default=96.0)
    detect.add_argument("--no-ensemble", action="store_true",
                        help="threshold only the final denoising step")
    _add_validation_arguments(detect)
    detect.add_argument("--num-workers", type=int, default=1,
                        help="data-parallel training: gradient workers per "
                             "batch (default: 1, in-process)")
    detect.add_argument("--score-workers", type=int, default=1,
                        help="sharded inference: fan the scoring pass across "
                             "this many spawned workers (default: 1, "
                             "in-process; scores are identical for every "
                             "worker count)")
    _add_engine_arguments(detect)

    compare = subparsers.add_parser("compare", help="compare several detectors on one dataset")
    _add_dataset_arguments(compare)
    compare.add_argument("--detectors", default="ImDiffusion,IForest,LSTM-AD",
                         help="comma-separated detector names (ImDiffusion or any baseline)")
    compare.add_argument("--score-workers", type=int, default=1,
                         help="sharded inference for detectors that support "
                              "it (ImDiffusion); baselines score in-process")
    _add_validation_arguments(compare)

    bench = subparsers.add_parser(
        "bench", help="sweep the detector x dataset x sampler x workers matrix")
    bench.add_argument("--detectors", default="ImDiffusion,IForest,LSTM-AD",
                       help="comma-separated detector names "
                            "(ImDiffusion or any baseline)")
    bench.add_argument("--datasets", default="SMD,GCP",
                       help="comma-separated registered dataset names")
    bench.add_argument("--samplers", default="full",
                       help="comma-separated diffusion samplers; detectors "
                            "without the knob run the first one and skip the "
                            "rest")
    bench.add_argument("--workers", default="1",
                       help="comma-separated gradient-worker counts; "
                            "detectors without a parallel loss spec skip "
                            "counts above 1")
    bench.add_argument("--runs", type=int, default=1,
                       help="independent (fit, predict) runs per cell "
                            "(the paper protocol uses 6)")
    bench.add_argument("--scale", type=float, default=0.05,
                       help="length multiplier of every dataset")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--num-inference-steps", type=int, default=None,
                       help="denoiser calls per reverse pass for subsequence "
                            "samplers")
    bench.add_argument("--output", default="BENCH_matrix.json",
                       help="path of the JSON artifact (one document for the "
                            "whole matrix)")

    train = subparsers.add_parser(
        "train", help="train ImDiffusion with the training engine and publish it")
    _add_dataset_arguments(train)
    train.add_argument("--window-size", type=int, default=32)
    train.add_argument("--num-steps", type=int, default=10)
    train.add_argument("--epochs", type=int, default=None,
                       help="epoch budget; early stopping may use fewer "
                            "(default: 5, or the snapshot's budget with --resume)")
    train.add_argument("--hidden-dim", type=int, default=24)
    train.add_argument("--batch-size", type=int, default=8)
    train.add_argument("--learning-rate", type=float, default=1e-3)
    _add_validation_arguments(train)
    train.add_argument("--num-workers", type=int, default=None,
                       help="data-parallel training: shard each batch across "
                            "this many spawned gradient workers (default: 1, "
                            "in-process; the random stream is identical for "
                            "every worker count, so it may also be passed "
                            "when resuming a snapshot — each resume picks "
                            "its own count)")
    train.add_argument("--early-stop-patience", type=int, default=None,
                       help="stop after this many non-improving epochs "
                            "(default: always run the full budget)")
    train.add_argument("--early-stop-min-delta", type=float, default=0.0,
                       help="loss decrease that counts as an improvement")
    train.add_argument("--resume", default=None, metavar="SNAPSHOT",
                       help="continue an interrupted run from a --checkpoint "
                            "snapshot; the run's config and dataset are "
                            "restored from the snapshot and the continuation "
                            "is bit-identical to an uninterrupted run")
    train.add_argument("--lr-schedule", choices=("step", "cosine"), default=None,
                       help="learning-rate schedule (default: constant)")
    train.add_argument("--lr-warmup-epochs", type=int, default=0,
                       help="linear warmup epochs of the cosine schedule")
    train.add_argument("--lr-min", type=float, default=0.0,
                       help="floor of the cosine schedule")
    train.add_argument("--checkpoint", default=None,
                       help="write resumable trainer snapshots to this .npz path")
    train.add_argument("--checkpoint-every", type=int, default=1,
                       help="epochs between trainer snapshots")
    train.add_argument("--registry", default=None,
                       help="model registry directory the fitted model is "
                            "published to (default: a temp dir)")
    train.add_argument("--model-name", default=None,
                       help="registry name (default: <dataset>-imdiffusion)")

    subparsers.add_parser("datasets", help="list the available dataset analogues")

    serve = subparsers.add_parser(
        "serve", help="stream multiple simulated tenants through the serving layer")
    serve.add_argument("--tenants", type=int, default=4,
                       help="number of concurrent telemetry streams")
    serve.add_argument("--samples", type=int, default=384,
                       help="streamed samples per tenant")
    serve.add_argument("--services", type=int, default=6,
                       help="latency channels per tenant")
    serve.add_argument("--train-days", type=float, default=2.0,
                       help="history (days) the shared model is trained on")
    serve.add_argument("--window-size", type=int, default=32)
    serve.add_argument("--num-steps", type=int, default=8)
    serve.add_argument("--epochs", type=int, default=2)
    serve.add_argument("--hidden-dim", type=int, default=16)
    serve.add_argument("--flush-size", type=int, default=8,
                       help="windows per coalesced denoiser call")
    serve.add_argument("--flush-age", type=float, default=2.0,
                       help="seconds a window may wait before an age-based flush")
    serve.add_argument("--history", type=int, default=512,
                       help="per-tenant sliding evaluation buffer (samples)")
    serve.add_argument("--score-workers", type=int, default=1,
                       help="sharded inference: fan flushed cross-tenant "
                            "batches across this many scoring workers "
                            "(default: 1, in-process)")
    serve.add_argument("--registry", default=None,
                       help="model registry directory (default: a temp dir)")
    serve.add_argument("--model-name", default="latency-monitor",
                       help="registry name the shared model is published under")
    serve.add_argument("--seed", type=int, default=0)
    _add_engine_arguments(serve)
    serve.add_argument("--policy", action="append", default=None,
                       metavar="SPEC", dest="policies",
                       help="alert-policy expression evaluated live on every "
                            "tenant (repeatable), e.g. "
                            "'score > 0.8 and episode(threshold=0.8, "
                            "min_len=3, gap=2)'")
    serve.add_argument("--export-scores", default=None, metavar="PATH",
                       help="capture every tenant's scored stream to this "
                            "JSONL file for offline `repro query --from`")
    serve.add_argument("--adapt", default=None, metavar="POLICY",
                       dest="adapt_policy",
                       help="attach the online adaptation loop: a drift "
                            "policy expression or preset (default/sensitive/"
                            "conservative) evaluated on every tenant's served "
                            "scores; confirmed drift fine-tunes the model on "
                            "recent windows, publishes it to --registry and "
                            "hot-swaps it without restarting scoring workers")
    _add_adaptation_arguments(serve)

    adapt = subparsers.add_parser(
        "adapt", help="end-to-end drift scenario: frozen vs online-adapted serving")
    adapt.add_argument("--dataset", default="DRIFT",
                       help="registered dataset name (the DRIFT/REGIME/"
                            "SEASONAL generators are the intended inputs)")
    adapt.add_argument("--scale", type=float, default=0.1,
                       help="length multiplier of the dataset")
    adapt.add_argument("--seed", type=int, default=1)
    adapt.add_argument("--train-fraction", type=float, default=0.25,
                       help="fit on only this leading fraction of the "
                            "training series, so the stream's later drift is "
                            "genuinely out-of-distribution")
    adapt.add_argument("--tail-fraction", type=float, default=0.5,
                       help="final fraction of the stream evaluated as the "
                            "post-drift tail")
    adapt.add_argument("--policy", default="default", metavar="SPEC",
                       help="drift policy expression or preset "
                            "(default/sensitive/conservative)")
    adapt.add_argument("--score-workers", type=int, default=1,
                       help="scoring workers of both serving passes "
                            "(hot-swaps propagate through the shared-memory "
                            "generation counter)")
    adapt.add_argument("--registry", default=None,
                       help="model registry directory the adapted lineage is "
                            "published to (default: not published)")
    adapt.add_argument("--model-name", default="drift-demo",
                       help="registry lineage name of the published versions")
    adapt.add_argument("--force-rollback", action="store_true",
                       help="set the regression tolerance to -1 so every "
                            "adaptation rolls back, then verify the rolled-"
                            "back stream is bit-identical to the frozen one")
    adapt.add_argument("--export", default=None, metavar="PATH",
                       help="write the scenario result as JSON")
    _add_adaptation_arguments(adapt)

    query = subparsers.add_parser(
        "query", help="windowed analytics and alerting over a captured score stream")
    query.add_argument("--from", dest="from_path", required=True, metavar="PATH",
                       help="JSONL score capture in the 'repro.scores' v1 "
                            "schema (optional header line, then one object "
                            "per line: tenant, index, score, optional label; "
                            "see docs/architecture.md) — e.g. the output of "
                            "`repro serve --export-scores`")
    query.add_argument("--tenant", default=None,
                       help="restrict to one tenant (default: all)")
    query.add_argument("--ops", default=None, metavar="PIPELINE",
                       help="comma-separated operator pipeline, e.g. "
                            "'mean:64,std:64,quantile:64:99,ewma:0.3'")
    query.add_argument("--policy", action="append", default=None,
                       metavar="SPEC", dest="policies",
                       help="alert-policy expression to replay over the "
                            "stream (repeatable)")
    query.add_argument("--episode-gap", type=int, default=2,
                       help="quiet points merged into an anomaly episode")
    query.add_argument("--episode-min-length", type=int, default=1,
                       help="shortest episode worth reporting")
    query.add_argument("--tail", type=int, default=8, metavar="N",
                       help="rows of operator output to print per tenant")
    query.add_argument("--check", action="store_true",
                       help="also run every operator's naive full-recompute "
                            "reference and fail unless it matches the "
                            "incremental output bitwise")
    query.add_argument("--export", default=None, metavar="PATH",
                       help="re-export the (filtered) streams as JSONL")
    return parser


def _add_adaptation_arguments(parser: argparse.ArgumentParser) -> None:
    """Knobs of the online adaptation loop, shared by ``serve`` and ``adapt``.

    They map one-to-one onto :class:`repro.adaptation.AdaptationConfig`;
    the defaults are the config's defaults except where the tiny CLI
    scenarios need smaller windows.
    """
    parser.add_argument("--adapt-epochs", type=int, default=2,
                        help="fine-tune epoch budget per adaptation")
    parser.add_argument("--min-adapt-windows", type=int, default=4,
                        help="buffered fine-tune windows required before an "
                             "adaptation is attempted (fewer = skip)")
    parser.add_argument("--adapt-tolerance", type=float, default=0.05,
                        help="relative held-out error increase tolerated "
                             "before the swap is rolled back (negative = "
                             "always roll back)")
    parser.add_argument("--adapt-cooldown", type=int, default=96,
                        help="per-tenant quiet points between adaptations")
    parser.add_argument("--adapt-holdout", type=float, default=0.25,
                        help="fraction of the snapshot held out for the "
                             "paired base-vs-candidate evaluation")
    parser.add_argument("--adapt-reference-points", type=int, default=128,
                        help="training-tail scores frozen into the drift "
                             "reference")


def _adaptation_config(args: argparse.Namespace, policy: str):
    from .adaptation import AdaptationConfig

    tolerance = args.adapt_tolerance
    if getattr(args, "force_rollback", False):
        tolerance = -1.0
    return AdaptationConfig(
        policy=policy,
        min_adapt_windows=args.min_adapt_windows,
        adapt_epochs=args.adapt_epochs,
        holdout_fraction=args.adapt_holdout,
        regression_tolerance=tolerance,
        cooldown_points=args.adapt_cooldown,
        reference_points=args.adapt_reference_points,
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Inference-engine knobs shared by the scoring subcommands.

    All default to ``None`` (= keep the config/checkpoint value) so that a
    warm ``serve`` reload never silently reverts a published strided model
    to the full trajectory.  Sampler choices and help come from the
    :mod:`repro.diffusion.samplers` registry, so registered third-party
    samplers show up here automatically.
    """
    from .diffusion.samplers import SPACINGS, sampler_help, sampler_names

    parser.add_argument("--sampler", choices=sampler_names(), default=None,
                        help="reverse-diffusion trajectory: "
                             f"{sampler_help()} "
                             "(default: the config/checkpoint value)")
    parser.add_argument("--num-inference-steps", type=int, default=None,
                        help="denoiser calls per reverse pass; implies "
                             "--sampler strided (default: ~num_steps/4 when "
                             "a subsequence sampler is selected without a "
                             "count)")
    parser.add_argument("--ddim-eta", type=float, default=None,
                        help="transition-noise scale of --sampler ddim jumps "
                             "in [0, 1]: 0 = deterministic (bit-identical to "
                             "strided), 1 = DDPM-matched variance")
    parser.add_argument("--stride-spacing", choices=SPACINGS, default=None,
                        help="step spacing of subsequence trajectories: "
                             "quadratic/karras concentrate visited steps "
                             "near t=1 (default: uniform)")


def _engine_overrides(args: argparse.Namespace) -> dict:
    """The explicitly passed engine knobs, ready for ``with_overrides``."""
    overrides = {}
    if args.sampler is not None:
        overrides["sampler"] = args.sampler
        if args.sampler == "full":
            # A leftover step count would re-imply strided in __post_init__,
            # and leftover zoo knobs would fail the full sampler's
            # validation.
            overrides["num_inference_steps"] = None
            overrides["ddim_eta"] = 0.0
            overrides["stride_spacing"] = "uniform"
        elif args.sampler != "ddim":
            overrides["ddim_eta"] = 0.0
    if args.num_inference_steps is not None:
        overrides["num_inference_steps"] = args.num_inference_steps
    if args.ddim_eta is not None:
        overrides["ddim_eta"] = args.ddim_eta
    if args.stride_spacing is not None:
        overrides["stride_spacing"] = args.stride_spacing
    return overrides


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="SMD", help="dataset analogue name")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="length multiplier of the dataset analogue")
    parser.add_argument("--seed", type=int, default=0)


def _add_validation_arguments(parser: argparse.ArgumentParser) -> None:
    """Held-out validation knobs shared by detect, compare and train."""
    parser.add_argument("--validation-fraction", type=float, default=0.0,
                        help="hold this fraction of the training windows out "
                             "of gradient descent; the held-out loss is "
                             "evaluated every epoch and becomes the "
                             "early-stopping metric (default: 0, disabled)")
    parser.add_argument("--validation-split", choices=("random", "tail"),
                        default="random",
                        help="how held-out windows are chosen: 'random' "
                             "permutation or the 'tail' of the series "
                             "(production-style drift monitoring)")


def _run_detect(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    config = ImDiffusionConfig(
        window_size=args.window_size,
        num_steps=args.num_steps,
        epochs=args.epochs,
        hidden_dim=args.hidden_dim,
        error_percentile=args.error_percentile,
        ensemble=not args.no_ensemble,
        validation_fraction=args.validation_fraction,
        validation_split=args.validation_split,
        num_workers=args.num_workers,
        seed=args.seed,
        **_engine_overrides(args),
    )
    detector = ImDiffusionDetector(config)
    print(f"Training ImDiffusion on {dataset.name} "
          f"(train={dataset.train.shape}, test={dataset.test.shape}) ...")
    result = detector.fit_predict(dataset.train, dataset.test,
                                  score_workers=args.score_workers)
    metrics = evaluate_labels(result.labels, result.scores, dataset.test_labels)
    print(f"precision={metrics.precision:.3f} recall={metrics.recall:.3f} "
          f"f1={metrics.f1:.3f} r_auc_pr={metrics.r_auc_pr:.3f} add={metrics.add:.1f}")
    print(f"throughput={result.points_per_second:.1f} points/second")
    return 0


def _format_loss_curve(losses, width: int = 30) -> str:
    """Render the per-epoch loss curve as an aligned text chart."""
    if not losses:
        return "(no epochs ran)"
    low, high = min(losses), max(losses)
    span = (high - low) or 1.0
    lines = []
    for epoch, loss in enumerate(losses, start=1):
        bar = "#" * (1 + int((loss - low) / span * (width - 1)))
        lines.append(f"  epoch {epoch:3d}  loss {loss:.6f}  {bar}")
    return "\n".join(lines)


def _run_train(args: argparse.Namespace) -> int:
    from .nn.serialization import load_checkpoint_metadata
    from .serving import ModelRegistry
    from .training import Checkpoint

    if args.resume is not None:
        # Rebuild the exact run the snapshot came from: config, dataset and
        # seed all live in the snapshot's cli_run metadata; only --epochs
        # (budget extension) may be combined with --resume.  Reject any
        # other training flag instead of silently ignoring it.
        defaults = build_parser().parse_args(["train"])
        conflicting = [
            name for name in (
                "dataset", "scale", "seed", "window_size", "num_steps",
                "hidden_dim", "batch_size", "learning_rate",
                "validation_fraction", "validation_split",
                "early_stop_patience",
                "early_stop_min_delta", "lr_schedule", "lr_warmup_epochs",
                "lr_min",
            ) if getattr(args, name) != getattr(defaults, name)
        ]
        if conflicting:
            flags = ", ".join("--" + name.replace("_", "-") for name in conflicting)
            print(f"error: {flags} cannot be combined with --resume; the "
                  "run's configuration is restored from the snapshot "
                  "(only --epochs may extend the budget, and --num-workers "
                  "may change the execution — the random stream is "
                  "worker-count invariant)")
            return 2
        run_info = load_checkpoint_metadata(args.resume).get("cli_run")
        if run_info is None:
            print(f"error: {args.resume!r} was not written by `repro train` "
                  "(missing cli_run metadata); cannot rebuild the run")
            return 2
        config = ImDiffusionConfig(**run_info["config"])
        if args.epochs is not None:
            config = config.with_overrides(epochs=args.epochs)
        # Parallelism is an execution detail, not part of the trajectory: a
        # snapshot may be resumed under any worker count, and the count never
        # sticks to the snapshot — each resume chooses it afresh (default:
        # in-process), so a run checkpointed on a 16-core box never
        # oversubscribes the laptop it is resumed on.
        config = config.with_overrides(
            num_workers=args.num_workers if args.num_workers is not None else 1)
        dataset = load_dataset(run_info["dataset"], seed=run_info["seed"],
                               scale=run_info["scale"])
        checkpoint_path = args.checkpoint or args.resume
        print(f"Resuming from {args.resume} "
              f"(dataset={run_info['dataset']}, budget={config.epochs} epochs)")
    else:
        dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
        config = ImDiffusionConfig(
            window_size=args.window_size,
            num_steps=args.num_steps,
            epochs=args.epochs if args.epochs is not None else 5,
            hidden_dim=args.hidden_dim,
            batch_size=args.batch_size,
            learning_rate=args.learning_rate,
            validation_fraction=args.validation_fraction,
            validation_split=args.validation_split,
            num_workers=args.num_workers if args.num_workers is not None else 1,
            early_stopping_patience=args.early_stop_patience,
            early_stopping_min_delta=args.early_stop_min_delta,
            lr_schedule=args.lr_schedule,
            lr_warmup_epochs=args.lr_warmup_epochs,
            lr_min=args.lr_min,
            seed=args.seed,
        )
        checkpoint_path = args.checkpoint

    if args.resume is not None:
        cli_run = {"config": asdict(config), "dataset": run_info["dataset"],
                   "scale": run_info["scale"], "seed": run_info["seed"]}
    else:
        cli_run = {"config": asdict(config), "dataset": args.dataset,
                   "scale": args.scale, "seed": args.seed}
    callbacks = []
    if checkpoint_path is not None:
        callbacks.append(Checkpoint(checkpoint_path, every=args.checkpoint_every,
                                    extra_metadata={"cli_run": cli_run}))

    detector = ImDiffusionDetector(config)
    print(f"Training ImDiffusion on {dataset.name} "
          f"(train={dataset.train.shape}, budget={config.epochs} epochs) ...")
    if config.num_workers > 1:
        print(f"Data-parallel: {config.num_workers} spawned gradient workers "
              "per batch")
    detector.fit(dataset.train, callbacks=callbacks, resume_from=args.resume)
    result = detector.last_train_result

    print(_format_loss_curve(result.epoch_losses))
    if result.val_losses:
        print("Held-out validation loss "
              f"(fraction {config.validation_fraction:.2f}):")
        print(_format_loss_curve(result.val_losses))
    if result.stopped_early:
        print(f"Converged after {result.epochs_run}/{config.epochs} epochs "
              f"({result.stop_reason})")
    else:
        print(f"Ran the full budget of {result.epochs_run} epochs")
    print(f"Training wall-clock: {result.wall_seconds:.2f}s")
    if checkpoint_path is not None:
        print(f"Resumable trainer snapshot: {checkpoint_path}")
        print(f"Continue with: repro train --resume {checkpoint_path}")

    registry_dir = args.registry or tempfile.mkdtemp(prefix="repro-registry-")
    registry = ModelRegistry(registry_dir)
    model_name = args.model_name or f"{cli_run['dataset']}-imdiffusion"
    registry.save(model_name, detector, metadata={
        "dataset": dataset.name,
        "train_epochs": result.epochs_run,
        "train_seconds": result.wall_seconds,
        "final_loss": result.final_loss,
        "final_val_loss": result.final_val_loss,
    })
    print(f"Published {registry.record(model_name).describe()}")
    print(f"Registry: {registry.root}")
    print(f"Warm-load it with: repro serve --registry {registry.root} "
          f"--model-name {model_name} --services {dataset.train.shape[1]}")
    return 0


def _make_detector(name: str, seed: int, validation_fraction: float = 0.0,
                   validation_split: str = "random"):
    if name == "ImDiffusion":
        return ImDiffusionDetector(ImDiffusionConfig(
            window_size=32, num_steps=10, epochs=3, hidden_dim=24, num_blocks=1,
            max_train_windows=48, validation_fraction=validation_fraction,
            validation_split=validation_split, seed=seed))
    if name in BASELINE_REGISTRY:
        factory = BASELINE_REGISTRY[name]
        kwargs = {"seed": seed}
        # Trainable baselines take the validation knobs; IForest does not.
        if "validation_fraction" in inspect.signature(factory).parameters:
            kwargs.update(validation_fraction=validation_fraction,
                          validation_split=validation_split)
        return factory(**kwargs)
    raise KeyError(
        f"unknown detector {name!r}; available: ImDiffusion, {', '.join(BASELINE_REGISTRY)}"
    )


def _run_compare(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    names = [name.strip() for name in args.detectors.split(",") if name.strip()]
    summaries: List[EvaluationSummary] = []
    for name in names:
        detector = _make_detector(name, args.seed,
                                  validation_fraction=args.validation_fraction,
                                  validation_split=args.validation_split)
        print(f"Running {name} on {dataset.name} ...")
        if (args.score_workers > 1 and "score_workers"
                in inspect.signature(detector.fit_predict).parameters):
            result = detector.fit_predict(dataset.train, dataset.test,
                                          score_workers=args.score_workers)
        else:
            result = detector.fit_predict(dataset.train, dataset.test)
        metrics = evaluate_labels(result.labels, result.scores, dataset.test_labels)
        summaries.append(EvaluationSummary(detector=name, dataset=dataset.name, runs=[metrics]))
    print()
    print(format_results_table(summaries))
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from .evaluation import format_bench_matrix, run_bench_matrix, write_bench_matrix

    def split(text: str) -> List[str]:
        return [item.strip() for item in text.split(",") if item.strip()]

    result = run_bench_matrix(
        split(args.detectors), split(args.datasets),
        samplers=split(args.samplers),
        workers=[int(count) for count in split(args.workers)],
        num_runs=args.runs, scale=args.scale, seed=args.seed,
        num_inference_steps=args.num_inference_steps,
        progress=print)
    write_bench_matrix(result, args.output)
    print()
    print(format_bench_matrix(result))
    ran = result["num_cells"] - result["num_skipped"]
    print()
    print(f"{ran} cells run, {result['num_skipped']} skipped "
          f"-> {args.output} (schema v{result['schema_version']})")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from .data.production import MicroserviceLatencySimulator, ProductionConfig
    from .serving import DetectorService, ModelRegistry, ServingConfig

    # --- Simulate one latency stream per tenant (log scale, as in Sec. 6). --
    test_days = max(args.samples / 96.0, 0.25)
    traces = {}
    for i in range(args.tenants):
        sim = MicroserviceLatencySimulator(ProductionConfig(
            num_services=args.services, train_days=args.train_days,
            test_days=test_days, seed=args.seed + i))
        raw = sim.generate()
        traces[f"tenant-{i}"] = (np.log(raw.train), np.log(raw.test),
                                 raw.test_labels)

    # --- Train (or reuse) the shared model and publish it in the registry. --
    registry_dir = args.registry or tempfile.mkdtemp(prefix="repro-registry-")
    registry = ModelRegistry(registry_dir)
    if args.model_name in registry:
        record = registry.record(args.model_name)
        if record.num_features != args.services:
            print(f"error: registry model {args.model_name!r} expects "
                  f"{record.num_features} services per tenant but --services "
                  f"is {args.services}; delete the model or match the shape")
            return 2
        print(f"Loading warm model {args.model_name!r} from {registry.root} "
              f"(model flags are taken from the checkpoint)")
    else:
        config = ImDiffusionConfig(
            window_size=args.window_size, num_steps=args.num_steps,
            epochs=args.epochs, hidden_dim=args.hidden_dim, num_blocks=1,
            num_masked_windows=4, num_unmasked_windows=4,
            max_train_windows=48, train_stride=8,
            deterministic_inference=True, collect="x0",
            error_percentile=96.0, seed=args.seed,
        )
        detector = ImDiffusionDetector(config)
        train = traces["tenant-0"][0]
        print(f"Training shared model on {train.shape[0]} samples "
              f"({train.shape[1]} services) ...")
        detector.fit(train)
        registry.save(args.model_name, detector)
        print(f"Published {registry.record(args.model_name).describe()}")
    detector = registry.load(args.model_name)
    # The sampler is a pure inference knob: it can differ from whatever the
    # checkpoint was trained/published with, so apply it after loading — but
    # only when explicitly passed, keeping the checkpoint's engine otherwise.
    overrides = _engine_overrides(args)
    if overrides:
        detector.config = detector.config.with_overrides(**overrides)

    # --- Stream all tenants concurrently through one service. ---------------
    service = DetectorService(detector, ServingConfig(
        flush_size=args.flush_size, flush_age=args.flush_age,
        history=args.history, alert_policies=args.policies or (),
        score_workers=args.score_workers))
    for tenant in traces:
        service.register_tenant(tenant)

    # --- Optional online adaptation loop. -----------------------------------
    controller = None
    if args.adapt_policy:
        from .adaptation import AdaptationController, training_tail_reference

        reference = training_tail_reference(
            detector, traces["tenant-0"][0],
            points=args.adapt_reference_points)
        controller = AdaptationController(
            service, reference,
            config=_adaptation_config(args, args.adapt_policy),
            registry=registry, model_name=args.model_name)
        print(f"Online adaptation on ({controller.policy.source}), "
              f"publishing to lineage {args.model_name!r}")

    if args.score_workers > 1:
        print(f"Sharded inference: {args.score_workers} scoring workers")
    print(f"Streaming {args.tenants} tenants x {args.samples} samples ...")
    alarms = []
    with service:
        for step in range(args.samples):
            for tenant, (_, test, _) in traces.items():
                if step < test.shape[0]:
                    alarms.extend(service.ingest(tenant, test[step]))
            alarms.extend(service.pump())
            if controller is not None:
                controller.poll()
        alarms.extend(service.drain())
        if controller is not None:
            controller.poll()

    # --- Report accuracy per tenant and service telemetry. ------------------
    print()
    print(f"{'tenant':10s} {'alarms':>7s} {'precision':>10s} {'recall':>7s} {'f1':>6s}")
    for tenant, (_, test, labels) in traces.items():
        view = service.tenant_view(tenant)
        end = min(view.end, labels.shape[0])
        if end <= view.start:
            continue
        truth = labels[view.start:end]
        metrics = evaluate_labels(view.labels[:end - view.start],
                                  view.scores[:end - view.start], truth)
        count = sum(1 for a in alarms if a.tenant == tenant)
        print(f"{tenant:10s} {count:7d} {metrics.precision:10.3f} "
              f"{metrics.recall:7.3f} {metrics.f1:6.3f}")
    print()
    print(service.metrics.format_table())

    # --- Alert-policy edges and the JSONL score capture. --------------------
    events = service.drain_alert_events()
    if args.policies:
        print()
        print(f"Alert events ({len(events)}):")
        for event in events:
            print(f"  {event.describe()}")
    if controller is not None:
        print()
        print(f"Drift events ({len(controller.drift_events)}):")
        for drift_event in controller.drift_events:
            print(f"  {drift_event.describe()}")
        print(f"Adaptations ({len(controller.history)}):")
        for record in controller.history:
            print(f"  {record.describe()}")
        if controller.active_version is not None:
            print(f"Serving version: "
                  f"{ModelRegistry.version_name(args.model_name, controller.active_version)}")
    if args.export_scores:
        from .analytics import export_jsonl

        rows = export_jsonl(args.export_scores, service.analytics.store)
        print()
        print(f"Captured {rows} scored points to {args.export_scores}")
        print(f"Replay offline with: repro query --from {args.export_scores}")
    return 0


def _run_query(args: argparse.Namespace) -> int:
    from .analytics import (
        AnalyticsEngine,
        apply_pipeline,
        export_jsonl,
        load_jsonl,
        parse_pipeline,
    )

    streams = load_jsonl(args.from_path)
    if args.tenant is not None:
        if args.tenant not in streams:
            print(f"error: tenant {args.tenant!r} not in {args.from_path}; "
                  f"available: {', '.join(sorted(streams))}")
            return 2
        streams = {args.tenant: streams[args.tenant]}
    if not streams:
        print(f"error: no streams in {args.from_path}")
        return 2

    # One engine replays every stream: store + episodes + policies advance
    # exactly as they would have on the live serving path.
    history = max(stream.end for stream in streams.values())
    engine = AnalyticsEngine(
        history=max(history, 1), policies=args.policies or (),
        episode_gap=args.episode_gap,
        episode_min_length=args.episode_min_length)
    for tenant in sorted(streams):
        stream = streams[tenant]
        engine.register_tenant(tenant)
        engine.store.skip_to(tenant, stream.start)
        engine.observe_block(tenant, stream.start, stream.scores,
                             stream.label_array())

    operators = parse_pipeline(args.ops) if args.ops else []
    mismatches = 0
    for tenant in sorted(streams):
        stream = streams[tenant]
        print(f"tenant {tenant}: {stream.end - stream.start} points "
              f"[{stream.start}, {stream.end}), "
              f"{int(stream.label_array().sum())} anomalous")

        episodes = engine.episodes(tenant)
        if episodes:
            print(f"  episodes ({len(episodes)}):")
            for episode in episodes:
                print(f"    {episode.describe()}")

        if operators:
            columns = apply_pipeline(operators, stream.scores,
                                     engine="incremental")
            if args.check:
                reference = apply_pipeline(operators, stream.scores,
                                           engine="reference")
                for name, values in columns.items():
                    agree = np.array_equal(values, reference[name],
                                           equal_nan=True)
                    status = "bitwise-equal" if agree else "MISMATCH"
                    print(f"  check {name}: incremental vs reference "
                          f"{status}")
                    mismatches += 0 if agree else 1
            names = list(columns)
            tail = min(args.tail, stream.end - stream.start)
            header = "  " + " ".join(f"{name:>16s}" for name in ["index", "score"] + names)
            print(header)
            for row in range(stream.end - tail, stream.end):
                offset = row - stream.start
                cells = [f"{row:16d}", f"{stream.scores[offset]:16.6f}"]
                cells += [f"{columns[name][offset]:16.6f}" for name in names]
                print("  " + " ".join(cells))

    events = engine.drain_events()
    if args.policies:
        print()
        print(f"Alert events ({len(events)}):")
        for event in events:
            print(f"  {event.describe()}")
        fired = {}
        for event in events:
            if event.kind == "fired":
                fired[event.policy] = fired.get(event.policy, 0) + 1
        for policy, count in sorted(fired.items()):
            print(f"  {policy}: fired {count}x")

    if args.export:
        rows = export_jsonl(args.export, streams)
        print(f"Exported {rows} points to {args.export}")

    if mismatches:
        print(f"error: {mismatches} operator column(s) diverged from the "
              "reference engine")
        return 1
    return 0


def _run_adapt(args: argparse.Namespace) -> int:
    from .adaptation import run_drift_scenario
    from .serving import ModelRegistry

    registry = ModelRegistry(args.registry) if args.registry else None
    config = _adaptation_config(args, args.policy)
    print(f"Drift scenario: {args.dataset} scale={args.scale} "
          f"seed={args.seed}, policy ({config.policy})"
          + (", forced rollback" if args.force_rollback else ""))
    result = run_drift_scenario(
        dataset=args.dataset, scale=args.scale, seed=args.seed,
        adaptation=config, score_workers=args.score_workers,
        registry=registry, model_name=args.model_name,
        train_fraction=args.train_fraction,
        tail_fraction=args.tail_fraction)
    print()
    for line in result.summary_lines():
        print(line)
    if registry is not None:
        versions = registry.versions(args.model_name)
        print(f"  registry lineage {args.model_name!r}: "
              f"{[ModelRegistry.version_name(args.model_name, v) for v in versions]}")
    if args.force_rollback:
        status = "OK" if result.bit_identical else "FAILED"
        print(f"  rollback bit-identity (rolled-back stream == frozen "
              f"stream): {status}")
    if args.export:
        import json

        document = {
            "dataset": result.dataset,
            "post_drift_start": result.post_drift_start,
            "frozen": result.frozen,
            "adapted": result.adapted,
            "bit_identical": result.bit_identical,
            "records": [asdict(record) for record in result.records],
            "events": [asdict(event) for event in result.events],
            "metrics": result.metrics,
        }
        with open(args.export, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print(f"  wrote {args.export}")
    if args.force_rollback and not result.bit_identical:
        return 1
    return 0


def _run_datasets() -> int:
    from .data import DATASET_REGISTRY

    print(f"{'name':8s} {'features':>8s} {'train':>7s} {'test':>7s} "
          f"{'anomaly %':>10s} {'tags':16s}  description")
    for entry in DATASET_REGISTRY.entries():
        print(f"{entry.name:8s} {entry.num_features:8d} {entry.train_length:7d} "
              f"{entry.test_length:7d} {entry.anomaly_fraction:10.1%} "
              f"{','.join(entry.tags):16s}  {entry.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "detect":
        return _run_detect(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "train":
        return _run_train(args)
    if args.command == "datasets":
        return _run_datasets()
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "query":
        return _run_query(args)
    if args.command == "adapt":
        return _run_adapt(args)
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
