"""Generate the CLI command reference (``docs/cli.md``) from the parser.

The reference is *derived*, never hand-written: :func:`render_cli_reference`
walks the live :func:`repro.cli.build_parser` tree — every subcommand, every
option, its metavar, default and help — and renders deterministic markdown.
A tier-1 test asserts ``docs/cli.md`` matches this function's output, so the
docs cannot drift from the code; regenerate with::

    PYTHONPATH=src python -m repro.cli_reference docs/cli.md
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .cli import build_parser

__all__ = ["render_cli_reference"]

_HEADER = """\
# `repro` command reference

Every subcommand of the `repro` CLI (also reachable as
`python -m repro.cli`).  This page is **generated** from the argparse tree
by `python -m repro.cli_reference docs/cli.md` and kept in sync by a test —
edit `src/repro/cli.py`, not this file.
"""


def _option_invocation(action: argparse.Action) -> str:
    flags = ", ".join(f"`{s}`" for s in action.option_strings)
    if not flags:  # positional
        return f"`{action.dest}`"
    if action.metavar:
        return f"{flags} `{action.metavar}`"
    if isinstance(action, argparse._StoreAction):
        return f"{flags} `{action.dest.upper()}`"
    return flags


def _default_text(action: argparse.Action) -> str:
    if isinstance(action, (argparse._StoreTrueAction, argparse._StoreFalseAction)):
        return ""
    if action.default is None or action.default is argparse.SUPPRESS:
        return ""
    return f" (default: `{action.default}`)"


def _help_text(action: argparse.Action) -> str:
    text = (action.help or "").strip()
    if text and not text.endswith("."):
        text += "."
    return text


def _render_subcommand(name: str, sub: argparse.ArgumentParser) -> List[str]:
    lines = [f"## `repro {name}`", ""]
    description = (sub.description or "").strip()
    if description:
        lines += [description if description.endswith(".") else description + ".",
                  ""]
    options = [a for a in sub._actions
               if not isinstance(a, argparse._HelpAction)]
    if not options:
        lines += ["No options.", ""]
        return lines
    lines += ["| option | description |", "| --- | --- |"]
    for action in options:
        help_text = _help_text(action)
        if action.choices is not None:
            choices = ", ".join(f"`{c}`" for c in action.choices)
            help_text = (help_text + f" Choices: {choices}.").strip()
        cell = (help_text + _default_text(action)).replace("|", "\\|").strip()
        lines.append(f"| {_option_invocation(action)} | {cell} |")
    lines.append("")
    return lines


def render_cli_reference() -> str:
    """The full markdown reference of the current parser tree."""
    parser = build_parser()
    subactions = [a for a in parser._actions
                  if isinstance(a, argparse._SubParsersAction)]
    lines = [_HEADER]
    for subparsers in subactions:
        help_by_name = {c.dest: c.help for c in subparsers._choices_actions}
        lines += ["| subcommand | purpose |", "| --- | --- |"]
        for name in subparsers.choices:
            lines.append(f"| [`repro {name}`](#repro-{name}) | "
                         f"{help_by_name.get(name, '')} |")
        lines.append("")
        for name, sub in subparsers.choices.items():
            if sub.description is None:
                sub.description = help_by_name.get(name)
            lines += _render_subcommand(name, sub)
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    text = render_cli_reference()
    if argv:
        with open(argv[0], "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {argv[0]} ({len(text.splitlines())} lines)")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
