"""Core ImDiffusion detector: configuration, ensemble inference and thresholding."""

from .config import ImDiffusionConfig
from .detector import DetectionResult, ImDiffusionDetector
from .ensemble import EnsembleDecision, EnsembleVoter, select_voting_steps
from .modes import build_masks, recommended_stride
from .thresholding import apply_threshold, percentile_threshold, pot_threshold

__all__ = [
    "ImDiffusionConfig",
    "DetectionResult",
    "ImDiffusionDetector",
    "EnsembleDecision",
    "EnsembleVoter",
    "select_voting_steps",
    "build_masks",
    "recommended_stride",
    "apply_threshold",
    "percentile_threshold",
    "pot_threshold",
]
