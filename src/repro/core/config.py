"""Configuration of the ImDiffusion detector.

The defaults mirror the paper's Table 1 where feasible; sizes that would make
CPU-only training impractical (window size, hidden width, number of diffusion
steps) are reduced, and every value is overridable.  DESIGN.md documents the
mapping between the paper's values and the defaults used here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..diffusion.samplers import SPACINGS, sampler_names
from ..training.loader import VALIDATION_SPLITS

__all__ = ["ImDiffusionConfig"]

MODELING_MODES = ("imputation", "forecasting", "reconstruction")
MASKING_STRATEGIES = ("grating", "random")
CONDITIONING_MODES = ("unconditional", "conditional")
LR_SCHEDULES = (None, "step", "cosine")


@dataclass
class ImDiffusionConfig:
    """Hyper-parameters of :class:`repro.core.ImDiffusionDetector`.

    Attributes mirror the paper's terminology:

    * ``window_size`` — detection window size (paper: 100).
    * ``num_masked_windows`` / ``num_unmasked_windows`` — grating chunks (5/5).
    * ``num_steps`` — total denoising steps ``T`` (paper: 50).
    * ``hidden_dim`` / ``num_blocks`` — ImTransformer width / residual blocks
      (paper: 128 / 4).
    * ``error_percentile`` — the upper percentile of final-step imputed errors
      used as the base threshold ``tau_T`` of Eq. (12).
    * ``vote_fraction`` — fraction of ensemble votes ``xi`` required to flag a
      timestamp as anomalous.
    * ``vote_step_stride`` / ``vote_last_fraction`` — the paper samples every
      3rd of the last 30 denoising steps (of 50) for voting; here expressed as
      a stride and a trailing fraction so it scales with ``num_steps``.
    * ``mode`` — ``imputation`` (ImDiffusion), ``forecasting`` or
      ``reconstruction`` (the modelling-mode ablations of Sec. 5.3.1).
    * ``sampler`` / ``num_inference_steps`` — the inference engine's
      speed/accuracy knob: ``"full"`` walks every reverse step (the exact
      paper algorithm); the subsequence samplers (``"strided"``, ``"ddim"``,
      ``"pndm"``) visit ``num_inference_steps`` steps, cutting denoiser
      calls by ``~num_steps / num_inference_steps``.  Samplers are resolved
      against the :mod:`repro.diffusion.samplers` registry, so registered
      third-party samplers are valid here too.  Setting
      ``num_inference_steps`` with the default ``sampler="full"`` implies
      ``sampler="strided"``; when only a subsequence sampler is named, its
      trajectory defaults to roughly a quarter of the steps (a ~4x scoring
      speedup).
    * ``ddim_eta`` — transition-noise scale of the ``"ddim"`` sampler's
      jumps: 0 (default) is the deterministic rule (bit-identical to
      ``"strided"``), 1 matches the DDPM posterior variance.
    * ``stride_spacing`` — step spacing of subsequence trajectories:
      ``"uniform"`` (default), ``"quadratic"`` or ``"karras"`` (both
      concentrate visited steps near ``t = 1``).
    * ``validation_fraction`` — hold this fraction of the training windows
      out of gradient descent; the held-out denoising loss is evaluated
      grad-free at every epoch end (with a dedicated generator, so the
      training random stream is untouched) and becomes the metric early
      stopping and best snapshots monitor.  0 disables validation.
    * ``validation_split`` — how the held-out windows are chosen:
      ``"random"`` draws a deterministic permutation, ``"tail"`` holds out
      the last windows of the series (closest to production drift
      monitoring, and consumes no randomness).
    * ``validation_antithetic`` — variance-reduced validation: evaluate the
      held-out denoising loss at each drawn noise *and its negation* and
      average the pair (antithetic variates on top of the common-random-
      numbers reseed), so early stopping triggers on signal rather than
      sampler variance.  Costs a second grad-free forward pass per
      validation batch; off by default to preserve the historical loss
      stream bit for bit.
    * ``num_workers`` — data-parallel training: shard every batch across
      this many spawned gradient workers whose averaged gradients feed the
      single optimizer step (:class:`repro.training.ParallelTrainer`).  1
      (the default) trains in-process; the random stream is identical for
      every worker count, and parameters agree up to float summation order.
    * ``early_stopping_patience`` / ``early_stopping_min_delta`` — training
      engine: stop after this many non-improving epochs (on the held-out
      loss when ``validation_fraction > 0``, the train loss otherwise) and
      restore the best weights; ``None`` always runs ``epochs`` epochs.
    * ``lr_schedule`` — ``None`` keeps the learning rate constant; ``"step"``
      decays by ``lr_gamma`` every ``lr_step_size`` epochs; ``"cosine"``
      anneals from ``learning_rate`` down to ``lr_min`` with
      ``lr_warmup_epochs`` of linear warmup.
    """

    # Windowing / masking
    window_size: int = 64
    stride: Optional[int] = None
    mode: str = "imputation"
    masking: str = "grating"
    num_masked_windows: int = 5
    num_unmasked_windows: int = 5
    random_mask_ratio: float = 0.5

    # Diffusion
    num_steps: int = 20
    schedule: str = "quadratic"
    beta_start: float = 1e-4
    beta_end: float = 0.25
    conditioning: str = "unconditional"

    # Denoiser network
    hidden_dim: int = 32
    num_blocks: int = 2
    num_heads: int = 4
    include_temporal: bool = True
    include_spatial: bool = True

    # Training
    epochs: int = 5
    batch_size: int = 8
    learning_rate: float = 1e-3
    grad_clip: float = 5.0
    max_train_windows: Optional[int] = 64
    train_stride: Optional[int] = None
    validation_fraction: float = 0.0
    validation_split: str = "random"
    validation_antithetic: bool = False
    num_workers: int = 1
    early_stopping_patience: Optional[int] = None
    early_stopping_min_delta: float = 0.0
    lr_schedule: Optional[str] = None
    lr_warmup_epochs: int = 0
    lr_step_size: int = 10
    lr_gamma: float = 0.5
    lr_min: float = 0.0

    # Inference engine
    sampler: str = "full"
    num_inference_steps: Optional[int] = None
    ddim_eta: float = 0.0
    stride_spacing: str = "uniform"

    # Inference / ensembling
    ensemble: bool = True
    collect: str = "sample"
    error_percentile: float = 97.5
    vote_fraction: float = 0.5
    vote_step_stride: int = 3
    vote_last_fraction: float = 0.6
    deterministic_inference: bool = False

    # Misc
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in MODELING_MODES:
            raise ValueError(f"mode must be one of {MODELING_MODES}")
        if self.masking not in MASKING_STRATEGIES:
            raise ValueError(f"masking must be one of {MASKING_STRATEGIES}")
        if self.conditioning not in CONDITIONING_MODES:
            raise ValueError(f"conditioning must be one of {CONDITIONING_MODES}")
        if self.window_size < 4:
            raise ValueError("window_size must be at least 4")
        if self.num_steps < 2:
            raise ValueError("num_steps must be at least 2")
        if not 0.0 < self.vote_fraction <= 1.0:
            raise ValueError("vote_fraction must be in (0, 1]")
        if not 0.0 < self.error_percentile < 100.0:
            raise ValueError("error_percentile must be in (0, 100)")
        if self.sampler not in sampler_names():
            raise ValueError(f"sampler must be one of {sampler_names()}")
        if not 0.0 <= self.ddim_eta <= 1.0:
            raise ValueError("ddim_eta must lie in [0, 1]")
        if self.ddim_eta > 0.0 and self.sampler != "ddim":
            raise ValueError("ddim_eta > 0 requires sampler='ddim'")
        if self.stride_spacing not in SPACINGS:
            raise ValueError(f"stride_spacing must be one of {SPACINGS}")
        if self.lr_schedule not in LR_SCHEDULES:
            raise ValueError(f"lr_schedule must be one of {LR_SCHEDULES}")
        if self.early_stopping_patience is not None and self.early_stopping_patience < 1:
            raise ValueError("early_stopping_patience must be at least 1")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must lie in [0, 1)")
        if self.validation_split not in VALIDATION_SPLITS:
            raise ValueError(f"validation_split must be one of {VALIDATION_SPLITS}")
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if not 0 <= self.lr_warmup_epochs < max(self.epochs, 1):
            raise ValueError("lr_warmup_epochs must lie in [0, epochs)")
        if self.num_inference_steps is not None:
            if not 2 <= self.num_inference_steps <= self.num_steps:
                raise ValueError(
                    "num_inference_steps must lie in [2, num_steps]"
                )
            # Asking for fewer inference steps only makes sense with a
            # subsequence sampler; setting the knob implies the strided one
            # rather than being silently ignored by the full trajectory (an
            # explicitly chosen zoo sampler is kept as-is).
            if self.sampler == "full":
                self.sampler = "strided"
        if self.stride_spacing != "uniform" and self.sampler == "full":
            raise ValueError(
                "stride_spacing applies to subsequence samplers; "
                "pick one of "
                + str(tuple(n for n in sampler_names() if n != "full")))
        if self.stride is None:
            self.stride = self.window_size

    def with_overrides(self, **kwargs) -> "ImDiffusionConfig":
        """Return a copy with the given fields replaced (ablation helper)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Inference engine
    # ------------------------------------------------------------------
    def build_sampler(self):
        """The :class:`~repro.diffusion.ReverseSampler` this config selects."""
        from ..diffusion.samplers import make_sampler

        if self.sampler == "full":
            return make_sampler("full")
        steps = self.num_inference_steps
        if steps is None:
            # A subsequence sampler named without a step budget defaults to
            # roughly a quarter of the trajectory (a ~4x scoring speedup).
            steps = max(2, int(np.ceil(self.num_steps / 4)))
        return make_sampler(
            self.sampler, num_inference_steps=steps,
            spacing=self.stride_spacing if self.stride_spacing != "uniform" else None,
            eta=self.ddim_eta if self.sampler == "ddim" else None)

    @property
    def inference_steps(self) -> int:
        """Denoiser calls per reverse pass (= collected intermediate steps).

        Equals ``num_steps`` for the full sampler and the strided
        trajectory's length otherwise; every scoring consumer (detector,
        serving scorer, ensemble voter) sizes its per-step structures with
        this value, not with ``num_steps``.
        """
        return self.build_sampler().num_inference_steps(self.num_steps)
