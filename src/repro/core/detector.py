"""The ImDiffusion anomaly detector (the paper's primary contribution).

:class:`ImDiffusionDetector` glues together every piece of the framework:

1. the data is scaled and cut into detection windows,
2. observation masks are created according to the configured modelling mode
   (grating imputation by default),
3. an :class:`~repro.models.ImTransformer` denoiser is trained with the
   unconditional imputed-diffusion objective (Eq. 11),
4. at inference time the reverse diffusion process imputes every masked
   position, the per-step imputation errors are merged back into per-timestamp
   error series, and
5. the ensemble voting mechanism (Algorithm 1 / Eq. 12) turns the step-wise
   errors into final anomaly labels.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.preprocessing import StandardScaler
from ..data.windows import sliding_windows
from ..diffusion import GaussianDiffusion, ImputedDiffusion, make_schedule
from ..inference import (
    MultiprocessScoreReducer,
    ScoreSpec,
    ScoreTask,
    SerialScoreReducer,
)
from ..models import ImTransformer
from ..nn import Adam, CosineLR, StepLR, no_grad
from ..nn.serialization import load_checkpoint
from ..training import (
    EarlyStopping,
    LRSchedule,
    ParallelLossSpec,
    ParallelTrainer,
    WindowLoader,
    antithetic_loss,
    crn_validation_rng,
    split_windows,
)
from .config import ImDiffusionConfig
from .ensemble import EnsembleDecision, EnsembleVoter
from .modes import build_masks, recommended_stride

__all__ = ["DetectionResult", "ImDiffusionDetector", "ImputationLossSpec",
           "ImputationScoreSpec"]


class ImputationLossSpec(ParallelLossSpec):
    """The imputed-diffusion training objective, factored for data parallelism.

    ``draw`` makes exactly the random draws of the pre-engine training
    closure — policy indices, diffusion timesteps, forward noise, in that
    order on the detector's generator — so the training random stream is
    identical for every worker count; ``compute`` is the pure denoising loss
    of Eq. (11) over one shard.  Shards are weighted by their masked-region
    element count, matching the loss's normalisation, so the averaged
    worker gradients reproduce the full-batch gradient exactly.

    The spec is spawn-safe: it ships the (picklable) imputer stack and the
    pre-stacked mask policies to each worker once at pool start-up.
    """

    def __init__(self, imputer: ImputedDiffusion, masks_arr: np.ndarray) -> None:
        self.imputer = imputer
        self.masks_arr = np.asarray(masks_arr, dtype=np.float64)

    def build(self):
        return self.imputer.model.parameters()

    def draw(self, batch, rng, state):
        policies = rng.integers(0, self.masks_arr.shape[0],
                                size=batch.data.shape[0])
        steps, noise = self.imputer.draw_training_noise(batch.data, rng)
        return (policies, steps, noise)

    def compute(self, batch, payload, state):
        policies, steps, noise = payload
        return self.imputer.training_loss(batch.data, self.masks_arr[policies],
                                          policies, steps=steps, noise=noise)

    def weight(self, batch, payload) -> float:
        policies = payload[0]
        return float((1.0 - self.masks_arr[policies]).sum())


class ImputationScoreSpec(ScoreSpec):
    """The scoring pass of a fitted detector, factored for sharded inference.

    ``plan`` decomposes one batched scoring call into (mask policy, window
    chunk) tasks in exactly the serial loop's order — policy-major, chunked
    by ``config.batch_size``; ``draw`` pre-draws each task's reverse-diffusion
    noise on the parent generator in that same order (so the random stream is
    identical to the serial path for *every* worker count); ``compute`` is
    the pure, rng-free imputation-error kernel of one task, delegating to
    :meth:`ImDiffusionDetector._impute_window_errors` so the error formula
    cannot drift between the serial and sharded paths.

    The spec is spawn-safe: it ships the (picklable) fitted detector to each
    worker once at pool start-up; per-task messages carry only windows and
    noise, while parameters travel through the shared-memory block.
    """

    def __init__(self, detector: "ImDiffusionDetector") -> None:
        detector._check_fitted()
        self.detector = detector
        config = detector.config
        self.masks = build_masks(config, config.window_size,
                                 detector.num_features)
        self.batch_size = int(config.batch_size)
        self.sampler = config.build_sampler()
        self.deterministic = bool(config.deterministic_inference)

    def parent_parameters(self):
        return self.detector._imputer.model.parameters()

    def build(self):
        model = self.detector._imputer.model
        model.eval()  # workers are inference-only replicas
        return model.parameters()

    def plan(self, num_windows: int):
        return [ScoreTask(policy_index=policy_index, start=start,
                          stop=min(start + self.batch_size, num_windows))
                for policy_index in range(len(self.masks))
                for start in range(0, num_windows, self.batch_size)]

    def draw(self, windows, task: ScoreTask, rng):
        return self.detector._imputer.draw_impute_noise(
            windows[task.start:task.stop], rng,
            sampler=self.sampler, deterministic=self.deterministic)

    def compute(self, windows, task: ScoreTask, payload):
        return {
            progress: squared
            for progress, squared in self.detector._impute_window_errors(
                windows, self.masks[task.policy_index], task.policy_index,
                rng=None, sampler=self.sampler, noise=payload)
        }


@dataclass
class DetectionResult:
    """Outcome of :meth:`ImDiffusionDetector.predict` with full diagnostics."""

    labels: np.ndarray
    scores: np.ndarray
    step_errors: Dict[int, np.ndarray]
    decision: Optional[EnsembleDecision] = None
    inference_seconds: float = 0.0

    @property
    def points_per_second(self) -> float:
        """Inference throughput (timestamps scored per wall-clock second)."""
        if self.inference_seconds <= 0:
            return float("inf")
        return float(self.labels.shape[0] / self.inference_seconds)


class ImDiffusionDetector:
    """Imputed-diffusion anomaly detector for multivariate time series.

    Examples
    --------
    >>> from repro import ImDiffusionConfig, ImDiffusionDetector
    >>> from repro.data import load_dataset
    >>> dataset = load_dataset("SMD", scale=0.1)
    >>> config = ImDiffusionConfig(window_size=32, num_steps=10, epochs=2)
    >>> detector = ImDiffusionDetector(config)
    >>> detector.fit(dataset.train)                            # doctest: +SKIP
    >>> result = detector.predict(dataset.test)                # doctest: +SKIP
    """

    def __init__(self, config: Optional[ImDiffusionConfig] = None) -> None:
        self.config = config or ImDiffusionConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._scaler = StandardScaler()
        self._imputer: Optional[ImputedDiffusion] = None
        self._num_features: Optional[int] = None
        self.train_losses: List[float] = []
        self.val_losses: List[float] = []  # held-out curve (validation_fraction > 0)
        self.last_train_result = None  # TrainResult of the most recent fit()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, train: np.ndarray, callbacks: Sequence = (),
            resume_from=None) -> "ImDiffusionDetector":
        """Train the denoiser on a (mostly normal) training series.

        The epoch/batch loop runs through the shared
        :class:`repro.training.Trainer`; with the default configuration
        (no early stopping, no LR schedule, no validation split) it consumes
        the random stream in exactly the order of the pre-engine hand-rolled
        loop and therefore produces bit-identical parameters for a fixed
        seed.

        Parameters
        ----------
        train:
            Array of shape ``(time, features)``.
        callbacks:
            Extra :class:`repro.training.Callback` instances (e.g. a
            :class:`~repro.training.Checkpoint`), appended after the
            config-derived ones.
        resume_from:
            A trainer snapshot to continue from: a ``.npz`` path written by
            the :class:`~repro.training.Checkpoint` callback or an already
            loaded ``(arrays, metadata)`` pair.  The detector must be
            configured exactly as the run that produced the snapshot (the
            setup draws replay from the seed, then the snapshot restores
            parameters, optimizer moments, RNG and callback state), so the
            continuation is bit-identical to an uninterrupted run.
        """
        config = self.config
        train = np.asarray(train, dtype=np.float64)
        if train.ndim != 2:
            raise ValueError("train must be a 2-D array of shape (time, features)")
        if train.shape[0] < config.window_size:
            raise ValueError("training series is shorter than one window")

        self._num_features = train.shape[1]
        scaled = self._scaler.fit_transform(train)
        train_stride = config.train_stride or recommended_stride(config)
        windows, _ = sliding_windows(scaled, config.window_size, train_stride)

        if config.max_train_windows is not None and windows.shape[0] > config.max_train_windows:
            chosen = self._rng.choice(windows.shape[0], size=config.max_train_windows,
                                      replace=False)
            if config.validation_split == "tail":
                # choice() returns the subset in random order; the tail split
                # is only "the most recent windows" if time order survives
                # subsampling.  Random splits keep the legacy (unsorted)
                # order so the pre-engine bit-identity contract holds.
                chosen = np.sort(chosen)
            windows = windows[chosen]

        (windows,), val_arrays = split_windows(
            (windows,), config.validation_fraction, self._rng,
            split=config.validation_split)

        masks = self._build_network(self._num_features)
        model = self._imputer.model
        optimizer = Adam(model.parameters(), lr=config.learning_rate)

        # Mask policies are pre-stacked once so each batch gathers its masks
        # with a single fancy-index instead of a per-item Python stack.  The
        # loss spec makes the closure's random draws in the parent and its
        # computation in-process or in spawned gradient workers
        # (config.num_workers); at one worker the loop is bit-identical to
        # the pre-engine hand-rolled loop.
        masks_arr = np.stack(masks)
        spec = ImputationLossSpec(self._imputer, masks_arr)

        validate_fn = None
        if val_arrays is not None:
            validate_fn = self._make_validate_fn(val_arrays[0], masks_arr)

        loader = WindowLoader(windows, batch_size=config.batch_size, rng=self._rng)
        trainer = ParallelTrainer(
            model.parameters(), optimizer, spec,
            num_workers=config.num_workers,
            grad_clip=config.grad_clip,
            callbacks=self._build_callbacks(optimizer) + list(callbacks),
            rng=self._rng,
            validate_fn=validate_fn,
        )
        if resume_from is not None:
            if isinstance(resume_from, (str, os.PathLike)):
                snapshot_arrays, snapshot_metadata = load_checkpoint(str(resume_from))
            else:
                snapshot_arrays, snapshot_metadata = resume_from
            trainer.load_state_dict(snapshot_arrays, snapshot_metadata)
        result = trainer.fit(loader, epochs=config.epochs)
        self.train_losses = list(result.epoch_losses)
        self.val_losses = list(result.val_losses)
        self.last_train_result = result
        return self

    def fine_tune(self, recent: np.ndarray, epochs: int = 1,
                  learning_rate: Optional[float] = None,
                  num_workers: Optional[int] = None,
                  patience: Optional[int] = None,
                  validation_fraction: float = 0.0,
                  seed: Optional[int] = None,
                  callbacks: Sequence = ()):
        """Incrementally adapt a *fitted* detector to recent data.

        Unlike :meth:`fit`, this warm-starts from the current weights and
        **freezes the scaler** (the standardisation learned at training
        time), so a fine-tuned detector remains hot-swappable under a
        running :class:`~repro.serving.DetectorService` — window scaling,
        architecture and sampler trajectory are unchanged; only the denoiser
        weights move.  The pass runs on a *dedicated* random generator
        (derived from ``config.seed`` unless ``seed`` is given), so it never
        consumes the detector's scoring stream: fine-tuning a checkpoint
        clone leaves the serving detector's random state untouched, which is
        what makes rollback bit-identical.

        Parameters
        ----------
        recent:
            Array of shape ``(time, features)`` — typically a snapshot of a
            tenant's raw ring buffer around a drift event.
        epochs:
            Fine-tuning epoch budget (early stopping may use fewer).
        learning_rate:
            Optimizer step size; defaults to ``config.learning_rate``.
        num_workers:
            Gradient workers for the pass (see
            :class:`~repro.training.ParallelTrainer`); defaults to
            ``config.num_workers``.
        patience:
            When given, adds an :class:`~repro.training.EarlyStopping`
            callback with this patience (on the held-out loss when
            ``validation_fraction > 0``, else on the training loss).
        validation_fraction:
            Tail fraction of the fine-tune windows held out for the per-epoch
            validation loss.
        seed:
            Seed of the dedicated fine-tune generator (decoupled from the
            scoring stream); defaults to ``config.seed + 104729``.

        Returns
        -------
        The :class:`~repro.training.TrainResult` of the pass (also stored as
        :attr:`last_train_result`; epoch losses are appended to
        :attr:`train_losses`/:attr:`val_losses`).
        """
        self._check_fitted()
        config = self.config
        recent = np.asarray(recent, dtype=np.float64)
        if recent.ndim != 2 or recent.shape[1] != self._num_features:
            raise ValueError(
                f"recent must have shape (time, {self._num_features})")
        if recent.shape[0] < config.window_size:
            raise ValueError("recent series is shorter than one window")
        if epochs < 1:
            raise ValueError("epochs must be at least 1")

        scaled = self._scaler.transform(recent)
        train_stride = config.train_stride or recommended_stride(config)
        windows, _ = sliding_windows(scaled, config.window_size, train_stride)

        rng = np.random.default_rng(
            config.seed + 104729 if seed is None else seed)
        (windows,), val_arrays = split_windows(
            (windows,), validation_fraction, rng, split="tail")

        masks = build_masks(config, config.window_size, self._num_features)
        masks_arr = np.stack(masks)
        model = self._imputer.model
        was_training = model.training
        model.train()
        optimizer = Adam(model.parameters(),
                         lr=learning_rate if learning_rate is not None
                         else config.learning_rate)
        spec = ImputationLossSpec(self._imputer, masks_arr)
        validate_fn = None
        if val_arrays is not None:
            validate_fn = self._make_validate_fn(val_arrays[0], masks_arr)
        tune_callbacks = list(callbacks)
        if patience is not None:
            tune_callbacks.append(EarlyStopping(patience=patience,
                                                restore_best=True))
        loader = WindowLoader(windows, batch_size=config.batch_size, rng=rng)
        trainer = ParallelTrainer(
            model.parameters(), optimizer, spec,
            num_workers=num_workers if num_workers is not None
            else config.num_workers,
            grad_clip=config.grad_clip,
            callbacks=tune_callbacks,
            rng=rng,
            validate_fn=validate_fn,
        )
        try:
            result = trainer.fit(loader, epochs=epochs)
        finally:
            if not was_training:
                model.eval()
        self.train_losses.extend(result.epoch_losses)
        self.val_losses.extend(result.val_losses)
        self.last_train_result = result
        return result

    def holdout_error(self, series: np.ndarray, seed: int = 0) -> float:
        """Mean final-step imputation error on ``series`` under fixed noise.

        The evaluation draws all reverse-diffusion noise from a local
        generator seeded with ``seed`` — common random numbers — so two
        models compared with the same ``seed`` see *identical* noise and
        mask trajectories and the comparison is paired.  The detector's own
        random stream is never consumed, making the call safe on a live
        serving detector (the adaptation controller uses it to decide
        publish vs rollback on a held-out tail slice).
        """
        self._check_fitted()
        config = self.config
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 2 or series.shape[1] != self._num_features:
            raise ValueError(
                f"series must have shape (time, {self._num_features})")
        if series.shape[0] < config.window_size:
            raise ValueError("series is shorter than one window")
        scaled = self._scaler.transform(series)
        stride = recommended_stride(config)
        windows, _ = sliding_windows(scaled, config.window_size, stride)
        masks = build_masks(config, config.window_size, self._num_features)
        sampler = config.build_sampler()
        rng = np.random.default_rng(seed)

        model = self._imputer.model
        was_training = model.training
        model.eval()
        total, count = 0.0, 0.0
        try:
            for policy_index, mask in enumerate(masks):
                target_elements = float((1.0 - mask).sum())
                for chunk_start in range(0, windows.shape[0], config.batch_size):
                    chunk = windows[chunk_start:chunk_start + config.batch_size]
                    final = None
                    for _, squared in self._impute_window_errors(
                            chunk, mask, policy_index, rng, sampler=sampler):
                        final = squared
                    total += float(final.sum())
                    count += target_elements * chunk.shape[0]
        finally:
            if was_training:
                model.train()
        return total / max(count, 1.0)

    def _make_validate_fn(self, val_windows: np.ndarray, masks_arr: np.ndarray):
        """Held-out denoising loss, evaluated grad-free at each epoch end.

        The pass re-seeds a dedicated common-random-numbers generator
        (:func:`repro.training.crn_validation_rng`) on every call, so each
        epoch sees identical noise/timestep/policy draws — the curve is
        comparable across epochs — and the training random stream is never
        consumed.  With ``config.validation_antithetic`` the loss is
        additionally averaged over each noise draw and its negation
        (:func:`repro.training.antithetic_loss`), halving the estimator's
        odd-moment variance at the cost of a second forward pass; the
        random stream consumed is identical either way.
        """
        config = self.config
        num_policies = masks_arr.shape[0]
        val_loader = WindowLoader(val_windows, batch_size=config.batch_size,
                                  shuffle=False)

        def validate(trainer, state) -> float:
            model = self._imputer.model
            was_training = model.training
            model.eval()
            rng = crn_validation_rng(config.seed)
            total, count = 0.0, 0
            try:
                with no_grad():
                    for batch in val_loader:
                        policies = rng.integers(0, num_policies, size=batch.size)
                        if config.validation_antithetic:
                            # draw_training_noise makes exactly the draws
                            # training_loss(rng) would, so the CRN stream is
                            # bit-identical with the flag on or off.
                            steps, noise = self._imputer.draw_training_noise(
                                batch.data, rng)
                            value = antithetic_loss(
                                lambda s, z: float(self._imputer.training_loss(
                                    batch.data, masks_arr[policies], policies,
                                    steps=s, noise=z).data),
                                steps, noise)
                        else:
                            value = float(self._imputer.training_loss(
                                batch.data, masks_arr[policies], policies,
                                rng).data)
                        total += value * batch.size
                        count += batch.size
            finally:
                if was_training:
                    model.train()
            return total / max(count, 1)

        return validate

    def _build_callbacks(self, optimizer) -> list:
        """Callbacks implied by the config's training knobs.

        Empty by default, which keeps :meth:`fit` bit-identical to the
        legacy loop; early stopping and LR schedules opt in explicitly.
        """
        config = self.config
        callbacks = []
        if config.lr_schedule == "step":
            callbacks.append(LRSchedule(StepLR(optimizer, config.lr_step_size,
                                               config.lr_gamma)))
        elif config.lr_schedule == "cosine":
            callbacks.append(LRSchedule(CosineLR(
                optimizer, config.epochs,
                warmup_epochs=config.lr_warmup_epochs, min_lr=config.lr_min)))
        if config.early_stopping_patience is not None:
            callbacks.append(EarlyStopping(
                patience=config.early_stopping_patience,
                min_delta=config.early_stopping_min_delta,
                restore_best=True,
            ))
        return callbacks

    def _make_schedule(self):
        config = self.config
        if config.schedule == "cosine":
            return make_schedule("cosine", config.num_steps)
        return make_schedule(config.schedule, config.num_steps,
                             beta_start=config.beta_start, beta_end=config.beta_end)

    def _build_network(self, num_features: int) -> List[np.ndarray]:
        """Construct the denoiser + diffusion stack for ``num_features`` channels.

        Shared by :meth:`fit` and checkpoint restoration so a deserialised
        detector rebuilds exactly the architecture that was trained.  Returns
        the mask set so :meth:`fit` can reuse it for training.
        """
        config = self.config
        masks = build_masks(config, config.window_size, num_features)
        model = ImTransformer(
            num_features=num_features,
            hidden_dim=config.hidden_dim,
            num_blocks=config.num_blocks,
            num_heads=config.num_heads,
            num_policies=max(len(masks), 2),
            include_temporal=config.include_temporal,
            include_spatial=config.include_spatial,
            rng=self._rng,
        )
        diffusion = GaussianDiffusion(self._make_schedule())
        self._imputer = ImputedDiffusion(model, diffusion, conditioning=config.conditioning)
        return masks

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def to_checkpoint(self) -> Tuple[Dict[str, np.ndarray], dict]:
        """Export the fitted detector as ``(arrays, metadata)``.

        ``arrays`` holds the denoiser weights (prefixed ``model.``) and the
        scaler statistics (prefixed ``scaler.``); ``metadata`` holds the
        configuration, feature count, training curve and the exact random
        generator state, so a restored detector continues the same random
        stream and produces bit-identical predictions.
        """
        self._check_fitted()
        arrays: Dict[str, np.ndarray] = {
            f"model.{name}": value
            for name, value in self._imputer.model.state_dict().items()
        }
        arrays["scaler.mean_"] = np.asarray(self._scaler.mean_)
        arrays["scaler.std_"] = np.asarray(self._scaler.std_)
        metadata = {
            "format_version": 1,
            "config": asdict(self.config),
            "num_features": int(self._num_features),
            "train_losses": [float(loss) for loss in self.train_losses],
            "val_losses": [float(loss) for loss in self.val_losses],
            "rng_state": self._rng.bit_generator.state,
        }
        return arrays, metadata

    @classmethod
    def from_checkpoint(cls, arrays: Dict[str, np.ndarray],
                        metadata: dict) -> "ImDiffusionDetector":
        """Rebuild a fitted detector from :meth:`to_checkpoint` output."""
        version = metadata.get("format_version")
        if version != 1:
            raise ValueError(f"unsupported checkpoint format version: {version!r}")
        config = ImDiffusionConfig(**metadata["config"])
        detector = cls(config)
        detector._num_features = int(metadata["num_features"])
        detector._scaler.mean_ = np.asarray(arrays["scaler.mean_"], dtype=np.float64)
        detector._scaler.std_ = np.asarray(arrays["scaler.std_"], dtype=np.float64)
        detector._build_network(detector._num_features)
        state = {
            name[len("model."):]: value
            for name, value in arrays.items()
            if name.startswith("model.")
        }
        detector._imputer.model.load_state_dict(state)
        detector.train_losses = [float(loss) for loss in metadata.get("train_losses", [])]
        detector.val_losses = [float(loss) for loss in metadata.get("val_losses", [])]
        rng_state = metadata.get("rng_state")
        if rng_state is not None:
            detector._rng.bit_generator.state = rng_state
        return detector

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, test: np.ndarray,
              score_workers: int = 1) -> Dict[int, np.ndarray]:
        """Per-timestamp imputation error for every visited denoising step.

        Returns a mapping ``progress -> errors`` where progress ``k`` runs
        from 1 (noisiest intermediate output) to :attr:`inference_steps`
        (final, fully denoised output) and ``errors`` has one entry per test
        timestamp.  With the full sampler :attr:`inference_steps` equals
        ``num_steps``; a strided sampler collects one entry per *visited*
        step of its trajectory.

        The whole pass runs grad-free: the denoiser is switched to eval mode
        and every reverse-diffusion call executes under
        :class:`repro.nn.no_grad`, so no autograd graph is ever built.

        ``score_workers > 1`` fans the (mask policy, window chunk) task plan
        out across that many spawned scoring workers (see
        :mod:`repro.inference`).  All randomness is still drawn on the
        detector's generator in the serial order and results are accumulated
        in the serial order, so the scores — and the generator state
        afterwards — are identical to the serial path for every worker
        count.
        """
        self._check_fitted()
        if score_workers < 1:
            raise ValueError("score_workers must be at least 1")
        config = self.config
        test = np.asarray(test, dtype=np.float64)
        if test.ndim != 2 or test.shape[1] != self._num_features:
            raise ValueError(
                f"test must have shape (time, {self._num_features})"
            )
        scaled = self._scaler.transform(test)
        stride = recommended_stride(config)
        windows, starts = sliding_windows(scaled, config.window_size, stride)
        masks = build_masks(config, config.window_size, self._num_features)

        length = scaled.shape[0]
        window = config.window_size
        sampler = config.build_sampler()
        num_collected = sampler.num_inference_steps(config.num_steps)
        error_sum = {k: np.zeros((length, self._num_features))
                     for k in range(1, num_collected + 1)}
        masked_count = np.zeros((length, self._num_features))

        model = self._imputer.model
        was_training = model.training
        model.eval()
        try:
            if score_workers == 1:
                for policy_index, mask in enumerate(masks):
                    target_region = 1.0 - mask
                    for chunk_start in range(0, windows.shape[0], config.batch_size):
                        chunk = windows[chunk_start:chunk_start + config.batch_size]
                        chunk_starts = starts[chunk_start:chunk_start + config.batch_size]
                        for progress, squared in self._impute_window_errors(
                                chunk, mask, policy_index, self._rng, sampler=sampler):
                            for window_error, start in zip(squared, chunk_starts):
                                error_sum[progress][start:start + window] += window_error
                        for start in chunk_starts:
                            masked_count[start:start + window] += target_region
            else:
                def scatter_add(task, step_squared):
                    # Replicates the serial inner accumulation exactly: for
                    # each progress (trajectory order), each window of the
                    # chunk scatter-adds at its start offset.
                    chunk_starts = starts[task.start:task.stop]
                    for progress, squared in step_squared.items():
                        for window_error, start in zip(squared, chunk_starts):
                            error_sum[progress][start:start + window] += window_error

                reducer = MultiprocessScoreReducer(
                    ImputationScoreSpec(self), score_workers)
                with reducer:
                    reducer.window_errors(windows, self._rng,
                                          on_result=scatter_add)
                for mask in masks:
                    target_region = 1.0 - mask
                    for start in starts:
                        masked_count[start:start + window] += target_region
        finally:
            if was_training:
                model.train()

        coverage = np.maximum(masked_count.sum(axis=1), 1.0)
        step_errors: Dict[int, np.ndarray] = {}
        for progress, totals in error_sum.items():
            step_errors[progress] = totals.sum(axis=1) / coverage
        return step_errors

    def _impute_window_errors(self, chunk: np.ndarray, mask: np.ndarray,
                              policy_index: int,
                              rng: Optional[np.random.Generator],
                              sampler=None, noise=None):
        """Run one mask policy over a chunk of windows.

        Yields ``(progress, squared)`` pairs with ``squared`` of shape
        ``(chunk, window, features)``, restricted to the masked region.
        Progress counts visited steps from 1 (noisiest) upward, so it stays
        dense even under a strided sampler.  Shared by offline scoring, the
        serving layer's batched scorer and the sharded inference workers
        (which pass pre-drawn ``noise`` and no ``rng``) so the
        imputation-error formula cannot drift between the paths.
        """
        config = self.config
        sampler = sampler or config.build_sampler()
        target_region = 1.0 - mask
        batch_masks = np.broadcast_to(mask, chunk.shape)
        policies = np.full(chunk.shape[0], policy_index, dtype=np.int64)
        result = self._imputer.impute(
            chunk, batch_masks, policies, rng,
            collect=config.collect,
            deterministic=config.deterministic_inference,
            sampler=sampler,
            noise=noise,
        )
        for progress, (_, estimate) in enumerate(result.intermediate, start=1):
            yield progress, ((estimate - chunk) ** 2) * target_region

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, test: np.ndarray,
                score_workers: int = 1) -> DetectionResult:
        """Score ``test`` and derive binary anomaly labels.

        ``score_workers`` is forwarded to :meth:`score`; labels are
        worker-count-invariant because the scores are.
        """
        config = self.config
        start_time = time.perf_counter()
        step_errors = self.score(test, score_workers=score_workers)
        elapsed = time.perf_counter() - start_time

        voter = EnsembleVoter(
            error_percentile=config.error_percentile,
            vote_fraction=config.vote_fraction,
            step_stride=config.vote_step_stride,
            last_fraction=config.vote_last_fraction,
        )
        final_error = step_errors[max(step_errors)]
        if config.ensemble:
            decision = voter.vote(step_errors)
            labels = decision.labels
        else:
            decision = None
            labels = voter.single_step_labels(step_errors)
        return DetectionResult(
            labels=labels,
            scores=final_error,
            step_errors=step_errors,
            decision=decision,
            inference_seconds=elapsed,
        )

    def fit_predict(self, train: np.ndarray, test: np.ndarray,
                    score_workers: int = 1) -> DetectionResult:
        """Convenience wrapper: :meth:`fit` on ``train`` then :meth:`predict` on ``test``."""
        return self.fit(train).predict(test, score_workers=score_workers)

    # ------------------------------------------------------------------
    @property
    def model(self) -> Optional[ImTransformer]:
        """The trained denoiser network (``None`` before :meth:`fit`)."""
        if self._imputer is None:
            return None
        return self._imputer.model

    @property
    def num_features(self) -> Optional[int]:
        """Number of input channels the detector was fitted on."""
        return self._num_features

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` (or a checkpoint restore) has run."""
        return self._imputer is not None

    def _check_fitted(self) -> None:
        if self._imputer is None:
            raise RuntimeError("detector must be fitted before scoring")
