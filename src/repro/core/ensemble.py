"""Ensemble anomaly inference over the denoising steps (Sec. 4.5, Algorithm 1).

The diffusion imputer produces a prediction-error series for every denoising
step.  Steps are indexed here by *denoising progress* ``k = 1 .. T`` where
``k = T`` is the final, fully denoised output (this matches Fig. 8 of the
paper, whose "denoising step 50" is the last one).  For each selected step the
error series is thresholded with the step-adaptive threshold of Eq. (12), the
per-step anomaly labels are treated as votes, and a timestamp is flagged as
anomalous when it receives more than ``xi`` votes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .thresholding import apply_threshold, percentile_threshold

__all__ = ["EnsembleDecision", "EnsembleVoter", "select_voting_steps"]


def select_voting_steps(num_steps: int, last_fraction: float, stride: int) -> List[int]:
    """Denoising-progress indices used for voting.

    The paper samples every 3rd of the last 30 steps of a 50-step chain; this
    helper generalises that to ``stride`` within the trailing ``last_fraction``
    of an arbitrary-length chain.  The final step is always included.
    """
    if num_steps < 1:
        raise ValueError("num_steps must be positive")
    if not 0.0 < last_fraction <= 1.0:
        raise ValueError("last_fraction must be in (0, 1]")
    if stride < 1:
        raise ValueError("stride must be at least 1")
    first = max(1, int(np.ceil(num_steps * (1.0 - last_fraction))) + 1)
    steps = list(range(first, num_steps + 1, stride))
    if not steps or steps[-1] != num_steps:
        steps.append(num_steps)
    return sorted(set(steps))


@dataclass
class EnsembleDecision:
    """Full output of the ensemble voting procedure (useful for diagnostics)."""

    labels: np.ndarray
    votes: np.ndarray
    vote_threshold: float
    step_labels: Dict[int, np.ndarray]
    step_thresholds: Dict[int, float]
    voting_steps: List[int]


class EnsembleVoter:
    """Aggregate per-step imputation errors into final anomaly labels.

    Parameters
    ----------
    error_percentile:
        Upper percentile of the *final-step* error used as the base threshold
        ``tau_T`` in Eq. (12).
    vote_fraction:
        The vote threshold ``xi`` expressed as a fraction of the number of
        voting steps (a timestamp must receive strictly more votes than
        ``vote_fraction * num_voting_steps``).
    step_stride, last_fraction:
        Which denoising steps participate in the vote, see
        :func:`select_voting_steps`.
    """

    def __init__(self, error_percentile: float = 97.5, vote_fraction: float = 0.5,
                 step_stride: int = 3, last_fraction: float = 0.6) -> None:
        self.error_percentile = error_percentile
        self.vote_fraction = vote_fraction
        self.step_stride = step_stride
        self.last_fraction = last_fraction

    # ------------------------------------------------------------------
    def step_threshold(self, step_errors: Dict[int, np.ndarray], step: int,
                       final_step: int) -> float:
        """Step-adaptive threshold ``tau_k`` of Eq. (12).

        ``tau_k = (sum(E_final) / sum(E_k)) * tau_final``: steps whose total
        error is larger (poorer imputations, typically early steps) receive a
        proportionally *smaller* percentile threshold so that only their most
        confident detections survive.
        """
        final_errors = step_errors[final_step]
        tau_final = percentile_threshold(final_errors, self.error_percentile)
        total_final = float(np.sum(final_errors))
        total_step = float(np.sum(step_errors[step]))
        if total_step <= 0:
            return tau_final
        ratio = total_final / total_step
        return ratio * tau_final

    def vote(self, step_errors: Dict[int, np.ndarray]) -> EnsembleDecision:
        """Run the full voting procedure of Algorithm 1.

        Parameters
        ----------
        step_errors:
            Mapping from denoising progress ``k`` (1 = noisiest, max = final)
            to a per-timestamp error array.  All arrays must share a shape.
        """
        if not step_errors:
            raise ValueError("step_errors is empty")
        steps = sorted(step_errors)
        final_step = steps[-1]
        length = step_errors[final_step].shape[0]

        voting_steps = [s for s in select_voting_steps(final_step, self.last_fraction,
                                                       self.step_stride)
                        if s in step_errors]
        if final_step not in voting_steps:
            voting_steps.append(final_step)

        votes = np.zeros(length, dtype=np.int64)
        step_labels: Dict[int, np.ndarray] = {}
        step_thresholds: Dict[int, float] = {}
        for step in voting_steps:
            threshold = self.step_threshold(step_errors, step, final_step)
            labels = apply_threshold(step_errors[step], threshold)
            step_labels[step] = labels
            step_thresholds[step] = threshold
            votes += labels

        vote_threshold = self.vote_fraction * len(voting_steps)
        final_labels = (votes > vote_threshold).astype(np.int64)
        return EnsembleDecision(
            labels=final_labels,
            votes=votes,
            vote_threshold=float(vote_threshold),
            step_labels=step_labels,
            step_thresholds=step_thresholds,
            voting_steps=voting_steps,
        )

    # ------------------------------------------------------------------
    def single_step_labels(self, step_errors: Dict[int, np.ndarray]) -> np.ndarray:
        """Non-ensemble fallback: threshold only the final-step error (Sec. 5.3.2)."""
        if not step_errors:
            raise ValueError("step_errors is empty")
        final_step = max(step_errors)
        errors = step_errors[final_step]
        threshold = percentile_threshold(errors, self.error_percentile)
        return apply_threshold(errors, threshold)
