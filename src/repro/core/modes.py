"""Modelling modes: imputation, forecasting and reconstruction.

The paper's central argument (Sec. 4.1, Fig. 1) is that *imputation* is a
better self-supervised objective for anomaly detection than forecasting or
reconstruction.  All three are expressed here as masking patterns applied to
the same diffusion imputer:

* ``imputation`` — grating (or random) masks, two complementary policies;
* ``forecasting`` — the first half of the window is observed, the second half
  must be generated (masked);
* ``reconstruction`` — the entire window is masked, nothing is observed.

This keeps the ablation of Sec. 5.3.1 a pure masking change, exactly as the
paper describes ("we adopt the same configuration ... with the only
distinction being ...").
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..masking import GratingMasking, MaskingStrategy, RandomMasking
from .config import ImDiffusionConfig

__all__ = ["build_masks", "recommended_stride"]


def build_masks(config: ImDiffusionConfig, window_length: int, num_features: int) -> List[np.ndarray]:
    """Observation masks (1 = observed, 0 = to impute) for the configured mode."""
    if config.mode == "imputation":
        strategy: MaskingStrategy
        if config.masking == "grating":
            strategy = GratingMasking(config.num_masked_windows, config.num_unmasked_windows)
        else:
            strategy = RandomMasking(config.random_mask_ratio, seed=config.seed)
        return strategy.masks(window_length, num_features)
    if config.mode == "forecasting":
        mask = np.ones((window_length, num_features), dtype=np.float64)
        mask[window_length // 2:, :] = 0.0
        return [mask]
    # reconstruction: everything is generated from noise.
    return [np.zeros((window_length, num_features), dtype=np.float64)]


def recommended_stride(config: ImDiffusionConfig) -> int:
    """Window stride that guarantees every timestamp receives a prediction.

    Imputation and reconstruction cover the whole window, so non-overlapping
    windows suffice; forecasting only predicts the second half of each window
    and therefore needs half-window strides.
    """
    if config.mode == "forecasting":
        return max(1, config.window_size // 2)
    return config.stride if config.stride is not None else config.window_size
