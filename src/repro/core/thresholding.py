"""Anomaly-score thresholding strategies.

ImDiffusion uses an upper-percentile threshold on imputed errors (with the
step-dependent rescaling of Eq. 12 handled in :mod:`repro.core.ensemble`).
The Peaks-Over-Threshold (POT) estimator used by OmniAnomaly is provided as
well, both for that baseline and as an alternative thresholding choice.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

__all__ = ["percentile_threshold", "pot_threshold", "apply_threshold"]


def percentile_threshold(errors: np.ndarray, percentile: float) -> float:
    """Upper-percentile threshold over an error series."""
    errors = np.asarray(errors, dtype=np.float64)
    if errors.size == 0:
        raise ValueError("cannot derive a threshold from an empty error array")
    if not 0.0 < percentile < 100.0:
        raise ValueError("percentile must be in (0, 100)")
    return float(np.percentile(errors, percentile))


def pot_threshold(errors: np.ndarray, initial_quantile: float = 0.98,
                  risk: float = 1e-3) -> float:
    """Peaks-Over-Threshold threshold (Siffer et al., 2017).

    A generalised Pareto distribution is fitted to the exceedances above an
    initial high quantile ``t0``; the final threshold is the level whose
    exceedance probability equals ``risk``.  Falls back to the initial
    quantile when there are too few exceedances to fit the tail.
    """
    errors = np.asarray(errors, dtype=np.float64)
    if errors.size == 0:
        raise ValueError("cannot derive a threshold from an empty error array")
    if not 0.0 < initial_quantile < 1.0:
        raise ValueError("initial_quantile must be in (0, 1)")
    t0 = float(np.quantile(errors, initial_quantile))
    exceedances = errors[errors > t0] - t0
    if exceedances.size < 10:
        return t0
    shape, _, scale = stats.genpareto.fit(exceedances, floc=0.0)
    num = errors.size
    num_exceed = exceedances.size
    if abs(shape) < 1e-9:
        # Exponential tail limit of the GPD.
        quantile = t0 + scale * np.log(num_exceed / (risk * num))
    else:
        quantile = t0 + (scale / shape) * ((risk * num / num_exceed) ** (-shape) - 1.0)
    if not np.isfinite(quantile) or quantile <= t0:
        return t0
    return float(quantile)


def apply_threshold(errors: np.ndarray, threshold: float) -> np.ndarray:
    """Binary anomaly labels: 1 where ``errors >= threshold``."""
    errors = np.asarray(errors, dtype=np.float64)
    return (errors >= threshold).astype(np.int64)
