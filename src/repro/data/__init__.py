"""Data substrate: synthetic benchmark analogues, windowing and preprocessing."""

from .anomalies import ANOMALY_TYPES, AnomalySegment, inject_anomalies
from .datasets import (DATASET_PROFILES, DatasetProfile, MTSDataset, list_datasets,
                       load_dataset, synthesize_dataset)
from .generators import (MTSConfig, generate_drift_mts, generate_latent_factors,
                         generate_mts, generate_regime_change_mts,
                         generate_seasonal_load_mts)
from .registry import (DATASET_REGISTRY, DatasetEntry, DatasetRegistry, dataset_rng,
                       load_nasa_tree, load_smd_tree, register_dataset,
                       register_directory)
from .preprocessing import MinMaxScaler, StandardScaler
from .production import MicroserviceLatencySimulator, ProductionConfig, ProductionTrace
from .windows import label_windows, overlap_average, sliding_windows, window_starts

__all__ = [
    "ANOMALY_TYPES",
    "AnomalySegment",
    "inject_anomalies",
    "DATASET_PROFILES",
    "DATASET_REGISTRY",
    "DatasetEntry",
    "DatasetProfile",
    "DatasetRegistry",
    "MTSDataset",
    "dataset_rng",
    "list_datasets",
    "load_dataset",
    "load_nasa_tree",
    "load_smd_tree",
    "register_dataset",
    "register_directory",
    "synthesize_dataset",
    "MTSConfig",
    "generate_drift_mts",
    "generate_latent_factors",
    "generate_mts",
    "generate_regime_change_mts",
    "generate_seasonal_load_mts",
    "MinMaxScaler",
    "StandardScaler",
    "MicroserviceLatencySimulator",
    "ProductionConfig",
    "ProductionTrace",
    "label_windows",
    "overlap_average",
    "sliding_windows",
    "window_starts",
]
