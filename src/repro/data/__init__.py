"""Data substrate: synthetic benchmark analogues, windowing and preprocessing."""

from .anomalies import ANOMALY_TYPES, AnomalySegment, inject_anomalies
from .datasets import DATASET_PROFILES, DatasetProfile, MTSDataset, list_datasets, load_dataset
from .generators import MTSConfig, generate_latent_factors, generate_mts
from .preprocessing import MinMaxScaler, StandardScaler
from .production import MicroserviceLatencySimulator, ProductionConfig, ProductionTrace
from .windows import label_windows, overlap_average, sliding_windows, window_starts

__all__ = [
    "ANOMALY_TYPES",
    "AnomalySegment",
    "inject_anomalies",
    "DATASET_PROFILES",
    "DatasetProfile",
    "MTSDataset",
    "list_datasets",
    "load_dataset",
    "MTSConfig",
    "generate_latent_factors",
    "generate_mts",
    "MinMaxScaler",
    "StandardScaler",
    "MicroserviceLatencySimulator",
    "ProductionConfig",
    "ProductionTrace",
    "label_windows",
    "overlap_average",
    "sliding_windows",
    "window_starts",
]
