"""Anomaly injection for synthetic multivariate time series.

The injectors implement the anomaly archetypes documented for the paper's six
benchmark datasets: point spikes, level shifts, trend drifts, amplitude
(contextual) changes, flat-lined sensors, noise bursts and correlation breaks
between channels.  Each injector modifies a copy of the series inside a given
segment and the caller records the segment in the binary label vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "AnomalySegment",
    "ANOMALY_TYPES",
    "inject_anomalies",
    "inject_spike",
    "inject_level_shift",
    "inject_drift",
    "inject_amplitude_change",
    "inject_flatline",
    "inject_noise_burst",
    "inject_correlation_break",
]


@dataclass(frozen=True)
class AnomalySegment:
    """A labelled anomalous interval ``[start, end)`` affecting ``channels``."""

    start: int
    end: int
    kind: str
    channels: Tuple[int, ...]

    @property
    def length(self) -> int:
        return self.end - self.start


def _pick_channels(num_features: int, rng: np.random.Generator,
                   min_fraction: float = 0.2, max_fraction: float = 0.7) -> np.ndarray:
    count = max(1, int(round(rng.uniform(min_fraction, max_fraction) * num_features)))
    return rng.choice(num_features, size=min(count, num_features), replace=False)


def inject_spike(series: np.ndarray, start: int, end: int, channels: np.ndarray,
                 rng: np.random.Generator) -> None:
    """Large instantaneous deviations on a few timestamps inside the segment."""
    magnitude = rng.uniform(4.0, 8.0)
    sign = rng.choice([-1.0, 1.0])
    scale = series[:, channels].std(axis=0) + 1e-6
    for t in range(start, end):
        series[t, channels] += sign * magnitude * scale


def inject_level_shift(series: np.ndarray, start: int, end: int, channels: np.ndarray,
                       rng: np.random.Generator) -> None:
    """A sustained shift of the mean level for the duration of the segment."""
    scale = series[:, channels].std(axis=0) + 1e-6
    shift = rng.choice([-1.0, 1.0]) * rng.uniform(2.5, 5.0) * scale
    series[start:end, channels] += shift


def inject_drift(series: np.ndarray, start: int, end: int, channels: np.ndarray,
                 rng: np.random.Generator) -> None:
    """A ramp that grows linearly over the segment (slow degradation)."""
    scale = series[:, channels].std(axis=0) + 1e-6
    ramp = np.linspace(0.0, 1.0, end - start)[:, None]
    series[start:end, channels] += rng.choice([-1.0, 1.0]) * rng.uniform(3.0, 6.0) * ramp * scale


def inject_amplitude_change(series: np.ndarray, start: int, end: int, channels: np.ndarray,
                            rng: np.random.Generator) -> None:
    """Contextual anomaly: oscillation amplitude is multiplied inside the segment."""
    segment = series[start:end, channels]
    center = segment.mean(axis=0)
    factor = rng.uniform(3.0, 5.0)
    series[start:end, channels] = center + (segment - center) * factor


def inject_flatline(series: np.ndarray, start: int, end: int, channels: np.ndarray,
                    rng: np.random.Generator) -> None:
    """Stuck-sensor anomaly: the channel freezes at its value at segment start."""
    series[start:end, channels] = series[start, channels]


def inject_noise_burst(series: np.ndarray, start: int, end: int, channels: np.ndarray,
                       rng: np.random.Generator) -> None:
    """High-variance noise burst (telemetry corruption)."""
    scale = series[:, channels].std(axis=0) + 1e-6
    burst = rng.normal(0.0, 3.0, size=(end - start, len(channels))) * scale
    series[start:end, channels] += burst


def inject_correlation_break(series: np.ndarray, start: int, end: int, channels: np.ndarray,
                             rng: np.random.Generator) -> None:
    """Inter-metric anomaly: correlated channels are replaced by shuffled copies.

    Individual channel marginals stay plausible, but the cross-channel
    relationship is destroyed — only a detector that models inter-metric
    dependencies can see this anomaly.
    """
    segment = series[start:end, channels].copy()
    permutation = rng.permutation(end - start)
    series[start:end, channels] = segment[permutation]


ANOMALY_TYPES: Dict[str, Callable[..., None]] = {
    "spike": inject_spike,
    "level_shift": inject_level_shift,
    "drift": inject_drift,
    "amplitude": inject_amplitude_change,
    "flatline": inject_flatline,
    "noise_burst": inject_noise_burst,
    "correlation_break": inject_correlation_break,
}


def inject_anomalies(
    series: np.ndarray,
    rng: np.random.Generator,
    anomaly_types: Sequence[str],
    anomaly_fraction: float = 0.05,
    min_length: int = 5,
    max_length: int = 40,
    point_anomaly_length: int = 2,
) -> Tuple[np.ndarray, np.ndarray, List[AnomalySegment]]:
    """Inject anomalous segments until roughly ``anomaly_fraction`` of points are abnormal.

    Parameters
    ----------
    series:
        Array of shape ``(length, num_features)``; a modified copy is returned.
    anomaly_types:
        Names from :data:`ANOMALY_TYPES` to sample from (with replacement).
    anomaly_fraction:
        Target fraction of anomalous timestamps.
    min_length, max_length:
        Bounds of the segment lengths for range anomalies.
    point_anomaly_length:
        Length used for ``spike`` anomalies (they are near-instantaneous).

    Returns
    -------
    (anomalous_series, labels, segments)
        ``labels`` is a ``(length,)`` array of 0/1 flags; ``segments`` lists
        the injected intervals for delay-evaluation purposes.
    """
    unknown = set(anomaly_types) - set(ANOMALY_TYPES)
    if unknown:
        raise ValueError(f"unknown anomaly types: {sorted(unknown)}")
    if not 0.0 < anomaly_fraction < 0.5:
        raise ValueError("anomaly_fraction must be in (0, 0.5)")

    series = np.array(series, dtype=np.float64, copy=True)
    length, num_features = series.shape
    labels = np.zeros(length, dtype=np.int64)
    segments: List[AnomalySegment] = []
    target = int(anomaly_fraction * length)
    guard = 0
    while labels.sum() < target and guard < 1000:
        guard += 1
        kind = str(rng.choice(list(anomaly_types)))
        if kind == "spike":
            seg_length = point_anomaly_length
        else:
            seg_length = int(rng.integers(min_length, max_length + 1))
        seg_length = min(seg_length, length - 2)
        start = int(rng.integers(1, length - seg_length))
        end = start + seg_length
        # Keep segments separated so delay metrics see distinct events.
        buffer = 5
        window = labels[max(0, start - buffer):min(length, end + buffer)]
        if window.any():
            continue
        channels = _pick_channels(num_features, rng)
        ANOMALY_TYPES[kind](series, start, end, channels, rng)
        labels[start:end] = 1
        segments.append(AnomalySegment(start, end, kind, tuple(int(c) for c in channels)))
    segments.sort(key=lambda s: s.start)
    return series, labels, segments
