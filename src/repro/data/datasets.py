"""Benchmark dataset analogues.

The paper evaluates on six public datasets — SMD, PSM, MSL, SMAP, SWaT and
GCP.  The raw files cannot be shipped with this offline repository, so each
dataset is replaced by a synthetic *analogue* whose statistical profile
follows the published characteristics of the original: dimensionality,
train/test length ratio, anomaly density, the dominant anomaly archetypes and
the amount of inter-metric correlation / discrete actuator channels.

Each analogue is produced deterministically from a seed so experiments are
reproducible, and a global ``scale`` parameter shrinks the series lengths so
that the full benchmark sweep remains tractable on the NumPy substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .anomalies import AnomalySegment, inject_anomalies
from .generators import (MTSConfig, generate_drift_mts, generate_mts,
                         generate_regime_change_mts, generate_seasonal_load_mts)
from .registry import DATASET_REGISTRY, DatasetEntry, register_dataset

__all__ = ["MTSDataset", "DatasetProfile", "DATASET_PROFILES", "load_dataset", "list_datasets"]


@dataclass
class MTSDataset:
    """A train/test split of a multivariate time series with test labels.

    Attributes
    ----------
    name:
        Dataset identifier (e.g. ``"SMD"``).
    train:
        Array of shape ``(train_length, num_features)`` — assumed mostly normal.
    test:
        Array of shape ``(test_length, num_features)``.
    test_labels:
        Binary array of shape ``(test_length,)``; 1 marks anomalous timestamps.
    segments:
        The injected anomalous intervals (used by the delay metric).
    """

    name: str
    train: np.ndarray
    test: np.ndarray
    test_labels: np.ndarray
    segments: List[AnomalySegment] = field(default_factory=list)

    @property
    def num_features(self) -> int:
        """Number of channels (columns) in the multivariate series."""
        return int(self.train.shape[1])

    @property
    def anomaly_ratio(self) -> float:
        """Fraction of test points labelled anomalous."""
        return float(self.test_labels.mean())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MTSDataset(name={self.name!r}, train={self.train.shape}, "
            f"test={self.test.shape}, anomaly_ratio={self.anomaly_ratio:.3f})"
        )


@dataclass(frozen=True)
class DatasetProfile:
    """Generation recipe for one benchmark analogue."""

    name: str
    num_features: int
    train_length: int
    test_length: int
    anomaly_fraction: float
    anomaly_types: Tuple[str, ...]
    num_factors: int
    num_groups: int
    noise_scale: float
    discrete_fraction: float
    train_contamination: float = 0.0
    min_anomaly_length: int = 5
    max_anomaly_length: int = 40
    description: str = ""


DATASET_PROFILES: Dict[str, DatasetProfile] = {
    "SMD": DatasetProfile(
        name="SMD", num_features=38, train_length=4000, test_length=4000,
        anomaly_fraction=0.042,
        anomaly_types=("spike", "level_shift", "noise_burst", "drift"),
        num_factors=6, num_groups=6, noise_scale=0.08, discrete_fraction=0.05,
        train_contamination=0.005,
        description="Server Machine Dataset analogue: many moderately correlated "
                    "host metrics with sparse spike/level-shift incidents.",
    ),
    "PSM": DatasetProfile(
        name="PSM", num_features=25, train_length=3500, test_length=3500,
        anomaly_fraction=0.22,
        anomaly_types=("level_shift", "drift", "spike", "amplitude"),
        num_factors=5, num_groups=5, noise_scale=0.12, discrete_fraction=0.0,
        min_anomaly_length=20, max_anomaly_length=120,
        description="Pooled Server Metrics analogue: high anomaly density with "
                    "long ranged incidents.",
    ),
    "MSL": DatasetProfile(
        name="MSL", num_features=55, train_length=2500, test_length=2500,
        anomaly_fraction=0.105,
        anomaly_types=("correlation_break", "level_shift", "flatline"),
        num_factors=4, num_groups=4, noise_scale=0.06, discrete_fraction=0.5,
        min_anomaly_length=15, max_anomaly_length=80,
        description="Mars Science Laboratory analogue: strong inter-metric "
                    "correlation, many discrete command channels.",
    ),
    "SMAP": DatasetProfile(
        name="SMAP", num_features=25, train_length=2000, test_length=2000,
        anomaly_fraction=0.13,
        anomaly_types=("flatline", "level_shift", "spike"),
        num_factors=4, num_groups=5, noise_scale=0.07, discrete_fraction=0.4,
        min_anomaly_length=10, max_anomaly_length=60,
        description="Soil Moisture Active Passive analogue: shorter sequences, "
                    "spacecraft telemetry with stuck-sensor events.",
    ),
    "SWaT": DatasetProfile(
        name="SWaT", num_features=51, train_length=5000, test_length=5000,
        anomaly_fraction=0.12,
        anomaly_types=("level_shift", "drift", "flatline", "amplitude"),
        num_factors=8, num_groups=8, noise_scale=0.15, discrete_fraction=0.4,
        train_contamination=0.01,
        min_anomaly_length=30, max_anomaly_length=150,
        description="Secure Water Treatment analogue: high dimensionality, "
                    "actuator channels and long process-level attacks.",
    ),
    "GCP": DatasetProfile(
        name="GCP", num_features=19, train_length=3000, test_length=3000,
        anomaly_fraction=0.05,
        anomaly_types=("spike", "noise_burst", "amplitude"),
        num_factors=4, num_groups=4, noise_scale=0.09, discrete_fraction=0.0,
        min_anomaly_length=5, max_anomaly_length=30,
        description="Google Cloud Platform service-metric analogue: clean "
                    "periodic signals with short bursts.",
    ),
}


def synthesize_dataset(profile: DatasetProfile, rng: np.random.Generator,
                       scale: float, generator=generate_mts) -> MTSDataset:
    """Build a dataset from a generation recipe and an already-seeded ``rng``.

    This is the frozen legacy generation path: the sequence of draws from
    ``rng`` is part of the registry's bit-identity contract, so any change
    here invalidates the checksums in ``tests/data/test_registry.py``.
    ``generator`` swaps the base series synthesizer (the regime datasets use
    the drift/regime-change/seasonal-load variants) without altering the
    draw order around it.
    """
    train_length = max(int(profile.train_length * scale), 200)
    test_length = max(int(profile.test_length * scale), 200)

    def make_config(length: int) -> MTSConfig:
        return MTSConfig(
            length=length,
            num_features=profile.num_features,
            num_factors=profile.num_factors,
            noise_scale=profile.noise_scale,
            num_groups=profile.num_groups,
            discrete_fraction=profile.discrete_fraction,
        )

    train = generator(make_config(train_length), rng)
    test = generator(make_config(test_length), rng, phase_offset=0.37)

    max_len = min(profile.max_anomaly_length, max(profile.min_anomaly_length + 1, test_length // 8))
    test, labels, segments = inject_anomalies(
        test, rng,
        anomaly_types=profile.anomaly_types,
        anomaly_fraction=profile.anomaly_fraction,
        min_length=profile.min_anomaly_length,
        max_length=max_len,
    )

    if profile.train_contamination > 0:
        train, _, _ = inject_anomalies(
            train, rng,
            anomaly_types=profile.anomaly_types,
            anomaly_fraction=profile.train_contamination,
            min_length=profile.min_anomaly_length,
            max_length=max_len,
        )

    return MTSDataset(name=profile.name, train=train, test=test,
                      test_labels=labels, segments=segments)


#: Registration order of the paper analogues — the order of the paper's
#: comparison tables, kept stable because ``list_datasets()`` reflects it.
_PAPER_ORDER = ["SMD", "PSM", "SWaT", "SMAP", "MSL", "GCP"]

_PAPER_CITATIONS = {
    "SMD": "Server Machine Dataset, Su et al., KDD 2019 (analogue)",
    "PSM": "Pooled Server Metrics, Abdulaal et al., KDD 2021 (analogue)",
    "MSL": "Mars Science Laboratory, Hundman et al., KDD 2018 (analogue)",
    "SMAP": "Soil Moisture Active Passive, Hundman et al., KDD 2018 (analogue)",
    "SWaT": "Secure Water Treatment testbed, Goh et al., CRITIS 2016 (analogue)",
    "GCP": "Google Cloud Platform service metrics, source paper §6 (analogue)",
}


def _make_profile_loader(profile: DatasetProfile, generator=generate_mts):
    def loader(rng: np.random.Generator, scale: float) -> MTSDataset:
        return synthesize_dataset(profile, rng, scale, generator=generator)
    return loader


for _name in _PAPER_ORDER:
    _profile = DATASET_PROFILES[_name]
    DATASET_REGISTRY.register(DatasetEntry(
        name=_name,
        loader=_make_profile_loader(_profile),
        num_features=_profile.num_features,
        train_length=_profile.train_length,
        test_length=_profile.test_length,
        anomaly_fraction=_profile.anomaly_fraction,
        citation=_PAPER_CITATIONS[_name],
        description=_profile.description,
        tags=("paper", "synthetic"),
    ))


# --- Richer synthetic regimes (drift, regime change, seasonal load) --------
#
# These stress the scenarios the ROADMAP's drift-adaptation work targets;
# they are tagged "regime" (not "paper") so the paper-table sweeps stay the
# canonical six while `repro bench` can pull them into the matrix.

_REGIME_PROFILES = {
    "DRIFT": (DatasetProfile(
        name="DRIFT", num_features=16, train_length=3000, test_length=3000,
        anomaly_fraction=0.06,
        anomaly_types=("spike", "level_shift", "noise_burst"),
        num_factors=4, num_groups=4, noise_scale=0.08, discrete_fraction=0.0,
        min_anomaly_length=8, max_anomaly_length=50,
        description="Slow nonlinear mean drift per channel (sensor "
                    "degradation / load growth) under sparse incidents.",
    ), generate_drift_mts),
    "REGIME": (DatasetProfile(
        name="REGIME", num_features=20, train_length=3000, test_length=3000,
        anomaly_fraction=0.08,
        anomaly_types=("correlation_break", "level_shift", "spike"),
        num_factors=5, num_groups=5, noise_scale=0.1, discrete_fraction=0.1,
        min_anomaly_length=10, max_anomaly_length=60,
        description="Abrupt non-anomalous operating-regime changes "
                    "(deployments) that detectors must not flag wholesale.",
    ), generate_regime_change_mts),
    "SEASONAL": (DatasetProfile(
        name="SEASONAL", num_features=12, train_length=3500, test_length=3500,
        anomaly_fraction=0.05,
        anomaly_types=("amplitude", "spike", "flatline"),
        num_factors=4, num_groups=3, noise_scale=0.07, discrete_fraction=0.0,
        min_anomaly_length=6, max_anomaly_length=40,
        description="Plateaued daily/weekly load envelope modulating "
                    "request-driven channels.",
    ), generate_seasonal_load_mts),
}

for _name, (_profile, _generator) in _REGIME_PROFILES.items():
    DATASET_REGISTRY.register(DatasetEntry(
        name=_name,
        loader=_make_profile_loader(_profile, generator=_generator),
        num_features=_profile.num_features,
        train_length=_profile.train_length,
        test_length=_profile.test_length,
        anomaly_fraction=_profile.anomaly_fraction,
        citation="synthetic regime, this repository",
        description=_profile.description,
        tags=("regime", "synthetic"),
    ))


def list_datasets(tag: Optional[str] = None) -> List[str]:
    """Registered dataset names in registration order (paper analogues first).

    ``tag`` filters by registry tag — ``list_datasets("paper")`` is the
    paper's six-dataset comparison suite in table order.
    """
    return DATASET_REGISTRY.names(tag=tag)


def load_dataset(name: str, seed: int = 0, scale: float = 1.0) -> MTSDataset:
    """Build benchmark dataset ``name`` through the registry.

    Parameters
    ----------
    name:
        One of :func:`list_datasets` (case-insensitive, aliases allowed).
    seed:
        Seed of the deterministic generator; different seeds give different
        but statistically matched instances (used for the multi-run averages).
    scale:
        Multiplier on the train/test lengths.  The defaults correspond to
        ``scale=1.0``; benchmarks use smaller values to stay CPU-friendly.

    The legacy names (SMD, PSM, SWaT, SMAP, MSL, GCP) are bit-identical to
    the pre-registry ``load_dataset`` for every ``(seed, scale)``.
    """
    return DATASET_REGISTRY.load(name, seed=seed, scale=scale)
