"""Synthetic multivariate time-series generators.

The benchmark datasets used by the paper (SMD, PSM, MSL, SMAP, SWaT, GCP) are
not redistributable inside this offline repository, so
:mod:`repro.data.datasets` builds statistical *analogues* of them on top of
the generator in this module.  The generator produces multivariate series
with the ingredients that drive anomaly-detection difficulty in the real
datasets:

* multiple seasonal components per channel with channel-specific phases,
* slow trends and regime changes,
* autocorrelated (AR(1)) observation noise,
* cross-channel correlation through a low-rank mixing of shared latent
  factors, organised into channel groups (mimicking sensors attached to the
  same physical subsystem).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "MTSConfig",
    "generate_latent_factors",
    "generate_mts",
    "generate_drift_mts",
    "generate_regime_change_mts",
    "generate_seasonal_load_mts",
]


@dataclass
class MTSConfig:
    """Configuration of the synthetic multivariate time-series generator.

    Attributes
    ----------
    length:
        Number of timestamps to generate.
    num_features:
        Number of channels ``K``.
    num_factors:
        Number of shared latent factors that induce inter-channel correlation.
    periods:
        Seasonal periods (in timestamps) of the latent factors.  Factors cycle
        through this list.
    factor_strength:
        Scale of the shared-factor contribution relative to channel noise.
    noise_scale:
        Standard deviation of the per-channel AR(1) observation noise.
    ar_coefficient:
        AR(1) coefficient of the observation noise (0 disables autocorrelation).
    trend_scale:
        Magnitude of the per-channel linear trend over the full series.
    num_groups:
        Channels are split into this many groups; channels in the same group
        load mainly on the same factors, which creates the block-correlation
        structure seen in server/spacecraft telemetry.
    discrete_fraction:
        Fraction of channels rendered as saturated/step-like signals
        (actuator-style channels, prominent in SWaT and SMAP).
    """

    length: int
    num_features: int
    num_factors: int = 4
    periods: Sequence[int] = (24, 96, 288)
    factor_strength: float = 1.0
    noise_scale: float = 0.1
    ar_coefficient: float = 0.7
    trend_scale: float = 0.1
    num_groups: int = 4
    discrete_fraction: float = 0.0


def generate_latent_factors(config: MTSConfig, rng: np.random.Generator,
                            phase_offset: float = 0.0) -> np.ndarray:
    """Generate ``(length, num_factors)`` smooth latent factor trajectories."""
    t = np.arange(config.length, dtype=np.float64)
    factors = np.zeros((config.length, config.num_factors))
    for j in range(config.num_factors):
        period = config.periods[j % len(config.periods)]
        phase = phase_offset + rng.uniform(0, 2 * np.pi)
        harmonic = np.sin(2 * np.pi * t / period + phase)
        second = 0.4 * np.sin(4 * np.pi * t / period + phase * 0.5)
        # A slow random walk gives each factor non-stationary character.
        walk = np.cumsum(rng.normal(0, 0.01, size=config.length))
        walk -= np.linspace(walk[0], walk[-1], config.length)
        factors[:, j] = harmonic + second + walk
    return factors


def _ar1_noise(length: int, num_features: int, scale: float, coefficient: float,
               rng: np.random.Generator) -> np.ndarray:
    """Vectorised AR(1) noise of shape ``(length, num_features)``."""
    white = rng.normal(0.0, scale, size=(length, num_features))
    if coefficient <= 0:
        return white
    noise = np.zeros_like(white)
    noise[0] = white[0]
    for t in range(1, length):
        noise[t] = coefficient * noise[t - 1] + white[t]
    return noise


def generate_mts(config: MTSConfig, rng: Optional[np.random.Generator] = None,
                 phase_offset: float = 0.0) -> np.ndarray:
    """Generate a ``(length, num_features)`` multivariate time series.

    ``phase_offset`` allows a train and test split to share the same loading
    matrix statistics while not being identical copies; callers typically use
    one generator instance (one ``rng``) for both splits so the channel
    structure is consistent.
    """
    rng = rng or np.random.default_rng()
    factors = generate_latent_factors(config, rng, phase_offset=phase_offset)

    # Group-structured loading matrix: channels in a group share factor loadings.
    loadings = np.zeros((config.num_factors, config.num_features))
    groups = np.array_split(np.arange(config.num_features), max(config.num_groups, 1))
    for g, channel_ids in enumerate(groups):
        primary = g % config.num_factors
        for k in channel_ids:
            loadings[primary, k] = rng.uniform(0.7, 1.3) * config.factor_strength
            secondary = rng.integers(0, config.num_factors)
            loadings[secondary, k] += rng.uniform(0.0, 0.3) * config.factor_strength

    series = factors @ loadings
    series += _ar1_noise(config.length, config.num_features, config.noise_scale,
                         config.ar_coefficient, rng)

    # Channel-specific offsets, scales and trends.
    offsets = rng.uniform(-1.0, 1.0, size=config.num_features)
    scales = rng.uniform(0.5, 1.5, size=config.num_features)
    trend = np.linspace(0.0, 1.0, config.length)[:, None] * rng.uniform(
        -config.trend_scale, config.trend_scale, size=config.num_features
    )
    series = series * scales + offsets + trend

    # Some channels behave like actuators / saturated discrete states.
    num_discrete = int(round(config.discrete_fraction * config.num_features))
    if num_discrete > 0:
        discrete_channels = rng.choice(config.num_features, size=num_discrete, replace=False)
        for k in discrete_channels:
            series[:, k] = np.where(series[:, k] > np.median(series[:, k]), 1.0, 0.0)
            series[:, k] += rng.normal(0, 0.01, size=config.length)
    return series


def generate_drift_mts(config: MTSConfig, rng: Optional[np.random.Generator] = None,
                       phase_offset: float = 0.0,
                       drift_strength: float = 0.6) -> np.ndarray:
    """A series whose channel means drift slowly and nonlinearly over time.

    Models the sensor-degradation / slow-load-growth regime that online
    adaptation has to survive: each channel gets a monotone drift component
    with a random curvature plus a low-frequency wobble, on top of the
    standard :func:`generate_mts` structure.
    """
    rng = rng or np.random.default_rng()
    series = generate_mts(config, rng, phase_offset=phase_offset)
    t = np.linspace(0.0, 1.0, config.length)[:, None]
    direction = rng.uniform(-1.0, 1.0, size=config.num_features)
    curvature = rng.uniform(0.5, 2.5, size=config.num_features)
    wobble_freq = rng.uniform(0.5, 1.5, size=config.num_features)
    drift = direction * t ** curvature
    wobble = 0.3 * np.sin(2 * np.pi * t * wobble_freq + phase_offset)
    return series + drift_strength * (drift + wobble)


def generate_regime_change_mts(config: MTSConfig,
                               rng: Optional[np.random.Generator] = None,
                               phase_offset: float = 0.0,
                               num_regimes: int = 3) -> np.ndarray:
    """A series that switches operating regime at random change points.

    The channel structure stays fixed but each regime re-scales and
    re-offsets every channel (a deployment/config-change analogue), which
    produces abrupt non-anomalous distribution shifts detectors must not
    flag wholesale.
    """
    if num_regimes < 1:
        raise ValueError("num_regimes must be at least 1")
    rng = rng or np.random.default_rng()
    series = generate_mts(config, rng, phase_offset=phase_offset)
    low = max(config.length // (num_regimes * 4), 1)
    boundaries = np.sort(rng.integers(low, config.length, size=num_regimes - 1))
    start = 0
    for end in list(boundaries) + [config.length]:
        gain = rng.uniform(0.7, 1.3, size=config.num_features)
        offset = rng.uniform(-0.5, 0.5, size=config.num_features)
        series[start:end] = series[start:end] * gain + offset
        start = int(end)
    return series


def generate_seasonal_load_mts(config: MTSConfig,
                               rng: Optional[np.random.Generator] = None,
                               phase_offset: float = 0.0,
                               load_strength: float = 1.2) -> np.ndarray:
    """A series modulated by a plateaued daily/weekly load envelope.

    Mimics user-facing traffic: a clipped diurnal cycle (plateaus at peak
    and trough) further modulated by a weekly rhythm, with a per-channel
    sensitivity so infrastructure channels react less than request-driven
    ones.
    """
    rng = rng or np.random.default_rng()
    series = generate_mts(config, rng, phase_offset=phase_offset)
    t = np.arange(config.length, dtype=np.float64)
    daily = config.periods[-1] if config.periods else 288
    weekly = daily * 7
    load = 0.5 * (1.0 + np.sin(2 * np.pi * t / daily + phase_offset))
    load = np.clip(1.4 * load - 0.2, 0.0, 1.0)
    weekly_mod = 0.75 + 0.25 * np.sin(2 * np.pi * t / weekly + 0.5 * phase_offset)
    envelope = (0.4 + load_strength * load * weekly_mod)[:, None]
    sensitivity = rng.uniform(0.3, 1.0, size=config.num_features)
    return series * (1.0 + (envelope - 1.0) * sensitivity)
