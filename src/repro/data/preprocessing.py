"""Scaling and normalisation utilities for multivariate time series."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler:
    """Per-channel standardisation to zero mean and unit variance.

    Statistics are estimated on the training split only and reused for the
    test split, matching the protocol of the paper's baselines.
    """

    def __init__(self, eps: float = 1e-8) -> None:
        self.eps = eps
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("expected a 2-D array of shape (time, features)")
        self.mean_ = data.mean(axis=0)
        self.std_ = data.std(axis=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        data = np.asarray(data, dtype=np.float64)
        return (data - self.mean_) / (self.std_ + self.eps)

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(data, dtype=np.float64) * (self.std_ + self.eps) + self.mean_

    def _check_fitted(self) -> None:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler has not been fitted")


class MinMaxScaler:
    """Per-channel scaling into ``[0, 1]`` based on training-split extrema.

    Test values outside the training range are clipped to a configurable
    margin, which mirrors how the original ImDiffusion preprocessing guards
    against extreme test outliers destroying the scale.
    """

    def __init__(self, clip_margin: float = 2.0, eps: float = 1e-8) -> None:
        self.clip_margin = clip_margin
        self.eps = eps
        self.min_: Optional[np.ndarray] = None
        self.max_: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("expected a 2-D array of shape (time, features)")
        self.min_ = data.min(axis=0)
        self.max_ = data.max(axis=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        data = np.asarray(data, dtype=np.float64)
        span = self.max_ - self.min_ + self.eps
        scaled = (data - self.min_) / span
        if self.clip_margin is not None:
            scaled = np.clip(scaled, -self.clip_margin, 1.0 + self.clip_margin)
        return scaled

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        span = self.max_ - self.min_ + self.eps
        return np.asarray(data, dtype=np.float64) * span + self.min_

    def _check_fitted(self) -> None:
        if self.min_ is None or self.max_ is None:
            raise RuntimeError("scaler has not been fitted")
