"""Simulated production telemetry: the Microsoft email-delivery scenario.

Section 6 of the paper deploys ImDiffusion as a latency monitor inside a
large email-delivery microservice system (hundreds of services, latency
sampled every 30 seconds) and compares it against a legacy detector over four
months.  The raw telemetry is confidential, so this module provides a
simulator that produces the same *kind* of signal:

* per-microservice latency channels with strong diurnal / weekly seasonality,
* heavy-tailed noise (latency is log-normal-ish),
* occasional deployment-induced level changes that are *not* incidents,
* injected incidents (latency regressions) that the detectors must flag.

The simulator exposes both a batch interface (for training) and a streaming
iterator (for the online evaluation harness in :mod:`repro.production`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from .anomalies import AnomalySegment

__all__ = ["ProductionConfig", "ProductionTrace", "MicroserviceLatencySimulator"]

SAMPLES_PER_DAY = 2880  # 30-second sampling, as in the paper.


@dataclass(frozen=True)
class ProductionConfig:
    """Configuration of the microservice latency simulator.

    ``num_services`` is the number of monitored microservices (each
    contributes one latency channel); the paper's system has >600, the default
    here is much smaller so the online benchmark remains quick, but the value
    is configurable.
    """

    num_services: int = 12
    train_days: float = 2.0
    test_days: float = 2.0
    samples_per_day: int = SAMPLES_PER_DAY // 30  # compress a day into 96 samples
    base_latency_ms: float = 120.0
    seasonal_amplitude: float = 0.35
    noise_scale: float = 0.08
    incident_rate_per_day: float = 1.0
    incident_min_length: int = 3
    incident_max_length: int = 10
    deployment_rate_per_day: float = 1.0
    benign_spike_rate_per_day: float = 6.0
    seed: int = 0


@dataclass
class ProductionTrace:
    """A generated production trace: train split, test split and incident labels."""

    train: np.ndarray
    test: np.ndarray
    test_labels: np.ndarray
    segments: List[AnomalySegment] = field(default_factory=list)

    @property
    def num_services(self) -> int:
        return int(self.train.shape[1])


class MicroserviceLatencySimulator:
    """Generate email-delivery-style latency telemetry with injected incidents."""

    def __init__(self, config: Optional[ProductionConfig] = None) -> None:
        self.config = config or ProductionConfig()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def _baseline(self, length: int, phase: float) -> np.ndarray:
        """Diurnal latency baseline for all services, shape ``(length, services)``."""
        cfg = self.config
        t = np.arange(length, dtype=np.float64)
        day = cfg.samples_per_day
        services = cfg.num_services
        base = np.zeros((length, services))
        for s in range(services):
            service_phase = phase + self._rng.uniform(0, 2 * np.pi)
            diurnal = np.sin(2 * np.pi * t / day + service_phase)
            weekly = 0.3 * np.sin(2 * np.pi * t / (7 * day) + service_phase / 2)
            level = cfg.base_latency_ms * self._rng.uniform(0.6, 1.8)
            season = 1.0 + cfg.seasonal_amplitude * (0.7 * diurnal + weekly)
            noise = np.exp(self._rng.normal(0.0, cfg.noise_scale, size=length))
            base[:, s] = level * season * noise
        return base

    def _inject_deployments(self, series: np.ndarray) -> None:
        """Benign level changes after deployments — should not be flagged."""
        cfg = self.config
        length = series.shape[0]
        days = length / cfg.samples_per_day
        count = self._rng.poisson(cfg.deployment_rate_per_day * days)
        for _ in range(count):
            start = int(self._rng.integers(0, length - 1))
            service = int(self._rng.integers(0, cfg.num_services))
            factor = self._rng.uniform(0.85, 1.18)
            series[start:, service] *= factor

    def _inject_benign_spikes(self, series: np.ndarray) -> None:
        """Single-sample latency spikes (GC pauses, cold caches) — not incidents.

        These are the transient blips that plague threshold-style monitors with
        false alarms in real deployments; they affect one service for one
        sample and must *not* be labelled anomalous.
        """
        cfg = self.config
        length = series.shape[0]
        days = length / cfg.samples_per_day
        count = self._rng.poisson(cfg.benign_spike_rate_per_day * days)
        for _ in range(count):
            t = int(self._rng.integers(0, length))
            service = int(self._rng.integers(0, cfg.num_services))
            series[t, service] *= self._rng.uniform(2.0, 3.5)

    def _inject_incidents(self, series: np.ndarray) -> Tuple[np.ndarray, List[AnomalySegment]]:
        """Latency regressions: sustained multiplicative slowdowns on several services."""
        cfg = self.config
        length = series.shape[0]
        labels = np.zeros(length, dtype=np.int64)
        segments: List[AnomalySegment] = []
        days = length / cfg.samples_per_day
        count = max(1, self._rng.poisson(cfg.incident_rate_per_day * days))
        attempts = 0
        while len(segments) < count and attempts < 200:
            attempts += 1
            seg_len = int(self._rng.integers(cfg.incident_min_length, cfg.incident_max_length + 1))
            start = int(self._rng.integers(1, max(2, length - seg_len)))
            end = min(start + seg_len, length)
            if labels[max(0, start - 3):min(length, end + 3)].any():
                continue
            impacted = self._rng.choice(
                cfg.num_services,
                size=max(1, cfg.num_services // 3),
                replace=False,
            )
            severity = self._rng.uniform(1.8, 4.0)
            ramp = np.linspace(1.0, severity, end - start)[:, None]
            series[start:end, impacted] *= ramp
            labels[start:end] = 1
            segments.append(AnomalySegment(start, end, "latency_regression",
                                           tuple(int(i) for i in impacted)))
        segments.sort(key=lambda s: s.start)
        return labels, segments

    # ------------------------------------------------------------------
    def generate(self) -> ProductionTrace:
        """Generate a full train/test trace with incident labels on the test split."""
        cfg = self.config
        train_length = int(cfg.train_days * cfg.samples_per_day)
        test_length = int(cfg.test_days * cfg.samples_per_day)
        train = self._baseline(train_length, phase=0.0)
        self._inject_deployments(train)
        self._inject_benign_spikes(train)
        test = self._baseline(test_length, phase=0.9)
        self._inject_deployments(test)
        self._inject_benign_spikes(test)
        labels, segments = self._inject_incidents(test)
        return ProductionTrace(train=train, test=test, test_labels=labels, segments=segments)

    def stream(self, trace: Optional[ProductionTrace] = None) -> Iterator[Tuple[int, np.ndarray, int]]:
        """Yield the test split one timestamp at a time: ``(index, values, label)``.

        This is the interface consumed by the online evaluation harness; it
        emulates the 30-second polling loop of the production monitor.
        """
        trace = trace or self.generate()
        for i in range(trace.test.shape[0]):
            yield i, trace.test[i], int(trace.test_labels[i])
