"""Dataset registry: one uniform loader interface with per-entry metadata.

Every benchmark the repro can evaluate on — the paper's six synthetic
analogues, the richer synthetic regimes and any on-disk suite mounted through
a file-layout adapter — is registered here as a :class:`DatasetEntry`.  An
entry couples a loader callable with the metadata the bench matrix and the
CLI need (feature count, canonical train/test lengths, anomaly ratio,
citation, tags), in the spirit of the RelBench registry design.

Determinism contract
--------------------
``DatasetRegistry.load(name, seed, scale)`` derives the generator as

    np.random.default_rng(zlib.crc32(f"{canonical_name}-{seed}") & 0xFFFFFFFF)

and hands it to the entry's loader.  ``zlib.crc32`` is stable across
processes and Python versions (unlike the builtin ``str`` hash), so the same
``(name, seed, scale)`` triple produces bit-identical arrays in every call
and every process — the property the multi-run evaluation protocol and the
multiprocess training/scoring engines rely on.  File-backed entries ignore
the generator and are deterministic by construction.

Names are resolved case-insensitively with dashes stripped, plus any
per-entry aliases (``load("swat")`` resolves to ``"SWaT"``), preserving the
legacy ``load_dataset`` behaviour bit-for-bit.
"""

from __future__ import annotations

import ast
import csv
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DatasetEntry",
    "DatasetRegistry",
    "DATASET_REGISTRY",
    "register_dataset",
    "dataset_rng",
    "load_smd_tree",
    "load_nasa_tree",
    "register_directory",
]


def _normalise(name: str) -> str:
    """Lookup key of a dataset name: case-insensitive, dashes stripped."""
    return name.upper().replace("-", "")


def dataset_rng(name: str, seed: int) -> np.random.Generator:
    """The registry's deterministic seed contract (see module docstring)."""
    return np.random.default_rng(zlib.crc32(f"{name}-{seed}".encode()) & 0xFFFFFFFF)


@dataclass(frozen=True)
class DatasetEntry:
    """One registered dataset: a loader plus the metadata shown to users.

    Attributes
    ----------
    name:
        Canonical identifier (e.g. ``"SMD"``).
    loader:
        ``loader(rng, scale) -> MTSDataset``.  ``rng`` follows the seed
        contract of :func:`dataset_rng`; ``scale`` multiplies the canonical
        lengths (file-backed loaders may ignore both).
    num_features / train_length / test_length / anomaly_fraction:
        Canonical split metadata at ``scale=1.0``.
    citation:
        Where the dataset (or the analogue's statistical profile) comes from.
    tags:
        Free-form labels used for filtering — the paper's six analogues are
        tagged ``"paper"``, the extra synthetic regimes ``"regime"``,
        directory-mounted suites ``"external"``.
    aliases:
        Alternative lookup names (normalised like primary names).
    """

    name: str
    loader: Callable[[np.random.Generator, float], "object"]
    num_features: int
    train_length: int
    test_length: int
    anomaly_fraction: float
    citation: str = ""
    description: str = ""
    tags: Tuple[str, ...] = ()
    aliases: Tuple[str, ...] = ()


class DatasetRegistry:
    """Ordered name → :class:`DatasetEntry` mapping with alias resolution.

    Datasets register once (at import time for the built-ins) and load
    many times under the deterministic seed contract: the same
    ``(name, seed, scale)`` triple always produces bit-identical arrays.

    Examples
    --------
    >>> from repro.data import DATASET_REGISTRY
    >>> "SMD" in DATASET_REGISTRY
    True
    >>> DATASET_REGISTRY.get("smd").num_features
    38
    >>> dataset = DATASET_REGISTRY.load("SMD", seed=0, scale=0.05)
    >>> dataset.train.shape[1]
    38
    """

    def __init__(self) -> None:
        self._entries: Dict[str, DatasetEntry] = {}
        self._lookup: Dict[str, str] = {}

    def register(self, entry: DatasetEntry) -> DatasetEntry:
        """Add an entry; its name and every alias must be unused."""
        keys = [_normalise(entry.name)] + [_normalise(a) for a in entry.aliases]
        for key in keys:
            if key in self._lookup:
                raise ValueError(
                    f"dataset name/alias {key!r} already registered "
                    f"(by {self._lookup[key]!r})")
        self._entries[entry.name] = entry
        for key in keys:
            self._lookup[key] = entry.name
        return entry

    def unregister(self, name: str) -> None:
        """Remove an entry (used by tests and scratch registrations)."""
        entry = self.get(name)
        del self._entries[entry.name]
        self._lookup = {k: v for k, v in self._lookup.items() if v != entry.name}

    def __contains__(self, name: str) -> bool:
        return _normalise(name) in self._lookup

    def names(self, tag: Optional[str] = None) -> List[str]:
        """Registered names in registration order, optionally filtered by tag."""
        return [name for name, entry in self._entries.items()
                if tag is None or tag in entry.tags]

    def entries(self, tag: Optional[str] = None) -> List[DatasetEntry]:
        """Registered entries in registration order, optionally filtered by tag."""
        return [self._entries[name] for name in self.names(tag)]

    def get(self, name: str) -> DatasetEntry:
        """Resolve a name or alias (case/punctuation-insensitive) to its entry."""
        key = _normalise(name)
        if key not in self._lookup:
            raise KeyError(f"unknown dataset {name!r}; available: {self.names()}")
        return self._entries[self._lookup[key]]

    def load(self, name: str, seed: int = 0, scale: float = 1.0):
        """Build dataset ``name`` under the deterministic seed contract."""
        entry = self.get(name)
        if scale <= 0:
            raise ValueError("scale must be positive")
        dataset = entry.loader(dataset_rng(entry.name, seed), scale)
        if dataset.name != entry.name:
            dataset.name = entry.name
        return dataset


#: The process-wide registry.  ``repro.data.datasets`` populates it with the
#: paper's six analogues and the synthetic regime datasets at import time.
DATASET_REGISTRY = DatasetRegistry()


def register_dataset(name: str, *, num_features: int, train_length: int,
                     test_length: int, anomaly_fraction: float,
                     citation: str = "", description: str = "",
                     tags: Sequence[str] = (), aliases: Sequence[str] = (),
                     registry: Optional[DatasetRegistry] = None):
    """Decorator registering ``loader(rng, scale) -> MTSDataset`` under ``name``.

    >>> @register_dataset("MYSET", num_features=8, train_length=1000,
    ...                   test_length=1000, anomaly_fraction=0.1,
    ...                   tags=("synthetic",))
    ... def _load_myset(rng, scale):
    ...     ...
    """

    def wrap(loader):
        (registry or DATASET_REGISTRY).register(DatasetEntry(
            name=name, loader=loader, num_features=num_features,
            train_length=train_length, test_length=test_length,
            anomaly_fraction=anomaly_fraction, citation=citation,
            description=description, tags=tuple(tags), aliases=tuple(aliases),
        ))
        return loader

    return wrap


# ---------------------------------------------------------------------------
# File-layout adapters
# ---------------------------------------------------------------------------

def _segments_from_labels(labels: np.ndarray):
    """Recover contiguous ``AnomalySegment`` intervals from a binary vector."""
    from .anomalies import AnomalySegment

    labels = np.asarray(labels).astype(np.int64).reshape(-1)
    segments = []
    boundaries = np.flatnonzero(np.diff(np.concatenate(([0], labels, [0]))))
    for start, end in zip(boundaries[0::2], boundaries[1::2]):
        segments.append(AnomalySegment(start=int(start), end=int(end),
                                       kind="labelled", channels=()))
    return segments


def _as_2d(array: np.ndarray) -> np.ndarray:
    array = np.asarray(array, dtype=np.float64)
    if array.ndim == 1:
        array = array[:, None]
    return array


def load_smd_tree(root, entity: str, name: Optional[str] = None):
    """Load one entity from an SMD-shaped directory tree.

    Layout (the Server Machine Dataset distribution format)::

        root/train/<entity>.txt        comma-separated floats, one row per step
        root/test/<entity>.txt
        root/test_label/<entity>.txt   one 0/1 label per test step
    """
    from .datasets import MTSDataset

    root = Path(root)
    train = _as_2d(np.loadtxt(root / "train" / f"{entity}.txt", delimiter=",", ndmin=2))
    test = _as_2d(np.loadtxt(root / "test" / f"{entity}.txt", delimiter=",", ndmin=2))
    labels = np.loadtxt(root / "test_label" / f"{entity}.txt").astype(np.int64).reshape(-1)
    if labels.shape[0] != test.shape[0]:
        raise ValueError(
            f"label length {labels.shape[0]} != test length {test.shape[0]} "
            f"for entity {entity!r}")
    return MTSDataset(name=name or f"SMD:{entity}", train=train, test=test,
                      test_labels=labels, segments=_segments_from_labels(labels))


def load_nasa_tree(root, channel: str, name: Optional[str] = None):
    """Load one channel from a NASA SMAP/MSL-shaped directory tree.

    Layout (the telemanom distribution format)::

        root/train/<channel>.npy
        root/test/<channel>.npy
        root/labeled_anomalies.csv     columns chan_id, anomaly_sequences
                                       (a JSON-ish list of [start, end] pairs,
                                       end inclusive)
    """
    from .datasets import MTSDataset

    root = Path(root)
    train = _as_2d(np.load(root / "train" / f"{channel}.npy"))
    test = _as_2d(np.load(root / "test" / f"{channel}.npy"))
    labels = np.zeros(test.shape[0], dtype=np.int64)
    with open(root / "labeled_anomalies.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            if row["chan_id"] != channel:
                continue
            for start, end in ast.literal_eval(row["anomaly_sequences"]):
                labels[int(start):int(end) + 1] = 1
    return MTSDataset(name=name or f"NASA:{channel}", train=train, test=test,
                      test_labels=labels, segments=_segments_from_labels(labels))


_LAYOUT_ADAPTERS = {"smd": load_smd_tree, "nasa": load_nasa_tree}


def register_directory(name: str, root, layout: str, entity: str, *,
                       citation: str = "", description: str = "",
                       tags: Sequence[str] = ("external",),
                       aliases: Sequence[str] = (),
                       registry: Optional[DatasetRegistry] = None) -> DatasetEntry:
    """Mount one entity/channel of an on-disk suite as a registry entry.

    The tree is probed once to fill the metadata fields; the registered
    loader re-reads the files on every ``load`` (ignoring ``rng``/``scale``,
    which have no meaning for file-backed data).
    """
    if layout not in _LAYOUT_ADAPTERS:
        raise ValueError(f"unknown layout {layout!r}; available: {sorted(_LAYOUT_ADAPTERS)}")
    adapter = _LAYOUT_ADAPTERS[layout]
    probe = adapter(root, entity, name=name)

    def loader(rng, scale):
        return adapter(root, entity, name=name)

    entry = DatasetEntry(
        name=name, loader=loader, num_features=probe.num_features,
        train_length=int(probe.train.shape[0]), test_length=int(probe.test.shape[0]),
        anomaly_fraction=float(probe.test_labels.mean()), citation=citation,
        description=description or f"{layout.upper()}-layout tree at {root}",
        tags=tuple(tags), aliases=tuple(aliases),
    )
    return (registry or DATASET_REGISTRY).register(entry)
