"""Sliding-window utilities used by every detector in the repository."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["sliding_windows", "window_starts", "overlap_average", "label_windows"]


def window_starts(length: int, window_size: int, stride: int) -> np.ndarray:
    """Start indices of sliding windows, always including a final full window.

    The last window is anchored to ``length - window_size`` so every timestamp
    is covered even when ``length`` is not a multiple of ``stride``.
    """
    if window_size > length:
        raise ValueError(f"window_size {window_size} exceeds series length {length}")
    if stride <= 0:
        raise ValueError("stride must be positive")
    starts = list(range(0, length - window_size + 1, stride))
    last = length - window_size
    if starts[-1] != last:
        starts.append(last)
    return np.asarray(starts, dtype=np.int64)


def sliding_windows(series: np.ndarray, window_size: int, stride: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cut ``series`` of shape ``(time, features)`` into overlapping windows.

    Returns
    -------
    (windows, starts)
        ``windows`` has shape ``(num_windows, window_size, features)`` and
        ``starts`` the corresponding start indices.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2:
        raise ValueError("expected a 2-D array of shape (time, features)")
    starts = window_starts(series.shape[0], window_size, stride)
    windows = np.stack([series[s:s + window_size] for s in starts], axis=0)
    return windows, starts


def label_windows(labels: np.ndarray, window_size: int, stride: int) -> np.ndarray:
    """Window-level labels: a window is anomalous if any timestamp in it is."""
    labels = np.asarray(labels)
    starts = window_starts(labels.shape[0], window_size, stride)
    return np.asarray([int(labels[s:s + window_size].any()) for s in starts], dtype=np.int64)


def overlap_average(values: np.ndarray, starts: np.ndarray, length: int) -> np.ndarray:
    """Merge per-window values back into a per-timestamp series by averaging overlaps.

    Parameters
    ----------
    values:
        Array of shape ``(num_windows, window_size)`` or
        ``(num_windows, window_size, features)``.
    starts:
        Window start indices as returned by :func:`sliding_windows`.
    length:
        Length of the original series.
    """
    values = np.asarray(values, dtype=np.float64)
    window_size = values.shape[1]
    feature_shape = values.shape[2:]
    total = np.zeros((length,) + feature_shape, dtype=np.float64)
    counts = np.zeros(length, dtype=np.float64)
    for window_values, start in zip(values, starts):
        total[start:start + window_size] += window_values
        counts[start:start + window_size] += 1.0
    counts = np.maximum(counts, 1.0)
    if feature_shape:
        return total / counts[:, None]
    return total / counts
