"""Diffusion-model machinery: noise schedules, DDPM steps and imputation."""

from .ddpm import GaussianDiffusion
from .imputation import ImputationResult, ImputedDiffusion, ImputeNoise
from .samplers import (
    FullReverseSampler,
    ReverseSampler,
    StridedReverseSampler,
    make_sampler,
)
from .schedule import (
    NoiseSchedule,
    cosine_beta_schedule,
    linear_beta_schedule,
    make_schedule,
    quadratic_beta_schedule,
)

__all__ = [
    "GaussianDiffusion",
    "ImputationResult",
    "ImputeNoise",
    "ImputedDiffusion",
    "ReverseSampler",
    "FullReverseSampler",
    "StridedReverseSampler",
    "make_sampler",
    "NoiseSchedule",
    "cosine_beta_schedule",
    "linear_beta_schedule",
    "make_schedule",
    "quadratic_beta_schedule",
]
