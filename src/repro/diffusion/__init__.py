"""Diffusion-model machinery: noise schedules, DDPM steps and imputation."""

from .ddpm import GaussianDiffusion
from .imputation import ImputationResult, ImputedDiffusion
from .schedule import (
    NoiseSchedule,
    cosine_beta_schedule,
    linear_beta_schedule,
    make_schedule,
    quadratic_beta_schedule,
)

__all__ = [
    "GaussianDiffusion",
    "ImputationResult",
    "ImputedDiffusion",
    "NoiseSchedule",
    "cosine_beta_schedule",
    "linear_beta_schedule",
    "make_schedule",
    "quadratic_beta_schedule",
]
