"""Diffusion-model machinery: noise schedules, DDPM steps and imputation."""

from .ddpm import GaussianDiffusion, TransitionTable
from .imputation import ImputationResult, ImputedDiffusion, ImputeNoise
from .samplers import (
    DDIMSampler,
    FullReverseSampler,
    PNDMSampler,
    ReverseSampler,
    SPACINGS,
    StridedReverseSampler,
    make_sampler,
    register_sampler,
    sampler_help,
    sampler_names,
    trajectory_steps,
)
from .schedule import (
    NoiseSchedule,
    cosine_beta_schedule,
    linear_beta_schedule,
    make_schedule,
    quadratic_beta_schedule,
)

__all__ = [
    "GaussianDiffusion",
    "TransitionTable",
    "ImputationResult",
    "ImputeNoise",
    "ImputedDiffusion",
    "ReverseSampler",
    "FullReverseSampler",
    "StridedReverseSampler",
    "DDIMSampler",
    "PNDMSampler",
    "SPACINGS",
    "make_sampler",
    "register_sampler",
    "sampler_help",
    "sampler_names",
    "trajectory_steps",
    "NoiseSchedule",
    "cosine_beta_schedule",
    "linear_beta_schedule",
    "make_schedule",
    "quadratic_beta_schedule",
]
