"""Core DDPM machinery: forward corruption and reverse denoising steps.

The :class:`GaussianDiffusion` class implements the equations of Sec. 3.3 of
the paper on plain NumPy arrays (the denoiser network is the only learnable
component, handled by the caller).  It is intentionally model-agnostic: the
imputation-specific logic (masks, conditioning on forward noise) lives in
:mod:`repro.diffusion.imputation`.

Every step argument ``t`` is either a scalar (the classic single-timestep
form) or an integer array of shape ``(batch,)``, in which case the schedule
coefficients are gathered per sample and broadcast against the data — the
array form is what lets one denoiser/reverse-step call serve a micro-batch
whose windows sit at *different* points of the reverse trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from .schedule import NoiseSchedule

__all__ = ["GaussianDiffusion", "TransitionTable"]

StepLike = Union[int, np.integer, np.ndarray]


@dataclass(frozen=True)
class TransitionTable:
    """Per-trajectory reverse-transition coefficients, gathered once.

    One entry per visited step of a reverse trajectory.  The inner loop of
    :meth:`repro.diffusion.ImputedDiffusion.impute` repeats the same scalar
    schedule gathers and ``sqrt`` work at every step of every window batch;
    this table hoists all of it into a single vectorised precomputation so a
    reverse step reduces to indexed scalar-times-array arithmetic.

    Every coefficient is produced by *exactly* the float expression the
    un-cached code path evaluates (same operand order, same operations), so
    sampling through the table is bitwise identical to sampling without it —
    the equivalence the cross-sampler test suite pins down.

    Attributes
    ----------
    steps / prev_steps:
        The visited steps ``t`` (descending) and each entry's successor
        ``t_prev`` (0 terminates the trajectory).
    sqrt_alpha_bar / sqrt_one_minus_alpha_bar:
        ``sqrt(abar_t)`` and ``sqrt(1 - abar_t)`` — the ``x0``-from-``eps``
        coefficients at ``t``.
    sqrt_alpha / ddpm_eps_coef / ddpm_sigma:
        The exact DDPM posterior step at ``t``:
        ``mean = (x_t - ddpm_eps_coef * eps) / sqrt_alpha`` with noise scale
        ``ddpm_sigma = sqrt(posterior_variance(t))`` (valid for adjacent
        transitions ``t -> t-1``).
    jump_x0_coef / jump_eps_coef / jump_sigma:
        The (generalised) DDIM transition to ``t_prev``:
        ``x_prev = jump_x0_coef * x0_hat + jump_eps_coef * eps
        + jump_sigma * z`` where ``jump_x0_coef = sqrt(abar_prev)``,
        ``jump_sigma`` is the DDIM ``sigma_t(eta)`` and ``jump_eps_coef =
        sqrt(1 - abar_prev - jump_sigma**2)``.  At ``eta = 0`` this is the
        deterministic jump rule bit for bit; terminal entries
        (``t_prev == 0``) use ``abar_prev = 1``.
    eta:
        The DDIM noise scale the jump columns were built for.
    """

    steps: Tuple[int, ...]
    prev_steps: Tuple[int, ...]
    eta: float
    sqrt_alpha_bar: np.ndarray
    sqrt_one_minus_alpha_bar: np.ndarray
    sqrt_alpha: np.ndarray
    ddpm_eps_coef: np.ndarray
    ddpm_sigma: np.ndarray
    jump_x0_coef: np.ndarray
    jump_eps_coef: np.ndarray
    jump_sigma: np.ndarray

    def __len__(self) -> int:
        return len(self.steps)


class GaussianDiffusion:
    """Forward / reverse process utilities for a fixed :class:`NoiseSchedule`.

    All step indices ``t`` are 1-based (``1 .. T``) to match the paper's
    notation; index ``t`` therefore reads array position ``t - 1``.  Scalar
    and array-valued ``t`` are both accepted everywhere (see module
    docstring).
    """

    def __init__(self, schedule: NoiseSchedule) -> None:
        self.schedule = schedule
        self._table_cache: Dict[Tuple[Tuple[int, ...], float], TransitionTable] = {}
        self._table_schedule: NoiseSchedule = schedule

    @property
    def num_steps(self) -> int:
        return self.schedule.num_steps

    def __getstate__(self):
        # The table cache is a pure derived quantity: drop it when pickling
        # (e.g. shipping a scoring spec to inference workers) so payload size
        # and content never depend on which trajectories ran first.
        state = self.__dict__.copy()
        state["_table_cache"] = {}
        state["_table_schedule"] = state["schedule"]
        return state

    # ------------------------------------------------------------------
    # Cached transition tables
    # ------------------------------------------------------------------
    def transition_table(self, trajectory: Sequence[int], eta: float = 0.0) -> TransitionTable:
        """The :class:`TransitionTable` of a reverse trajectory, cached.

        Tables are memoised per ``(trajectory, eta)`` and invalidated when
        :attr:`schedule` is replaced, so repeated ``impute`` calls — and the
        per-window-chunk calls of the sharded scoring engine — pay the
        schedule gathers and ``sqrt`` work exactly once.
        """
        key = (tuple(int(t) for t in trajectory), float(eta))
        if self._table_schedule is not self.schedule:
            self._table_cache = {}
            self._table_schedule = self.schedule
        table = self._table_cache.get(key)
        if table is None:
            table = self._build_transition_table(key[0], key[1])
            self._table_cache[key] = table
        return table

    def _build_transition_table(self, steps: Tuple[int, ...], eta: float) -> TransitionTable:
        if not steps:
            raise ValueError("trajectory must visit at least one step")
        for t in steps:
            self._check_step(t)
        sched = self.schedule
        idx = np.asarray(steps, dtype=np.int64) - 1
        prev_steps = tuple(steps[1:]) + (0,)
        prev_idx = np.asarray(prev_steps, dtype=np.int64) - 1  # -1 marks terminal
        alpha_bar = sched.alpha_bars[idx]
        # abar_0 := 1 for terminal transitions (the jump lands on clean data).
        alpha_bar_prev = np.where(prev_idx >= 0,
                                  sched.alpha_bars[np.maximum(prev_idx, 0)], 1.0)
        # Adjacent-step sigma via the schedule's own scalar path so the t == 1
        # special case (and every rounding) matches p_sample bit for bit.
        posterior_var = np.array([sched.posterior_variance(int(t)) for t in steps])
        # DDIM sigma_t(eta); 0 everywhere at eta = 0 and on terminal entries.
        jump_sigma = eta * np.sqrt((1.0 - alpha_bar_prev) / (1.0 - alpha_bar)) \
            * np.sqrt(np.maximum(1.0 - alpha_bar / alpha_bar_prev, 0.0))
        return TransitionTable(
            steps=tuple(steps),
            prev_steps=prev_steps,
            eta=float(eta),
            sqrt_alpha_bar=np.sqrt(alpha_bar),
            sqrt_one_minus_alpha_bar=np.sqrt(1.0 - alpha_bar),
            sqrt_alpha=np.sqrt(sched.alphas[idx]),
            ddpm_eps_coef=sched.betas[idx] / np.sqrt(1.0 - alpha_bar),
            ddpm_sigma=np.sqrt(posterior_var),
            jump_x0_coef=np.sqrt(alpha_bar_prev),
            jump_eps_coef=np.sqrt(np.maximum(1.0 - alpha_bar_prev - jump_sigma ** 2, 0.0)),
            jump_sigma=jump_sigma,
        )

    # ------------------------------------------------------------------
    # Forward process
    # ------------------------------------------------------------------
    def q_sample(self, x0: np.ndarray, t: StepLike, noise: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``x_t ~ q(x_t | x_0)`` in closed form.

        Returns ``(x_t, noise)`` where ``noise`` is the standard Gaussian used
        for the corruption (the regression target of the denoiser).  With
        array-valued ``t`` of shape ``(batch,)`` each sample ``x0[i]`` is
        corrupted to its own step ``t[i]``.
        """
        self._check_step(t)
        if noise is None:
            rng = rng or np.random.default_rng()
            noise = rng.standard_normal(x0.shape)
        alpha_bar = self._gather(self.schedule.alpha_bars, t, np.ndim(x0))
        x_t = np.sqrt(alpha_bar) * x0 + np.sqrt(1.0 - alpha_bar) * noise
        return x_t, noise

    def sample_timesteps(self, batch_size: int, rng: np.random.Generator) -> np.ndarray:
        """Uniformly sample training timesteps in ``1 .. T``."""
        return rng.integers(1, self.num_steps + 1, size=batch_size)

    # ------------------------------------------------------------------
    # Reverse process
    # ------------------------------------------------------------------
    def predict_x0_from_eps(self, x_t: np.ndarray, t: StepLike, eps: np.ndarray) -> np.ndarray:
        """Recover the implied clean sample from a noise prediction."""
        self._check_step(t)
        alpha_bar = self._gather(self.schedule.alpha_bars, t, np.ndim(x_t))
        return (x_t - np.sqrt(1.0 - alpha_bar) * eps) / np.sqrt(alpha_bar)

    def posterior_mean_from_eps(self, x_t: np.ndarray, t: StepLike, eps: np.ndarray) -> np.ndarray:
        """Mean of ``p(x_{t-1} | x_t)`` with the DDPM fixed-variance parameterisation (Eq. 5)."""
        self._check_step(t)
        ndim = np.ndim(x_t)
        alpha = self._gather(self.schedule.alphas, t, ndim)
        alpha_bar = self._gather(self.schedule.alpha_bars, t, ndim)
        beta = self._gather(self.schedule.betas, t, ndim)
        return (x_t - beta / np.sqrt(1.0 - alpha_bar) * eps) / np.sqrt(alpha)

    def p_mean_variance(self, x_t: np.ndarray, t: StepLike,
                        eps: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Mean and variance of the reverse transition ``p(x_{t-1} | x_t)``.

        The variance is the schedule's posterior variance
        :math:`\\tilde\\beta_t`, broadcastable against ``x_t`` (a scalar for
        scalar ``t``, shape ``(batch, 1, ...)`` for array ``t``).
        """
        mean = self.posterior_mean_from_eps(x_t, t, eps)
        variance = self.schedule.posterior_variance(t)
        if np.ndim(t) > 0:
            variance = np.reshape(variance, np.shape(t) + (1,) * (np.ndim(x_t) - 1))
        return mean, variance

    def p_sample(self, x_t: np.ndarray, t: StepLike, eps: np.ndarray,
                 rng: Optional[np.random.Generator] = None,
                 deterministic: bool = False,
                 noise: Optional[np.ndarray] = None) -> np.ndarray:
        """One reverse step: sample ``x_{t-1}`` given ``x_t`` and the predicted noise.

        With array-valued ``t`` every sample takes its own reverse step; rows
        at ``t == 1`` receive the posterior mean without added noise, exactly
        as in the scalar case.  ``noise`` optionally injects the transition's
        standard-normal draw (shape of ``x_t``); supplying the same values the
        internal draw would have produced is bit-identical to drawing here —
        this is how the sharded inference engine pre-draws all randomness in
        the parent process.
        """
        mean = self.posterior_mean_from_eps(x_t, t, eps)
        t_arr = np.asarray(t)
        if deterministic or np.all(t_arr == 1):
            return mean
        sigma = np.sqrt(self.schedule.posterior_variance(t))
        if noise is None:
            rng = rng or np.random.default_rng()
            noise = rng.standard_normal(x_t.shape)
        if t_arr.ndim == 0:
            return mean + sigma * noise
        keep = (t_arr > 1).astype(np.float64)
        shape = t_arr.shape + (1,) * (np.ndim(x_t) - 1)
        return mean + np.reshape(sigma * keep, shape) * noise

    def prior_sample(self, shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Sample ``x_T`` from the standard-normal prior."""
        rng = rng or np.random.default_rng()
        return rng.standard_normal(shape)

    # ------------------------------------------------------------------
    @staticmethod
    def _gather(values: np.ndarray, t: StepLike, ndim: int):
        """Schedule coefficients at step(s) ``t``, broadcastable to the data.

        Scalar ``t`` returns the plain coefficient; a ``(batch,)`` array
        returns the gathered coefficients reshaped to ``(batch, 1, ..., 1)``
        so they broadcast against ``(batch, ...)`` data of rank ``ndim``.
        """
        t_arr = np.asarray(t)
        if t_arr.ndim == 0:
            return values[int(t_arr) - 1]
        gathered = values[t_arr.astype(np.int64) - 1]
        return gathered.reshape(t_arr.shape + (1,) * (ndim - 1))

    def _check_step(self, t: StepLike) -> None:
        t_arr = np.asarray(t)
        if t_arr.ndim > 1:
            raise ValueError("step t must be a scalar or a 1-D array of shape (batch,)")
        if np.any(t_arr < 1) or np.any(t_arr > self.num_steps):
            raise ValueError(f"step {t} outside the valid range 1..{self.num_steps}")
