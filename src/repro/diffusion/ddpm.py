"""Core DDPM machinery: forward corruption and reverse denoising steps.

The :class:`GaussianDiffusion` class implements the equations of Sec. 3.3 of
the paper on plain NumPy arrays (the denoiser network is the only learnable
component, handled by the caller).  It is intentionally model-agnostic: the
imputation-specific logic (masks, conditioning on forward noise) lives in
:mod:`repro.diffusion.imputation`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .schedule import NoiseSchedule

__all__ = ["GaussianDiffusion"]


class GaussianDiffusion:
    """Forward / reverse process utilities for a fixed :class:`NoiseSchedule`.

    All step indices ``t`` are 1-based (``1 .. T``) to match the paper's
    notation; index ``t`` therefore reads array position ``t - 1``.
    """

    def __init__(self, schedule: NoiseSchedule) -> None:
        self.schedule = schedule

    @property
    def num_steps(self) -> int:
        return self.schedule.num_steps

    # ------------------------------------------------------------------
    # Forward process
    # ------------------------------------------------------------------
    def q_sample(self, x0: np.ndarray, t: int, noise: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``x_t ~ q(x_t | x_0)`` in closed form.

        Returns ``(x_t, noise)`` where ``noise`` is the standard Gaussian used
        for the corruption (the regression target of the denoiser).
        """
        self._check_step(t)
        if noise is None:
            rng = rng or np.random.default_rng()
            noise = rng.standard_normal(x0.shape)
        alpha_bar = self.schedule.alpha_bars[t - 1]
        x_t = np.sqrt(alpha_bar) * x0 + np.sqrt(1.0 - alpha_bar) * noise
        return x_t, noise

    def sample_timesteps(self, batch_size: int, rng: np.random.Generator) -> np.ndarray:
        """Uniformly sample training timesteps in ``1 .. T``."""
        return rng.integers(1, self.num_steps + 1, size=batch_size)

    # ------------------------------------------------------------------
    # Reverse process
    # ------------------------------------------------------------------
    def predict_x0_from_eps(self, x_t: np.ndarray, t: int, eps: np.ndarray) -> np.ndarray:
        """Recover the implied clean sample from a noise prediction."""
        self._check_step(t)
        alpha_bar = self.schedule.alpha_bars[t - 1]
        return (x_t - np.sqrt(1.0 - alpha_bar) * eps) / np.sqrt(alpha_bar)

    def posterior_mean_from_eps(self, x_t: np.ndarray, t: int, eps: np.ndarray) -> np.ndarray:
        """Mean of ``p(x_{t-1} | x_t)`` with the DDPM fixed-variance parameterisation (Eq. 5)."""
        self._check_step(t)
        alpha = self.schedule.alphas[t - 1]
        alpha_bar = self.schedule.alpha_bars[t - 1]
        beta = self.schedule.betas[t - 1]
        return (x_t - beta / np.sqrt(1.0 - alpha_bar) * eps) / np.sqrt(alpha)

    def p_sample(self, x_t: np.ndarray, t: int, eps: np.ndarray,
                 rng: Optional[np.random.Generator] = None,
                 deterministic: bool = False) -> np.ndarray:
        """One reverse step: sample ``x_{t-1}`` given ``x_t`` and the predicted noise."""
        mean = self.posterior_mean_from_eps(x_t, t, eps)
        if t == 1 or deterministic:
            return mean
        rng = rng or np.random.default_rng()
        sigma = np.sqrt(self.schedule.posterior_variance(t))
        return mean + sigma * rng.standard_normal(x_t.shape)

    def prior_sample(self, shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Sample ``x_T`` from the standard-normal prior."""
        rng = rng or np.random.default_rng()
        return rng.standard_normal(shape)

    # ------------------------------------------------------------------
    def _check_step(self, t: int) -> None:
        if not 1 <= t <= self.num_steps:
            raise ValueError(f"step {t} outside the valid range 1..{self.num_steps}")
