"""Imputed diffusion models (Sec. 4.1 of the paper).

This module couples the generic DDPM machinery with a denoiser network and a
masking strategy to perform *time-series imputation by diffusion*:

* **Unconditional** imputed diffusion (the ImDiffusion default): both masked
  and unmasked values are corrupted; the model only ever sees the forward
  noise of the unmasked region as a reference, never the raw values.  This
  widens the imputation-error gap between normal and anomalous points.
* **Conditional** imputed diffusion (the CSDI-style ablation): the clean
  unmasked values are given to the model directly.

The class operates on windows of shape ``(batch, window_length, num_features)``
with observation masks of the same shape (1 = observed, 0 = masked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Tensor, no_grad
from ..nn import functional as F
from .ddpm import GaussianDiffusion
from .samplers import FullReverseSampler, ReverseSampler

__all__ = ["ImputationResult", "ImputeNoise", "ImputedDiffusion"]

CONDITIONING_MODES = ("unconditional", "conditional")


@dataclass
class ImputationResult:
    """Output of a reverse-diffusion imputation pass.

    Attributes
    ----------
    final:
        The fully denoised windows, shape ``(batch, window_length, num_features)``.
        Observed positions carry the ground-truth values; masked positions the
        imputed values.
    intermediate:
        A list of ``(step, windows)`` pairs with the *partially* denoised
        prediction after each reverse step, ordered from the noisiest visited
        step down to 1.  These are the signals consumed by the ensemble
        voting mechanism.  Under a strided sampler the list holds one entry
        per *visited* step only — :meth:`steps` always reflects the actual
        trajectory, never the nominal ``T .. 1`` range.
    """

    final: np.ndarray
    intermediate: List[Tuple[int, np.ndarray]]

    def steps(self) -> List[int]:
        """Visited diffusion steps, descending (the sampler's trajectory)."""
        return [step for step, _ in self.intermediate]


@dataclass
class ImputeNoise:
    """Pre-drawn randomness of one :meth:`ImputedDiffusion.impute` call.

    Produced by :meth:`ImputedDiffusion.draw_impute_noise` with exactly the
    draws — same order, same shapes — that :meth:`~ImputedDiffusion.impute`
    makes internally, so a caller can draw once on a shared generator and run
    the reverse process rng-free (the sharded inference engine draws in the
    parent and computes in scoring workers).  All arrays are in the model's
    native ``(batch, K, L)`` layout; :meth:`shard` slices every component
    along the batch axis so a payload shards alongside its windows.

    Attributes
    ----------
    prior:
        The ``x_T`` prior sample, shape ``(batch, K, L)``.
    reference:
        Per visited step, the reference-channel forward noise
        (``(batch, K, L)`` each, ordered along the trajectory).
    transition:
        Per visited step, the reverse-transition noise — ``None`` for steps
        whose transition is noise-free for the sampler in use (deterministic
        inference, ``eta = 0`` jumps and the terminal ``t == 1`` step;
        stochastic ``eta > 0`` DDIM jumps *do* carry a draw).  Which steps
        sample is the sampler's :meth:`~repro.diffusion.ReverseSampler
        .samples_noise` contract.
    """

    prior: np.ndarray
    reference: List[np.ndarray]
    transition: List[Optional[np.ndarray]]

    @property
    def batch_size(self) -> int:
        return int(self.prior.shape[0])

    def shard(self, start: int, stop: int) -> "ImputeNoise":
        """The payload restricted to batch rows ``start:stop`` (zero-copy views)."""
        return ImputeNoise(
            prior=self.prior[start:stop],
            reference=[draw[start:stop] for draw in self.reference],
            transition=[None if draw is None else draw[start:stop]
                        for draw in self.transition],
        )


class ImputedDiffusion:
    """Train and run a diffusion model as a time-series imputer."""

    def __init__(self, model, diffusion: GaussianDiffusion,
                 conditioning: str = "unconditional") -> None:
        if conditioning not in CONDITIONING_MODES:
            raise ValueError(f"conditioning must be one of {CONDITIONING_MODES}")
        self.model = model
        self.diffusion = diffusion
        self.conditioning = conditioning

    # ------------------------------------------------------------------
    # Input construction
    # ------------------------------------------------------------------
    def _build_input(self, corrupted_masked: np.ndarray, reference: np.ndarray) -> np.ndarray:
        """Stack the two input channels into ``(batch, 2, K, L)``."""
        return np.stack([corrupted_masked, reference], axis=1)

    def _reference_channel(self, x0_kl: np.ndarray, observed: np.ndarray,
                           noise: np.ndarray) -> np.ndarray:
        """Reference channel on the observed region (Sec. 4.1).

        For the unconditional model this is the forward noise applied to the
        unmasked values; for the conditional model it is the clean values.
        """
        if self.conditioning == "unconditional":
            return noise * observed
        return x0_kl * observed

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def draw_training_noise(self, windows: np.ndarray, rng: np.random.Generator
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Pre-draw the ``(steps, noise)`` randomness of :meth:`training_loss`.

        Makes exactly the draws — in the same order and shapes — that
        :meth:`training_loss` makes internally, so a caller can draw once on
        a shared generator and evaluate the loss rng-free (the data-parallel
        engine draws in the parent and computes in the workers).  ``noise``
        is returned in the model's native ``(batch, K, L)`` layout.
        """
        windows = np.asarray(windows, dtype=np.float64)
        steps = self.diffusion.sample_timesteps(windows.shape[0], rng)
        noise = rng.standard_normal(windows.transpose(0, 2, 1).shape)
        return steps, noise

    def training_loss(self, windows: np.ndarray, masks: np.ndarray,
                      policies: np.ndarray,
                      rng: Optional[np.random.Generator] = None,
                      steps: Optional[np.ndarray] = None,
                      noise: Optional[np.ndarray] = None) -> Tensor:
        """Denoising loss of Eq. (11), evaluated on the masked region only.

        Parameters
        ----------
        windows:
            Ground-truth windows, shape ``(batch, window_length, num_features)``.
        masks:
            Observation masks of the same shape (1 = observed).
        policies:
            Masking-policy indices ``p`` of shape ``(batch,)``.
        rng:
            Generator for the timestep/noise draws.  May be omitted when both
            ``steps`` and ``noise`` are supplied pre-drawn (see
            :meth:`draw_training_noise`); injecting the same draws is
            bit-identical to drawing them here.
        steps, noise:
            Pre-drawn diffusion timesteps ``(batch,)`` and forward noise in
            ``(batch, K, L)`` layout.
        """
        windows = np.asarray(windows, dtype=np.float64)
        masks = np.asarray(masks, dtype=np.float64)
        if windows.shape != masks.shape:
            raise ValueError("windows and masks must have the same shape")
        batch = windows.shape[0]

        # Work in (batch, K, L) layout, the model's native orientation.
        x0 = windows.transpose(0, 2, 1)
        observed = masks.transpose(0, 2, 1)
        target_region = 1.0 - observed

        if steps is None or noise is None:
            if rng is None:
                raise ValueError(
                    "training_loss needs an rng unless steps and noise are pre-drawn"
                )
            steps = self.diffusion.sample_timesteps(batch, rng)
            noise = rng.standard_normal(x0.shape)
        alpha_bars = self.diffusion.schedule.alpha_bars[steps - 1][:, None, None]
        x_t = np.sqrt(alpha_bars) * x0 + np.sqrt(1.0 - alpha_bars) * noise

        corrupted_masked = x_t * target_region
        reference = self._reference_channel(x0, observed, noise)
        model_input = self._build_input(corrupted_masked, reference)

        predicted = self.model(model_input, steps, policies)
        return F.masked_mse_loss(predicted, Tensor(noise), target_region)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def draw_impute_noise(self, windows: np.ndarray, rng: np.random.Generator,
                          sampler: Optional[ReverseSampler] = None,
                          deterministic: bool = False) -> ImputeNoise:
        """Pre-draw every random draw of one :meth:`impute` call.

        Makes exactly the draws — in the same order and shapes — that
        :meth:`impute` makes internally for the same ``(windows, sampler,
        deterministic)`` triple: the ``x_T`` prior, then per visited step the
        reference-channel noise and (when that step's transition samples) the
        reverse-transition noise.  Injecting the result via ``impute(...,
        noise=...)`` is bit-identical to letting ``impute`` draw from the
        same generator state.
        """
        sampler = sampler or FullReverseSampler()
        windows = np.asarray(windows, dtype=np.float64)
        kl_shape = windows.transpose(0, 2, 1).shape
        prior = self.diffusion.prior_sample(kl_shape, rng)
        trajectory = sampler.trajectory(self.diffusion.num_steps)
        reference: List[np.ndarray] = []
        transition: List[Optional[np.ndarray]] = []
        for i, t in enumerate(trajectory):
            t_prev = trajectory[i + 1] if i + 1 < len(trajectory) else 0
            reference.append(rng.standard_normal(kl_shape))
            # The sampler itself declares which transitions consume a draw
            # (adjacent DDPM steps, stochastic eta > 0 jumps, ...), keeping
            # this pre-draw in lockstep with the draws `impute` makes.
            if sampler.samples_noise(t, t_prev, deterministic):
                transition.append(rng.standard_normal(kl_shape))
            else:
                transition.append(None)
        return ImputeNoise(prior=prior, reference=reference, transition=transition)

    def impute(self, windows: np.ndarray, masks: np.ndarray, policies: np.ndarray,
               rng: Optional[np.random.Generator], collect: str = "sample",
               deterministic: bool = False,
               sampler: Optional[ReverseSampler] = None,
               noise: Optional[ImputeNoise] = None) -> ImputationResult:
        """Impute the masked region by running the reverse process.

        The whole pass executes under :class:`repro.nn.no_grad` — imputation
        is pure inference, so no autograd graph is built for any of the
        denoiser calls.

        Parameters
        ----------
        windows:
            Ground-truth windows ``(batch, window_length, num_features)``; the
            observed positions are used as context (directly or through their
            forward noise), the masked positions are re-generated from noise.
        collect:
            ``"sample"`` collects the partially denoised sample ``x_{t-1}`` at
            every step (Algorithm 1 of the paper); ``"x0"`` collects the
            implied clean estimate, which is a lower-variance alternative.
        deterministic:
            If True, the reverse process uses the posterior mean without
            sampling noise (useful for tests and reproducible examples).
        sampler:
            The reverse trajectory to walk; defaults to
            :class:`~repro.diffusion.FullReverseSampler` (every step ``T..1``,
            identical to the pre-engine loop).  A strided sampler visits a
            subsequence, cutting denoiser calls proportionally.
        noise:
            Pre-drawn randomness from :meth:`draw_impute_noise`, making the
            pass rng-free (``rng`` may then be ``None``).  Injecting the
            draws the internal path would have made is bit-identical to
            drawing them here.
        """
        if collect not in ("sample", "x0"):
            raise ValueError("collect must be 'sample' or 'x0'")
        sampler = sampler or FullReverseSampler()
        windows = np.asarray(windows, dtype=np.float64)
        masks = np.asarray(masks, dtype=np.float64)
        batch = windows.shape[0]
        if noise is None and rng is None:
            raise ValueError("impute needs an rng unless noise is pre-drawn")
        if noise is not None and noise.batch_size != batch:
            raise ValueError(
                f"noise payload covers {noise.batch_size} windows, got {batch}")

        x0 = windows.transpose(0, 2, 1)
        observed = masks.transpose(0, 2, 1)
        target_region = 1.0 - observed

        prior = (noise.prior if noise is not None
                 else self.diffusion.prior_sample(x0.shape, rng))
        x_t = prior * target_region
        intermediate: List[Tuple[int, np.ndarray]] = []
        trajectory = sampler.trajectory(self.diffusion.num_steps)
        # Hoist the per-step schedule gathers / sqrt work out of the loop:
        # the cached table turns every transition into indexed
        # scalar-times-array arithmetic (bit-identical to the direct path).
        table = self.diffusion.transition_table(trajectory, eta=sampler.eta)
        sampler_state = sampler.init_state()

        with no_grad():
            for i, t in enumerate(trajectory):
                t_prev = trajectory[i + 1] if i + 1 < len(trajectory) else 0
                steps = np.full(batch, t, dtype=np.int64)
                step_noise = (noise.reference[i] if noise is not None
                              else rng.standard_normal(x0.shape))
                reference = self._reference_channel(x0, observed, step_noise)
                model_input = self._build_input(x_t * target_region, reference)
                predicted_eps = self.model(model_input, steps, policies).data

                if collect == "x0":
                    estimate = (x_t - table.sqrt_one_minus_alpha_bar[i]
                                * predicted_eps) / table.sqrt_alpha_bar[i]
                x_prev = sampler.step(self.diffusion, x_t, t, t_prev, predicted_eps,
                                      rng=rng, deterministic=deterministic,
                                      noise=(noise.transition[i]
                                             if noise is not None else None),
                                      table=table, index=i, state=sampler_state)
                x_prev = x_prev * target_region
                if collect == "sample":
                    estimate = x_prev

                merged = estimate * target_region + x0 * observed
                intermediate.append((t, merged.transpose(0, 2, 1)))
                x_t = x_prev

        final = (x_t * target_region + x0 * observed).transpose(0, 2, 1)
        return ImputationResult(final=final, intermediate=intermediate)

    # ------------------------------------------------------------------
    def imputation_error(self, windows: np.ndarray, result: ImputationResult,
                         masks: np.ndarray) -> Dict[int, np.ndarray]:
        """Squared imputation error per step, restricted to the masked region.

        Returns a mapping ``step -> error`` with error arrays of shape
        ``(batch, window_length, num_features)``; observed positions are zero.
        """
        windows = np.asarray(windows, dtype=np.float64)
        masks = np.asarray(masks, dtype=np.float64)
        target_region = 1.0 - masks
        errors: Dict[int, np.ndarray] = {}
        for step, estimate in result.intermediate:
            errors[step] = ((estimate - windows) ** 2) * target_region
        return errors
