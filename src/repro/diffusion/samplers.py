"""Reverse-trajectory samplers for diffusion inference (the inference engine).

The reverse process does not have to visit every step ``T .. 1``: with the
``eps``-parameterisation the model can jump directly between any two steps of
the schedule (the DDIM subsequence trick, which the paper's denoising-steps
ablation exploits).  This module abstracts the *trajectory* — which steps are
visited — and the *transition rule* — how ``x_{t_prev}`` is produced from
``x_t`` — behind a :class:`ReverseSampler` interface, with a registry
(:func:`register_sampler` / :func:`make_sampler`) the config and CLI resolve
names against:

* :class:`FullReverseSampler` (``"full"``) walks every step with the exact
  DDPM posterior transition; it reproduces the pre-engine reverse loop bit
  for bit.
* :class:`StridedReverseSampler` (``"strided"``) visits a subsequence.
  Adjacent transitions (``t -> t-1``) still use the exact DDPM step — which
  is why a stride of 1 is *numerically identical* to the full trajectory —
  while longer jumps use the deterministic DDIM update
  ``x_prev = sqrt(abar_prev) * x0_hat + sqrt(1 - abar_prev) * eps``.
* :class:`DDIMSampler` (``"ddim"``) generalises the strided jumps with the
  tunable DDIM noise scale ``eta``: ``eta = 0`` reproduces the strided
  sampler bit for bit, ``eta > 0`` re-injects ``sigma_t(eta)``-scaled noise
  on every jump (drawn through the :class:`~repro.diffusion.ImputeNoise`
  bundle, so sharded scoring stays bit-identical at every worker count).
* :class:`PNDMSampler` (``"pndm"``) is a second-order multistep sampler: it
  replaces the model's noise prediction with the two-step Adams–Bashforth
  combination ``(3*eps_t - eps_{t_prev_visited}) / 2`` before applying the
  deterministic jump rule, reusing the eps history across visited steps for
  a higher-order accurate trajectory at the same denoiser-call budget.

Independently of the transition rule, subsequence trajectories support
non-uniform step spacing (``spacing`` in :data:`SPACINGS`): ``"uniform"``
(evenly spaced, the default), ``"quadratic"`` and ``"karras"`` both
concentrate visited steps near ``t = 1`` where the posterior changes
fastest.

Scoring cost scales linearly with the trajectory length, so ``n`` inference
steps cut denoiser calls by ``T / n`` at a modest accuracy cost (the
speed/accuracy knob exposed as ``sampler=`` / ``num_inference_steps=`` /
``ddim_eta=`` / ``stride_spacing=`` in :class:`repro.core.ImDiffusionConfig`).
The per-step schedule gathers and ``sqrt`` work are hoisted into a cached
:class:`~repro.diffusion.TransitionTable` (see
:meth:`GaussianDiffusion.transition_table`), which ``imputation.impute``
threads through :meth:`ReverseSampler.step`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .ddpm import GaussianDiffusion, TransitionTable

__all__ = ["ReverseSampler", "FullReverseSampler", "StridedReverseSampler",
           "DDIMSampler", "PNDMSampler", "make_sampler", "register_sampler",
           "sampler_names", "sampler_help", "trajectory_steps",
           "SAMPLER_NAMES", "SPACINGS"]

SPACINGS = ("uniform", "quadratic", "karras")

#: Exponent of the karras-style spacing: interpolate in ``t ** (1/rho)``.
KARRAS_RHO = 7.0


# ----------------------------------------------------------------------
# Trajectory construction
# ----------------------------------------------------------------------
def _spaced_positions(num_steps: int, n: int, spacing: str) -> np.ndarray:
    """``n`` ascending float positions in ``[1, num_steps]`` for a spacing."""
    if spacing == "uniform":
        return np.linspace(1, num_steps, n)
    if spacing == "quadratic":
        # Quadratic ramp: visited steps cluster near t = 1 (the low-noise
        # region where the imputation estimate sharpens fastest).
        return 1.0 + (num_steps - 1.0) * np.linspace(0.0, 1.0, n) ** 2
    if spacing == "karras":
        # Karras et al. (2022) style: interpolate in t ** (1/rho); rho = 7
        # concentrates steps near t = 1 even harder than quadratic.
        return np.linspace(1.0, float(num_steps) ** (1.0 / KARRAS_RHO), n) ** KARRAS_RHO
    raise ValueError(f"spacing must be one of {SPACINGS}, got {spacing!r}")


def _repair_ascending(rounded: List[int], num_steps: int) -> List[int]:
    """Make rounded positions strictly ascending without changing the count.

    Rounding non-uniform spacings can collapse neighbouring positions onto
    the same integer step; a plain ``sorted(set(...))`` would then silently
    shorten the trajectory below the requested length.  Instead, bump every
    duplicate up to the next free step (forward pass) and, if that pushed the
    tail past ``num_steps``, pull the tail back down (backward pass).  Both
    passes are no-ops when the rounding is already strictly ascending — which
    uniform spacing always is — so existing trajectories are preserved
    exactly.
    """
    steps = list(rounded)
    steps[0] = max(1, min(steps[0], num_steps))
    for i in range(1, len(steps)):
        if steps[i] <= steps[i - 1]:
            steps[i] = steps[i - 1] + 1
    if steps[-1] > num_steps:
        steps[-1] = num_steps
        for i in range(len(steps) - 2, -1, -1):
            if steps[i] >= steps[i + 1]:
                steps[i] = steps[i + 1] - 1
    return steps


def trajectory_steps(num_steps: int, num_inference_steps: int,
                     spacing: str = "uniform") -> List[int]:
    """A descending reverse trajectory of exactly ``min(n, T)`` visited steps.

    The first visited step is always ``num_steps`` and the last is always 1;
    intermediate steps follow the requested ``spacing``.  Unlike a naive
    round-and-dedup, the result honours the requested count deterministically
    (see :func:`_repair_ascending`).
    """
    n = min(int(num_inference_steps), int(num_steps))
    if n < 1:
        raise ValueError("num_inference_steps must be at least 1")
    positions = _spaced_positions(int(num_steps), n, spacing)
    steps = _repair_ascending([int(round(p)) for p in positions], int(num_steps))
    return steps[::-1]


# ----------------------------------------------------------------------
# Sampler interface
# ----------------------------------------------------------------------
class ReverseSampler:
    """Strategy object: which reverse steps to visit and how to transition.

    Sub-classes implement :meth:`trajectory` (the descending list of visited
    steps, always ending at 1) and :meth:`step` (one transition
    ``x_t -> x_{t_prev}`` given the model's noise prediction at ``t``).
    Samplers are stateless and picklable; per-reverse-pass state (e.g. the
    PNDM eps history) lives in the dict returned by :meth:`init_state`,
    which the caller threads through :meth:`step`.
    """

    name: str = "base"
    #: DDIM transition-noise scale of the jump rule; 0 = deterministic jumps.
    eta: float = 0.0

    def trajectory(self, num_steps: int) -> List[int]:
        """Visited steps in descending order; the last entry is always 1."""
        raise NotImplementedError

    def num_inference_steps(self, num_steps: int) -> int:
        """Number of denoiser calls a reverse pass makes (trajectory length)."""
        return len(self.trajectory(num_steps))

    def samples_noise(self, t: int, t_prev: int, deterministic: bool) -> bool:
        """Whether the ``t -> t_prev`` transition consumes a standard-normal draw.

        This is the contract :meth:`ImputedDiffusion.draw_impute_noise` uses
        to pre-draw transition noise in exactly the order :meth:`step`
        consumes it — keep it in sync with :meth:`step`'s noise use or the
        sharded engine's bit-identity breaks.  The base rule covers the
        DDPM-posterior samplers: adjacent non-terminal transitions sample,
        everything else is noise-free.
        """
        return (not deterministic) and t_prev == t - 1 and t > 1

    def init_state(self) -> Optional[dict]:
        """Fresh per-reverse-pass state, or ``None`` for stateless samplers."""
        return None

    def transition_table(self, diffusion: GaussianDiffusion) -> TransitionTable:
        """This sampler's cached coefficient table on ``diffusion``'s schedule."""
        return diffusion.transition_table(self.trajectory(diffusion.num_steps),
                                          eta=self.eta)

    def step(self, diffusion: GaussianDiffusion, x_t: np.ndarray, t: int, t_prev: int,
             eps: np.ndarray, rng: Optional[np.random.Generator] = None,
             deterministic: bool = False,
             noise: Optional[np.ndarray] = None,
             table: Optional[TransitionTable] = None,
             index: Optional[int] = None,
             state: Optional[dict] = None) -> np.ndarray:
        """Produce ``x_{t_prev}`` from ``x_t`` and the predicted noise at ``t``.

        ``t_prev`` is the next visited step (0 terminates the trajectory).
        ``noise`` optionally injects the transition's standard-normal draw
        for steps that sample one (see :meth:`samples_noise`); transitions
        that are noise-free by construction ignore it.  ``table``/``index``
        optionally supply the cached :class:`TransitionTable` entry of this
        transition — the fast path ``impute`` uses, bit-identical to the
        direct computation.  ``state`` is the dict from :meth:`init_state`
        for samplers that carry history across steps.
        """
        raise NotImplementedError

    # -- shared transition rules ---------------------------------------
    def _ddpm_step(self, diffusion, x_t, t, eps, rng, deterministic, noise,
                   table, index):
        """Exact DDPM posterior step at ``t`` (adjacent transitions)."""
        if table is None:
            return diffusion.p_sample(x_t, t, eps, rng=rng,
                                      deterministic=deterministic, noise=noise)
        mean = (x_t - table.ddpm_eps_coef[index] * eps) / table.sqrt_alpha[index]
        if deterministic or t == 1:
            return mean
        if noise is None:
            rng = rng or np.random.default_rng()
            noise = rng.standard_normal(x_t.shape)
        return mean + table.ddpm_sigma[index] * noise

    def _jump_step(self, diffusion, x_t, t, t_prev, eps, rng, deterministic,
                   noise, table, index):
        """Generalised DDIM jump ``t -> t_prev`` at this sampler's ``eta``."""
        if table is not None:
            x0_hat = (x_t - table.sqrt_one_minus_alpha_bar[index] * eps) \
                / table.sqrt_alpha_bar[index]
            x_prev = table.jump_x0_coef[index] * x0_hat \
                + table.jump_eps_coef[index] * eps
            sigma = table.jump_sigma[index]
        else:
            alpha_bar = diffusion.schedule.alpha_bars[t - 1]
            alpha_bar_prev = (diffusion.schedule.alpha_bars[t_prev - 1]
                              if t_prev >= 1 else 1.0)
            sigma = self.eta * np.sqrt((1.0 - alpha_bar_prev) / (1.0 - alpha_bar)) \
                * np.sqrt(max(1.0 - alpha_bar / alpha_bar_prev, 0.0))
            x0_hat = diffusion.predict_x0_from_eps(x_t, t, eps)
            x_prev = np.sqrt(alpha_bar_prev) * x0_hat \
                + np.sqrt(max(1.0 - alpha_bar_prev - sigma ** 2, 0.0)) * eps
        if sigma > 0.0 and not deterministic and t_prev >= 1:
            if noise is None:
                rng = rng or np.random.default_rng()
                noise = rng.standard_normal(x_t.shape)
            return x_prev + sigma * noise
        return x_prev

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class FullReverseSampler(ReverseSampler):
    """Every step ``T .. 1`` with the exact DDPM posterior transition."""

    name = "full"

    def trajectory(self, num_steps: int) -> List[int]:
        return list(range(num_steps, 0, -1))

    def step(self, diffusion, x_t, t, t_prev, eps, rng=None, deterministic=False,
             noise=None, table=None, index=None, state=None):
        if t_prev != t - 1:
            raise ValueError(
                f"FullReverseSampler only takes adjacent steps, got {t} -> {t_prev}")
        return self._ddpm_step(diffusion, x_t, t, eps, rng, deterministic,
                               noise, table, index)


class _SubsequenceSampler(ReverseSampler):
    """Shared trajectory logic of the subsequence (strided/ddim/pndm) samplers.

    Parameters
    ----------
    stride:
        Visit every ``stride``-th step starting from ``T`` (plus step 1).
    num_inference_steps:
        Alternatively, visit exactly ``n`` steps between ``T`` and 1.
    spacing:
        Step spacing of the ``num_inference_steps`` form — one of
        :data:`SPACINGS` (``stride`` trajectories are literal and take no
        spacing).

    Exactly one of ``stride`` / ``num_inference_steps`` must be given.
    """

    def __init__(self, stride: Optional[int] = None,
                 num_inference_steps: Optional[int] = None,
                 spacing: str = "uniform") -> None:
        if (stride is None) == (num_inference_steps is None):
            raise ValueError("provide exactly one of stride or num_inference_steps")
        if stride is not None and stride < 1:
            raise ValueError("stride must be at least 1")
        if num_inference_steps is not None and num_inference_steps < 2:
            raise ValueError("num_inference_steps must be at least 2")
        if spacing not in SPACINGS:
            raise ValueError(f"spacing must be one of {SPACINGS}, got {spacing!r}")
        if stride is not None and spacing != "uniform":
            raise ValueError(
                "spacing schedules apply to num_inference_steps trajectories; "
                "a stride visits literal steps")
        self.stride = stride
        self._num_inference_steps = num_inference_steps
        self.spacing = spacing

    def trajectory(self, num_steps: int) -> List[int]:
        if self.stride is not None:
            steps = list(range(num_steps, 0, -self.stride))
            if steps[-1] != 1:
                steps.append(1)
            return steps
        return trajectory_steps(num_steps, self._num_inference_steps, self.spacing)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.stride is not None:
            return f"{type(self).__name__}(stride={self.stride})"
        return (f"{type(self).__name__}"
                f"(num_inference_steps={self._num_inference_steps}, "
                f"spacing={self.spacing!r})")


class StridedReverseSampler(_SubsequenceSampler):
    """DDIM-style strided subsequence of the reverse trajectory.

    Adjacent transitions use the exact DDPM posterior step (so ``stride=1``
    degenerates to :class:`FullReverseSampler` bit for bit); longer jumps use
    the deterministic (``eta=0``) DDIM update, which is noise-free regardless
    of the ``deterministic`` flag.
    """

    name = "strided"

    def step(self, diffusion, x_t, t, t_prev, eps, rng=None, deterministic=False,
             noise=None, table=None, index=None, state=None):
        if t_prev == t - 1:
            # Adjacent transition: the exact DDPM step, identical to the full
            # trajectory (this is what makes stride 1 a strict no-op).
            return self._ddpm_step(diffusion, x_t, t, eps, rng, deterministic,
                                   noise, table, index)
        # Non-adjacent jumps are the deterministic DDIM update: noise-free
        # at eta = 0, so an injected draw is never consumed here.
        return self._jump_step(diffusion, x_t, t, t_prev, eps, rng,
                               deterministic, noise, table, index)


class DDIMSampler(StridedReverseSampler):
    """Strided trajectory with the tunable DDIM transition-noise scale ``eta``.

    ``eta = 0`` (the default) is the fully deterministic jump rule and
    reproduces :class:`StridedReverseSampler` bit for bit — same outputs,
    same random-stream consumption.  ``eta > 0`` re-injects
    ``sigma_t(eta) = eta * sqrt((1-abar_prev)/(1-abar_t)) *
    sqrt(1 - abar_t/abar_prev)`` scaled noise on every non-adjacent jump
    (``eta = 1`` recovers DDPM-matched transition variance).  Jump noise is
    drawn through the :class:`~repro.diffusion.ImputeNoise` bundle, so
    sharded scoring stays bit-identical at every worker count.
    """

    name = "ddim"

    def __init__(self, stride: Optional[int] = None,
                 num_inference_steps: Optional[int] = None,
                 spacing: str = "uniform", eta: float = 0.0) -> None:
        super().__init__(stride=stride, num_inference_steps=num_inference_steps,
                         spacing=spacing)
        if not 0.0 <= eta <= 1.0:
            raise ValueError("eta must lie in [0, 1]")
        self.eta = float(eta)

    def samples_noise(self, t: int, t_prev: int, deterministic: bool) -> bool:
        if deterministic:
            return False
        if t_prev == t - 1:
            return t > 1
        return self.eta > 0.0 and t_prev >= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        base = super().__repr__()
        return f"{base[:-1]}, eta={self.eta})"


class PNDMSampler(_SubsequenceSampler):
    """Second-order PNDM/PLMS-style multistep sampler.

    Re-uses the eps history across visited steps: from the second step on,
    the transition applies the two-step Adams–Bashforth combination
    ``eps' = (3 * eps_t - eps_prev) / 2`` of the current and previous noise
    predictions before the deterministic jump rule, cancelling the first-order
    discretisation error of plain DDIM jumps.  The first visited step (no
    history yet) falls back to the plain prediction, so a PNDM pass makes
    exactly as many denoiser calls as a DDIM pass over the same trajectory.

    All transitions — adjacent ones included — use the deterministic jump
    rule, so the sampler consumes no transition randomness at all; the eps
    history lives in the per-pass ``state`` dict (:meth:`init_state`), which
    keeps the sampler object stateless, picklable and shard-safe.
    """

    name = "pndm"
    order = 2

    def samples_noise(self, t: int, t_prev: int, deterministic: bool) -> bool:
        return False

    def init_state(self) -> dict:
        return {"prev_eps": None}

    def step(self, diffusion, x_t, t, t_prev, eps, rng=None, deterministic=False,
             noise=None, table=None, index=None, state=None):
        prev_eps = state.get("prev_eps") if state is not None else None
        eps_used = eps if prev_eps is None else (3.0 * eps - prev_eps) / 2.0
        if state is not None:
            state["prev_eps"] = eps
        if table is not None:
            x0_hat = (x_t - table.sqrt_one_minus_alpha_bar[index] * eps_used) \
                / table.sqrt_alpha_bar[index]
            return table.jump_x0_coef[index] * x0_hat \
                + table.jump_eps_coef[index] * eps_used
        alpha_bar = diffusion.schedule.alpha_bars[t - 1]
        alpha_bar_prev = (diffusion.schedule.alpha_bars[t_prev - 1]
                          if t_prev >= 1 else 1.0)
        x0_hat = (x_t - np.sqrt(1.0 - alpha_bar) * eps_used) / np.sqrt(alpha_bar)
        return np.sqrt(alpha_bar_prev) * x0_hat \
            + np.sqrt(1.0 - alpha_bar_prev) * eps_used


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SamplerEntry:
    """One registered sampler: its factory plus the help line the CLI shows."""

    name: str
    factory: Callable[..., ReverseSampler]
    description: str


SAMPLER_REGISTRY: Dict[str, SamplerEntry] = {}

#: Registered sampler names, refreshed on every registration.  Prefer
#: :func:`sampler_names` (always current) over importing this tuple.
SAMPLER_NAMES: Tuple[str, ...] = ()


def register_sampler(name: str, description: str = ""):
    """Class/function decorator adding a sampler factory to the registry.

    The factory is called with whichever of the knobs
    ``num_inference_steps`` / ``stride`` / ``spacing`` / ``eta`` its
    signature accepts (see :func:`make_sampler`).  Registering an existing
    name replaces it.
    """

    def decorator(factory: Callable[..., ReverseSampler]):
        global SAMPLER_NAMES
        SAMPLER_REGISTRY[name] = SamplerEntry(name=name, factory=factory,
                                              description=description)
        SAMPLER_NAMES = tuple(SAMPLER_REGISTRY)
        return factory

    return decorator


def sampler_names() -> Tuple[str, ...]:
    """Currently registered sampler names, in registration order."""
    return tuple(SAMPLER_REGISTRY)


def sampler_help() -> str:
    """One-line per-sampler summary for CLI ``--sampler`` help text."""
    return "; ".join(f"'{entry.name}' {entry.description}"
                     for entry in SAMPLER_REGISTRY.values())


register_sampler(
    "full", "walks every reverse step with the exact DDPM transition "
    "(the paper algorithm)")(lambda: FullReverseSampler())
register_sampler(
    "strided", "visits a subsequence with deterministic DDIM jumps "
    "(~T/n fewer denoiser calls)")(StridedReverseSampler)
register_sampler(
    "ddim", "strided trajectory with tunable jump-noise scale eta "
    "(eta=0 equals 'strided' bit for bit)")(DDIMSampler)
register_sampler(
    "pndm", "second-order multistep: reuses eps history across visited "
    "steps for higher accuracy at the same step budget")(PNDMSampler)


def _accepted_kwargs(factory: Callable[..., ReverseSampler]) -> Optional[set]:
    """Keyword names a factory accepts, or ``None`` when it takes ``**kwargs``."""
    signature = inspect.signature(factory)
    if any(p.kind == inspect.Parameter.VAR_KEYWORD
           for p in signature.parameters.values()):
        return None
    return {p.name for p in signature.parameters.values()
            if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                          inspect.Parameter.KEYWORD_ONLY)}


def make_sampler(name: str, num_inference_steps: Optional[int] = None,
                 stride: Optional[int] = None, spacing: Optional[str] = None,
                 eta: Optional[float] = None) -> ReverseSampler:
    """Build a registered reverse sampler by name.

    Knobs left at ``None`` are omitted; passing a knob the named sampler's
    factory does not accept raises ``ValueError`` (e.g. ``eta`` with
    ``strided``).  For the subsequence samplers pass either
    ``num_inference_steps`` (spaced subsequence, see ``spacing``) or
    ``stride`` (every ``stride``-th step).
    """
    entry = SAMPLER_REGISTRY.get(name)
    if entry is None:
        raise KeyError(f"unknown sampler {name!r}; available: {sampler_names()}")
    supplied = {key: value for key, value in (
        ("num_inference_steps", num_inference_steps), ("stride", stride),
        ("spacing", spacing), ("eta", eta)) if value is not None}
    accepted = _accepted_kwargs(entry.factory)
    if accepted is not None:
        rejected = sorted(set(supplied) - accepted)
        if rejected:
            raise ValueError(
                f"sampler {name!r} does not take {', '.join(rejected)}")
        if "num_inference_steps" in accepted and \
                num_inference_steps is None and stride is None:
            raise ValueError(
                f"the {name} sampler needs num_inference_steps (or stride); "
                "set num_inference_steps in the config")
    return entry.factory(**supplied)
