"""Reverse-trajectory samplers for diffusion inference (the inference engine).

The reverse process does not have to visit every step ``T .. 1``: with the
``eps``-parameterisation the model can jump directly between any two steps of
the schedule (the DDIM subsequence trick, which the paper's denoising-steps
ablation exploits).  This module abstracts the *trajectory* — which steps are
visited — and the *transition rule* — how ``x_{t_prev}`` is produced from
``x_t`` — behind a :class:`ReverseSampler` interface:

* :class:`FullReverseSampler` walks every step with the exact DDPM posterior
  transition; it reproduces the pre-engine reverse loop bit for bit.
* :class:`StridedReverseSampler` visits a strided subsequence.  Adjacent
  transitions (``t -> t-1``) still use the exact DDPM step — which is why a
  stride of 1 is *numerically identical* to the full trajectory — while
  longer jumps use the deterministic DDIM update
  ``x_prev = sqrt(abar_prev) * x0_hat + sqrt(1 - abar_prev) * eps``.

Scoring cost scales linearly with the trajectory length, so a stride of ``s``
cuts denoiser calls by ``~s`` at a modest accuracy cost (the speed/accuracy
knob exposed as ``sampler=`` / ``num_inference_steps=`` in
:class:`repro.core.ImDiffusionConfig`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .ddpm import GaussianDiffusion

__all__ = ["ReverseSampler", "FullReverseSampler", "StridedReverseSampler",
           "make_sampler", "SAMPLER_NAMES"]

SAMPLER_NAMES = ("full", "strided")


class ReverseSampler:
    """Strategy object: which reverse steps to visit and how to transition.

    Sub-classes implement :meth:`trajectory` (the descending list of visited
    steps, always ending at 1) and :meth:`step` (one transition
    ``x_t -> x_{t_prev}`` given the model's noise prediction at ``t``).
    """

    name: str = "base"

    def trajectory(self, num_steps: int) -> List[int]:
        """Visited steps in descending order; the last entry is always 1."""
        raise NotImplementedError

    def num_inference_steps(self, num_steps: int) -> int:
        """Number of denoiser calls a reverse pass makes (trajectory length)."""
        return len(self.trajectory(num_steps))

    def step(self, diffusion: GaussianDiffusion, x_t: np.ndarray, t: int, t_prev: int,
             eps: np.ndarray, rng: Optional[np.random.Generator] = None,
             deterministic: bool = False,
             noise: Optional[np.ndarray] = None) -> np.ndarray:
        """Produce ``x_{t_prev}`` from ``x_t`` and the predicted noise at ``t``.

        ``t_prev`` is the next visited step (0 terminates the trajectory).
        ``noise`` optionally injects the transition's standard-normal draw
        for steps that sample one (adjacent non-terminal transitions);
        transitions that are noise-free by construction ignore it.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class FullReverseSampler(ReverseSampler):
    """Every step ``T .. 1`` with the exact DDPM posterior transition."""

    name = "full"

    def trajectory(self, num_steps: int) -> List[int]:
        return list(range(num_steps, 0, -1))

    def step(self, diffusion: GaussianDiffusion, x_t: np.ndarray, t: int, t_prev: int,
             eps: np.ndarray, rng: Optional[np.random.Generator] = None,
             deterministic: bool = False,
             noise: Optional[np.ndarray] = None) -> np.ndarray:
        if t_prev != t - 1:
            raise ValueError(
                f"FullReverseSampler only takes adjacent steps, got {t} -> {t_prev}")
        return diffusion.p_sample(x_t, t, eps, rng=rng, deterministic=deterministic,
                                  noise=noise)


class StridedReverseSampler(ReverseSampler):
    """DDIM-style strided subsequence of the reverse trajectory.

    Parameters
    ----------
    stride:
        Visit every ``stride``-th step starting from ``T`` (plus step 1).
    num_inference_steps:
        Alternatively, visit ``n`` evenly spaced steps between ``T`` and 1.

    Exactly one of the two must be given.  Adjacent transitions use the exact
    DDPM posterior step (so ``stride=1`` degenerates to
    :class:`FullReverseSampler` bit for bit); longer jumps use the
    deterministic (``eta=0``) DDIM update, which is noise-free regardless of
    the ``deterministic`` flag.
    """

    name = "strided"

    def __init__(self, stride: Optional[int] = None,
                 num_inference_steps: Optional[int] = None) -> None:
        if (stride is None) == (num_inference_steps is None):
            raise ValueError("provide exactly one of stride or num_inference_steps")
        if stride is not None and stride < 1:
            raise ValueError("stride must be at least 1")
        if num_inference_steps is not None and num_inference_steps < 2:
            raise ValueError("num_inference_steps must be at least 2")
        self.stride = stride
        self._num_inference_steps = num_inference_steps

    def trajectory(self, num_steps: int) -> List[int]:
        if self.stride is not None:
            steps = list(range(num_steps, 0, -self.stride))
        else:
            n = min(self._num_inference_steps, num_steps)
            spaced = np.linspace(1, num_steps, n)
            steps = sorted(set(int(round(s)) for s in spaced), reverse=True)
        if steps[-1] != 1:
            steps.append(1)
        return steps

    def step(self, diffusion: GaussianDiffusion, x_t: np.ndarray, t: int, t_prev: int,
             eps: np.ndarray, rng: Optional[np.random.Generator] = None,
             deterministic: bool = False,
             noise: Optional[np.ndarray] = None) -> np.ndarray:
        if t_prev == t - 1:
            # Adjacent transition: the exact DDPM step, identical to the full
            # trajectory (this is what makes stride 1 a strict no-op).
            return diffusion.p_sample(x_t, t, eps, rng=rng, deterministic=deterministic,
                                      noise=noise)
        # Non-adjacent jumps are the deterministic DDIM update: noise-free,
        # so an injected draw is never consumed here.
        x0_hat = diffusion.predict_x0_from_eps(x_t, t, eps)
        alpha_bar_prev = diffusion.schedule.alpha_bars[t_prev - 1]
        return np.sqrt(alpha_bar_prev) * x0_hat + np.sqrt(1.0 - alpha_bar_prev) * eps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.stride is not None:
            return f"StridedReverseSampler(stride={self.stride})"
        return f"StridedReverseSampler(num_inference_steps={self._num_inference_steps})"


def make_sampler(name: str, num_inference_steps: Optional[int] = None,
                 stride: Optional[int] = None) -> ReverseSampler:
    """Build a reverse sampler by name (``full`` or ``strided``).

    For ``strided``, pass either ``num_inference_steps`` (evenly spaced
    subsequence) or ``stride`` (every ``stride``-th step).  ``full`` ignores
    both knobs.
    """
    if name == "full":
        return FullReverseSampler()
    if name == "strided":
        if num_inference_steps is None and stride is None:
            raise ValueError(
                "the strided sampler needs num_inference_steps (or stride); "
                "set num_inference_steps in the config")
        return StridedReverseSampler(stride=stride, num_inference_steps=num_inference_steps)
    raise KeyError(f"unknown sampler {name!r}; available: {SAMPLER_NAMES}")
