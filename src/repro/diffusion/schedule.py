"""Noise schedules for the denoising diffusion process (Sec. 3.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

__all__ = ["NoiseSchedule", "linear_beta_schedule", "quadratic_beta_schedule",
           "cosine_beta_schedule", "make_schedule"]


@dataclass(frozen=True)
class NoiseSchedule:
    """Pre-computed quantities of a forward diffusion process.

    Attributes
    ----------
    betas:
        Per-step noise level ``beta_t`` for ``t = 1 .. T`` (stored 0-indexed).
    alphas:
        ``1 - beta_t``.
    alpha_bars:
        Cumulative products ``prod_{i<=t} alpha_i`` (the paper's
        :math:`\\alpha_t`), used by the closed-form forward corruption.
    """

    betas: np.ndarray
    alphas: np.ndarray
    alpha_bars: np.ndarray

    @property
    def num_steps(self) -> int:
        return int(self.betas.shape[0])

    def posterior_variance(self, t):
        """Variance :math:`\\tilde\\beta_t` of the reverse transition at step ``t`` (1-indexed).

        ``t`` may be a scalar (returns a ``float``, as before) or an integer
        array of shape ``(batch,)`` (returns a ``(batch,)`` array with the
        per-sample variances), supporting mixed-timestep batches.
        """
        t_arr = np.asarray(t)
        if t_arr.ndim == 0:
            index = int(t_arr) - 1
            if index > 0:
                prev = self.alpha_bars[index - 1]
                return float((1.0 - prev) / (1.0 - self.alpha_bars[index]) * self.betas[index])
            return float(self.betas[0])
        index = t_arr.astype(np.int64) - 1
        prev = np.where(index > 0, self.alpha_bars[np.maximum(index - 1, 0)], 1.0)
        variance = (1.0 - prev) / (1.0 - self.alpha_bars[index]) * self.betas[index]
        return np.where(index > 0, variance, self.betas[0])

    @classmethod
    def from_betas(cls, betas: np.ndarray) -> "NoiseSchedule":
        betas = np.asarray(betas, dtype=np.float64)
        if betas.ndim != 1 or betas.size == 0:
            raise ValueError("betas must be a non-empty 1-D array")
        if np.any(betas <= 0) or np.any(betas >= 1):
            raise ValueError("betas must lie strictly between 0 and 1")
        alphas = 1.0 - betas
        alpha_bars = np.cumprod(alphas)
        return cls(betas=betas, alphas=alphas, alpha_bars=alpha_bars)


def linear_beta_schedule(num_steps: int, beta_start: float = 1e-4, beta_end: float = 0.2) -> NoiseSchedule:
    """Linearly increasing betas, the DDPM default used by the paper."""
    return NoiseSchedule.from_betas(np.linspace(beta_start, beta_end, num_steps))


def quadratic_beta_schedule(num_steps: int, beta_start: float = 1e-4, beta_end: float = 0.2) -> NoiseSchedule:
    """Quadratic schedule (CSDI's choice): more small-noise steps near t=1."""
    roots = np.linspace(np.sqrt(beta_start), np.sqrt(beta_end), num_steps)
    return NoiseSchedule.from_betas(roots ** 2)


def cosine_beta_schedule(num_steps: int, offset: float = 0.008) -> NoiseSchedule:
    """Cosine schedule of Nichol & Dhariwal (2021)."""
    steps = np.arange(num_steps + 1, dtype=np.float64)
    f = np.cos((steps / num_steps + offset) / (1 + offset) * np.pi / 2) ** 2
    alpha_bars = f / f[0]
    betas = 1.0 - alpha_bars[1:] / alpha_bars[:-1]
    betas = np.clip(betas, 1e-6, 0.999)
    return NoiseSchedule.from_betas(betas)


_SCHEDULES: Dict[str, Callable[..., NoiseSchedule]] = {
    "linear": linear_beta_schedule,
    "quadratic": quadratic_beta_schedule,
    "cosine": cosine_beta_schedule,
}


def make_schedule(name: str, num_steps: int, **kwargs) -> NoiseSchedule:
    """Create a schedule by name (``linear``, ``quadratic`` or ``cosine``)."""
    if name not in _SCHEDULES:
        raise KeyError(f"unknown schedule {name!r}; available: {sorted(_SCHEDULES)}")
    return _SCHEDULES[name](num_steps, **kwargs)
