"""Evaluation metrics and the multi-run experiment harness."""

from .delay import average_detection_delay, detection_delays
from .metrics import ClassificationScores, anomaly_segments, point_adjust, precision_recall_f1
from .range_metrics import auc_pr, range_auc_pr, soft_range_labels
from .runner import (
    EvaluationSummary,
    RunMetrics,
    average_summaries,
    evaluate_detector,
    evaluate_labels,
    format_results_table,
)

__all__ = [
    "average_detection_delay",
    "detection_delays",
    "ClassificationScores",
    "anomaly_segments",
    "point_adjust",
    "precision_recall_f1",
    "auc_pr",
    "range_auc_pr",
    "soft_range_labels",
    "EvaluationSummary",
    "RunMetrics",
    "average_summaries",
    "evaluate_detector",
    "evaluate_labels",
    "format_results_table",
]
