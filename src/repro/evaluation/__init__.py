"""Evaluation metrics and the multi-run experiment harness."""

from .delay import average_detection_delay, detection_delays
from .matrix import (
    BENCH_SCHEMA_VERSION,
    BenchCell,
    bench_detector_factory,
    format_bench_matrix,
    run_bench_matrix,
    write_bench_matrix,
)
from .metrics import ClassificationScores, anomaly_segments, point_adjust, precision_recall_f1
from .range_metrics import auc_pr, range_auc_pr, soft_range_labels
from .runner import (
    EvaluationSummary,
    RunMetrics,
    apply_detector_overrides,
    average_summaries,
    evaluate_detector,
    evaluate_labels,
    format_results_table,
)

__all__ = [
    "average_detection_delay",
    "detection_delays",
    "ClassificationScores",
    "anomaly_segments",
    "point_adjust",
    "precision_recall_f1",
    "auc_pr",
    "range_auc_pr",
    "soft_range_labels",
    "EvaluationSummary",
    "RunMetrics",
    "apply_detector_overrides",
    "average_summaries",
    "evaluate_detector",
    "evaluate_labels",
    "format_results_table",
    "BENCH_SCHEMA_VERSION",
    "BenchCell",
    "bench_detector_factory",
    "format_bench_matrix",
    "run_bench_matrix",
    "write_bench_matrix",
]
