"""Detection timeliness: the Average Detection Delay (ADD) metric.

ADD (Doshi et al., 2022; Eq. 13 of the paper) measures how quickly a detector
reacts to each anomalous event: for every ground-truth event starting at
``rho_i``, the delay is ``T_i - rho_i`` where ``T_i >= rho_i`` is the first
timestamp the detector raises an alarm for that event.  Events that are never
detected are charged the full horizon up to the next event (or the end of the
series), which penalises misses without letting them dominate the average.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .metrics import anomaly_segments

__all__ = ["detection_delays", "average_detection_delay"]


def detection_delays(predicted: np.ndarray, actual: np.ndarray,
                     max_horizon: Optional[int] = None) -> List[int]:
    """Per-event detection delays.

    For each true event ``[start, end)`` the search horizon extends from
    ``start`` to the start of the next event (or the series end), optionally
    capped at ``max_horizon``; the delay is the offset of the first predicted
    positive inside the horizon, or the full horizon length if the event is
    missed entirely.
    """
    predicted = np.asarray(predicted).astype(np.int64)
    actual = np.asarray(actual).astype(np.int64)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual labels must have the same shape")
    events = anomaly_segments(actual)
    length = actual.shape[0]
    delays: List[int] = []
    for index, (start, _end) in enumerate(events):
        horizon_end = events[index + 1][0] if index + 1 < len(events) else length
        if max_horizon is not None:
            horizon_end = min(horizon_end, start + max_horizon)
        window = predicted[start:horizon_end]
        hits = np.nonzero(window)[0]
        if hits.size:
            delays.append(int(hits[0]))
        else:
            delays.append(int(horizon_end - start))
    return delays


def average_detection_delay(predicted: np.ndarray, actual: np.ndarray,
                            max_horizon: Optional[int] = None) -> float:
    """Mean of :func:`detection_delays`; 0.0 when there are no true events."""
    delays = detection_delays(predicted, actual, max_horizon=max_horizon)
    if not delays:
        return 0.0
    return float(np.mean(delays))
