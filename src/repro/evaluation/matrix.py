"""Benchmark matrix runner: detectors × datasets × samplers × workers.

One entry point, :func:`run_bench_matrix`, sweeps the full cross product and
funnels every cell through :func:`~repro.evaluation.evaluate_detector`, so a
matrix cell reports exactly the metrics the paper-protocol harness reports.
Cells a detector cannot honour are not silently collapsed: a baseline has no
diffusion sampler knob, and a detector without a
:class:`~repro.training.ParallelLossSpec` cannot shard its gradients — such
cells land in the result marked ``skipped`` with the detector's own reason,
so the matrix always has ``|detectors| x |datasets| x |samplers| x |workers|``
entries.

The result serialises to a single schema-versioned ``BENCH_matrix.json``
(:func:`write_bench_matrix`), the artifact CI uploads.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .runner import EvaluationSummary, evaluate_detector

__all__ = ["BENCH_SCHEMA_VERSION", "BenchCell", "bench_detector_factory",
           "run_bench_matrix", "write_bench_matrix", "format_bench_matrix"]

#: Version of the ``BENCH_matrix.json`` layout.  Bump on any breaking change
#: to the serialised structure so downstream consumers can dispatch.
BENCH_SCHEMA_VERSION = 1


@dataclass
class BenchCell:
    """One point of the benchmark matrix."""

    detector: str
    dataset: str
    sampler: str
    num_workers: int
    summary: Optional[EvaluationSummary] = None
    skipped: bool = False
    skip_reason: Optional[str] = None

    def as_dict(self) -> Dict:
        return {
            "detector": self.detector,
            "dataset": self.dataset,
            "sampler": self.sampler,
            "num_workers": self.num_workers,
            "skipped": self.skipped,
            "skip_reason": self.skip_reason,
            "metrics": self.summary.as_dict() if self.summary is not None else None,
        }


def bench_detector_factory(name: str, seed: int):
    """Build a bench-sized detector by registry name.

    ``ImDiffusion`` gets a small config; baselines come from
    :data:`~repro.baselines.BASELINE_REGISTRY` with their budget knobs
    (epochs, window caps) turned down to bench scale when they take them.
    Override with the ``detector_factory`` argument of
    :func:`run_bench_matrix` for full-size sweeps.
    """
    if name == "ImDiffusion":
        from .. import ImDiffusionConfig, ImDiffusionDetector

        return ImDiffusionDetector(ImDiffusionConfig(
            window_size=16, num_steps=6, epochs=2, hidden_dim=16,
            num_blocks=1, num_heads=2, max_train_windows=32, train_stride=8,
            seed=seed))
    from ..baselines import BASELINE_REGISTRY

    if name not in BASELINE_REGISTRY:
        raise KeyError(f"unknown detector {name!r}; available: ImDiffusion, "
                       f"{', '.join(BASELINE_REGISTRY)}")
    factory = BASELINE_REGISTRY[name]
    kwargs = {"seed": seed}
    signature = inspect.signature(factory)
    for knob, value in (("window_size", 16), ("epochs", 2),
                        ("max_train_windows", 32), ("max_train_samples", 64),
                        ("num_trees", 16)):
        if knob in signature.parameters:
            kwargs[knob] = value
    return factory(**kwargs)


def _cell_skip_reason(probe, sampler: str, first_sampler: str,
                      num_workers: int) -> Optional[str]:
    """Why a detector cannot run a cell, or ``None`` if it can.

    Samplers only vary the diffusion inference engine, so detectors without
    an engine config run the first sampler of the sweep once and skip the
    rest (they would be byte-identical re-runs).  Worker counts above one
    need the detector's parallel spec.
    """
    has_engine = hasattr(getattr(probe, "config", None), "with_overrides")
    if not has_engine and sampler != first_sampler:
        return (f"{type(probe).__name__} has no diffusion sampler knob; "
                f"covered by the {first_sampler!r} cell")
    if num_workers > 1 and not getattr(probe, "supports_parallel", True):
        reason = getattr(probe, "parallel_unsupported_reason",
                         "no parallel training support")
        return f"does not support num_workers > 1: {reason}"
    return None


def run_bench_matrix(detectors: Sequence[str], datasets: Sequence[str],
                     samplers: Sequence[str] = ("full",),
                     workers: Sequence[int] = (1,), *,
                     num_runs: int = 1, scale: float = 0.05, seed: int = 0,
                     num_inference_steps: Optional[int] = None,
                     adjust: bool = True,
                     detector_factory: Optional[Callable[[str, int], object]] = None,
                     progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Sweep the detector × dataset × sampler × workers cross product.

    Every runnable cell is ``num_runs`` independent (fit, predict, score)
    runs through :func:`evaluate_detector` on ``load_dataset(dataset,
    seed=seed, scale=scale)``; unrunnable cells are recorded as skipped.
    Returns the schema-versioned result dict that
    :func:`write_bench_matrix` serialises.
    """
    from ..data import load_dataset

    if not detectors or not datasets or not samplers or not workers:
        raise ValueError("every matrix axis needs at least one value")
    if any(count < 1 for count in workers):
        raise ValueError("worker counts must be positive")
    factory = detector_factory or bench_detector_factory
    say = progress or (lambda message: None)

    cells: List[BenchCell] = []
    loaded = {name: load_dataset(name, seed=seed, scale=scale)
              for name in datasets}
    for dataset_name in datasets:
        dataset = loaded[dataset_name]
        for detector_name in detectors:
            probe = factory(detector_name, seed)
            for sampler in samplers:
                for num_workers in workers:
                    cell = BenchCell(detector=detector_name,
                                     dataset=dataset_name, sampler=sampler,
                                     num_workers=num_workers)
                    reason = _cell_skip_reason(probe, sampler, samplers[0],
                                               num_workers)
                    if reason is not None:
                        cell.skipped = True
                        cell.skip_reason = reason
                        say(f"skip {detector_name} x {dataset_name} x "
                            f"{sampler} x {num_workers}w: {reason}")
                        cells.append(cell)
                        continue
                    say(f"run  {detector_name} x {dataset_name} x "
                        f"{sampler} x {num_workers}w")
                    cell.summary = evaluate_detector(
                        lambda run: factory(detector_name, seed + run),
                        dataset, num_runs=num_runs,
                        detector_name=detector_name, adjust=adjust,
                        sampler=sampler,
                        num_inference_steps=num_inference_steps,
                        num_workers=num_workers)
                    cells.append(cell)

    return {
        "schema": "repro.bench_matrix",
        "schema_version": BENCH_SCHEMA_VERSION,
        "matrix": {
            "detectors": list(detectors),
            "datasets": list(datasets),
            "samplers": list(samplers),
            "workers": [int(count) for count in workers],
        },
        "config": {
            "num_runs": num_runs,
            "scale": scale,
            "seed": seed,
            "num_inference_steps": num_inference_steps,
            "adjust": adjust,
        },
        "num_cells": len(cells),
        "num_skipped": sum(1 for cell in cells if cell.skipped),
        "cells": [cell.as_dict() for cell in cells],
    }


def write_bench_matrix(result: Dict, path) -> None:
    """Serialise a :func:`run_bench_matrix` result as one JSON document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_bench_matrix(result: Dict,
                        metrics: Sequence[str] = ("f1", "r_auc_pr",
                                                  "train_seconds")) -> str:
    """Render a matrix result as an aligned text table (one row per cell)."""
    header = ["detector", "dataset", "sampler", "workers"] + list(metrics)
    rows = [header]
    for cell in result["cells"]:
        prefix = [cell["detector"], cell["dataset"], cell["sampler"],
                  str(cell["num_workers"])]
        if cell["skipped"]:
            rows.append(prefix + ["(skipped)"] + [""] * (len(metrics) - 1))
            continue
        rows.append(prefix + [f"{cell['metrics'][m]:.4f}" for m in metrics])
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    return "\n".join("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths))
                     for row in rows)
