"""Point-wise accuracy metrics with the point-adjustment protocol.

Following the evaluation protocol used by the paper and its baselines
(OmniAnomaly, TranAD, MTAD-GAT, ...), a predicted anomaly anywhere inside a
true anomalous segment counts as detecting the entire segment ("point
adjustment").  Precision, recall and F1 are then computed on the adjusted
labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["ClassificationScores", "anomaly_segments", "point_adjust",
           "precision_recall_f1"]


@dataclass(frozen=True)
class ClassificationScores:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float
    f1: float


def anomaly_segments(labels: np.ndarray) -> List[Tuple[int, int]]:
    """Contiguous ``[start, end)`` runs of 1s in a binary label array."""
    labels = np.asarray(labels).astype(bool)
    if labels.ndim != 1:
        raise ValueError("labels must be 1-D")
    segments: List[Tuple[int, int]] = []
    start = None
    for i, flag in enumerate(labels):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            segments.append((start, i))
            start = None
    if start is not None:
        segments.append((start, len(labels)))
    return segments


def point_adjust(predicted: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """Apply the point-adjustment protocol.

    For every ground-truth anomalous segment that contains at least one
    predicted anomaly, all predictions inside the segment are set to 1.
    Predictions outside true segments are left untouched.
    """
    predicted = np.asarray(predicted).astype(np.int64).copy()
    actual = np.asarray(actual).astype(np.int64)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual labels must have the same shape")
    for start, end in anomaly_segments(actual):
        if predicted[start:end].any():
            predicted[start:end] = 1
    return predicted


def precision_recall_f1(predicted: np.ndarray, actual: np.ndarray,
                        adjust: bool = True) -> ClassificationScores:
    """Precision, recall and F1, optionally with point adjustment."""
    predicted = np.asarray(predicted).astype(np.int64)
    actual = np.asarray(actual).astype(np.int64)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual labels must have the same shape")
    if adjust:
        predicted = point_adjust(predicted, actual)
    true_positive = int(np.sum((predicted == 1) & (actual == 1)))
    false_positive = int(np.sum((predicted == 1) & (actual == 0)))
    false_negative = int(np.sum((predicted == 0) & (actual == 1)))
    precision = true_positive / (true_positive + false_positive) if true_positive + false_positive else 0.0
    recall = true_positive / (true_positive + false_negative) if true_positive + false_negative else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return ClassificationScores(precision=precision, recall=recall, f1=f1)
