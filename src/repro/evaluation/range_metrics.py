"""Range-based, threshold-independent accuracy: R-AUC-PR.

The paper reports the R-AUC-PR measure of Paparrizos et al. (VLDB 2022,
"Volume Under the Surface"), which evaluates a *continuous* anomaly score
against range anomalies by surrounding every labelled segment with a buffer
region in which the label decays smoothly, and then computing the area under
the precision-recall curve of the score against these soft labels.

The implementation here follows that recipe: linear label ramps of
``buffer_size`` timestamps are added on both sides of each anomalous segment,
precision/recall are computed on the soft labels over a sweep of thresholds
(every unique score value, sub-sampled for speed), and the area under the
resulting PR curve is returned.  This is an approximation of the original
VUS code but preserves its two key properties: tolerance to small detection
offsets, and independence from any fixed threshold.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .metrics import anomaly_segments

__all__ = ["soft_range_labels", "range_auc_pr", "auc_pr"]


def soft_range_labels(labels: np.ndarray, buffer_size: int) -> np.ndarray:
    """Continuous labels in ``[0, 1]`` with linear ramps around each segment."""
    labels = np.asarray(labels).astype(np.float64)
    if buffer_size < 0:
        raise ValueError("buffer_size must be non-negative")
    soft = labels.copy()
    length = labels.shape[0]
    if buffer_size == 0:
        return soft
    for start, end in anomaly_segments(labels):
        for offset in range(1, buffer_size + 1):
            weight = 1.0 - offset / (buffer_size + 1)
            left = start - offset
            right = end - 1 + offset
            if left >= 0:
                soft[left] = max(soft[left], weight)
            if right < length:
                soft[right] = max(soft[right], weight)
    return soft


def auc_pr(scores: np.ndarray, soft_labels: np.ndarray, max_thresholds: int = 200) -> float:
    """Area under the precision-recall curve for continuous (soft) labels.

    Precision and recall generalise to soft labels by summing label weight
    over the predicted-positive set (precision) and over all positions
    (recall denominator).
    """
    scores = np.asarray(scores, dtype=np.float64)
    soft_labels = np.asarray(soft_labels, dtype=np.float64)
    if scores.shape != soft_labels.shape:
        raise ValueError("scores and labels must have the same shape")
    total_weight = soft_labels.sum()
    if total_weight <= 0:
        return 0.0

    order = np.argsort(scores)[::-1]
    sorted_labels = soft_labels[order]
    cumulative_weight = np.cumsum(sorted_labels)
    positions = np.arange(1, scores.size + 1)

    if scores.size > max_thresholds:
        idx = np.unique(np.linspace(0, scores.size - 1, max_thresholds).astype(int))
    else:
        idx = np.arange(scores.size)

    precision = cumulative_weight[idx] / positions[idx]
    recall = cumulative_weight[idx] / total_weight

    # Prepend the (recall=0, precision=first) point and integrate.
    recall = np.concatenate([[0.0], recall])
    precision = np.concatenate([[precision[0]], precision])
    return float(np.trapezoid(precision, recall))


def range_auc_pr(scores: np.ndarray, labels: np.ndarray,
                 buffer_size: Optional[int] = None) -> float:
    """R-AUC-PR: PR area of a continuous score against buffered range labels.

    Parameters
    ----------
    scores:
        Continuous anomaly scores (higher = more anomalous), one per timestamp.
    labels:
        Binary ground-truth labels.
    buffer_size:
        Width of the label ramps; defaults to half the average segment length
        (clamped to ``[2, 50]``), mirroring the original measure's use of a
        window-sized buffer.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(np.int64)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must have the same shape")
    segments = anomaly_segments(labels)
    if not segments:
        return 0.0
    if buffer_size is None:
        average_length = np.mean([end - start for start, end in segments])
        buffer_size = int(np.clip(average_length / 2, 2, 50))
    soft = soft_range_labels(labels, buffer_size)
    return auc_pr(scores, soft)
