"""Experiment harness: multi-run evaluation of detectors on datasets.

The paper reports every number as the average over six independent runs plus
the standard deviation of F1.  This module provides that protocol in a
detector-agnostic way: anything with ``fit(train)`` and ``predict(test)``
(returning an object exposing ``labels`` and ``scores``, or a plain
``(labels, scores)`` tuple) can be evaluated.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..data.datasets import MTSDataset
from ..training.loader import VALIDATION_SPLITS
from .delay import average_detection_delay
from .metrics import precision_recall_f1
from .range_metrics import range_auc_pr

__all__ = ["RunMetrics", "EvaluationSummary", "evaluate_labels", "evaluate_detector",
           "apply_detector_overrides", "average_summaries", "format_results_table"]


@dataclass(frozen=True)
class RunMetrics:
    """Metrics of one (detector, dataset, seed) run.

    ``train_seconds`` and ``train_epochs`` record the training cost of the
    run (wall-clock of ``fit`` and epochs actually executed — fewer than the
    configured budget when early stopping converges sooner); both are 0 for
    metrics computed from labels alone via :func:`evaluate_labels`.
    ``val_losses`` is the per-epoch held-out validation curve of the run
    (empty unless the detector trained with ``validation_fraction > 0``).
    """

    precision: float
    recall: float
    f1: float
    r_auc_pr: float
    add: float
    train_seconds: float = 0.0
    train_epochs: int = 0
    val_losses: Tuple[float, ...] = ()

    @property
    def final_val_loss(self) -> float:
        """Last validation loss of the run (NaN when none was recorded)."""
        return self.val_losses[-1] if self.val_losses else float("nan")


@dataclass
class EvaluationSummary:
    """Aggregated metrics of a detector on one dataset over several runs."""

    detector: str
    dataset: str
    runs: List[RunMetrics] = field(default_factory=list)

    def _mean(self, attribute: str) -> float:
        if not self.runs:
            return 0.0
        return float(np.mean([getattr(run, attribute) for run in self.runs]))

    def _std(self, attribute: str) -> float:
        if not self.runs:
            return 0.0
        return float(np.std([getattr(run, attribute) for run in self.runs]))

    @property
    def precision(self) -> float:
        return self._mean("precision")

    @property
    def recall(self) -> float:
        return self._mean("recall")

    @property
    def f1(self) -> float:
        return self._mean("f1")

    @property
    def f1_std(self) -> float:
        return self._std("f1")

    @property
    def r_auc_pr(self) -> float:
        return self._mean("r_auc_pr")

    @property
    def add(self) -> float:
        return self._mean("add")

    @property
    def add_std(self) -> float:
        return self._std("add")

    @property
    def train_seconds(self) -> float:
        return self._mean("train_seconds")

    @property
    def train_epochs(self) -> float:
        return self._mean("train_epochs")

    def as_dict(self) -> Dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "f1_std": self.f1_std,
            "r_auc_pr": self.r_auc_pr,
            "add": self.add,
            "add_std": self.add_std,
            "train_seconds": self.train_seconds,
            "train_epochs": self.train_epochs,
        }


def evaluate_labels(labels: np.ndarray, scores: np.ndarray, actual: np.ndarray,
                    adjust: bool = True) -> RunMetrics:
    """Compute the full metric set for one prediction."""
    accuracy = precision_recall_f1(labels, actual, adjust=adjust)
    return RunMetrics(
        precision=accuracy.precision,
        recall=accuracy.recall,
        f1=accuracy.f1,
        r_auc_pr=range_auc_pr(scores, actual),
        add=average_detection_delay(labels, actual),
    )


def apply_detector_overrides(detector, *, sampler: Optional[str] = None,
                             num_inference_steps: Optional[int] = None,
                             ddim_eta: Optional[float] = None,
                             stride_spacing: Optional[str] = None,
                             validation_fraction: Optional[float] = None,
                             validation_split: Optional[str] = None,
                             num_workers: Optional[int] = None):
    """Apply run-time config overrides to a detector, family-agnostically.

    One funnel for the three override groups the harness and the bench
    matrix share:

    * *engine* knobs (``sampler``, ``num_inference_steps``, ``ddim_eta``,
      ``stride_spacing``) go through the detector's
      ``config.with_overrides``; detectors without such a config (the
      baselines) ignore them,
    * *validation* knobs (``validation_fraction``, ``validation_split``)
      go through the config when there is one and otherwise set the
      like-named detector attributes (read at ``fit`` time),
    * ``num_workers`` follows the same config-or-attribute route.

    ``None`` always means "keep the current value"; detectors without a
    given knob are left unchanged.  Returns the detector.
    """
    if validation_fraction is not None and not 0.0 <= validation_fraction < 1.0:
        raise ValueError("validation_fraction must lie in [0, 1)")
    if validation_split is not None and validation_split not in VALIDATION_SPLITS:
        raise ValueError(f"validation_split must be one of {VALIDATION_SPLITS}")

    config = getattr(detector, "config", None)
    has_config = config is not None and hasattr(config, "with_overrides")

    overrides = {}
    if has_config:
        if sampler is not None:
            overrides["sampler"] = sampler
            if sampler == "full":
                # A leftover step count would re-imply strided in
                # __post_init__, and leftover zoo knobs would fail the full
                # sampler's validation.
                overrides["num_inference_steps"] = None
                overrides["ddim_eta"] = 0.0
                overrides["stride_spacing"] = "uniform"
            elif sampler != "ddim":
                overrides["ddim_eta"] = 0.0
        if num_inference_steps is not None:
            overrides["num_inference_steps"] = num_inference_steps
        if ddim_eta is not None:
            overrides["ddim_eta"] = ddim_eta
        if stride_spacing is not None:
            overrides["stride_spacing"] = stride_spacing
    if validation_fraction is not None:
        overrides["validation_fraction"] = float(validation_fraction)
    if validation_split is not None:
        overrides["validation_split"] = validation_split
    if num_workers is not None:
        overrides["num_workers"] = int(num_workers)
    if not overrides:
        return detector

    if has_config:
        detector.config = config.with_overrides(**overrides)
        return detector
    for name, value in overrides.items():
        if hasattr(detector, name):
            setattr(detector, name, value)
    return detector


def _extract_labels_scores(prediction) -> tuple:
    """Accept either a DetectionResult-like object or a (labels, scores) tuple."""
    if hasattr(prediction, "labels") and hasattr(prediction, "scores"):
        return np.asarray(prediction.labels), np.asarray(prediction.scores)
    labels, scores = prediction
    return np.asarray(labels), np.asarray(scores)


def evaluate_detector(detector_factory: Callable[[int], object], dataset: MTSDataset,
                      num_runs: int = 3, detector_name: Optional[str] = None,
                      adjust: bool = True, sampler: Optional[str] = None,
                      num_inference_steps: Optional[int] = None,
                      ddim_eta: Optional[float] = None,
                      stride_spacing: Optional[str] = None,
                      validation_fraction: Optional[float] = None,
                      validation_split: Optional[str] = None,
                      num_workers: Optional[int] = None,
                      score_workers: Optional[int] = None) -> EvaluationSummary:
    """Run a detector ``num_runs`` times on ``dataset`` and aggregate the metrics.

    Parameters
    ----------
    detector_factory:
        Callable mapping a run index (used as seed) to a fresh detector
        instance with ``fit`` / ``predict`` methods.
    dataset:
        The train/test split with ground-truth test labels.
    num_runs:
        Number of independent runs (the paper uses 6).
    sampler, num_inference_steps, ddim_eta, stride_spacing:
        Inference-engine overrides applied to every detector the factory
        produces (a subsequence sampler with a small ``num_inference_steps``
        trades a little accuracy for a proportional scoring speedup; see
        the :mod:`repro.diffusion.samplers` registry for the zoo).
        Ignored for detectors without an ``ImDiffusionConfig``-style
        ``config`` attribute (the baselines).
    validation_fraction, validation_split:
        Held-out validation overrides applied to every detector the factory
        produces (``validation_split="tail"`` validates on the most recent
        windows).  Applied through the config for ImDiffusion and through
        the detector attributes for the baselines; detectors without the
        knobs are left unchanged.
    num_workers:
        Data-parallel training override: shard every gradient batch across
        this many spawned workers.  Applied config-or-attribute like the
        validation knobs; the random stream is worker-count invariant, so
        metrics match the serial run up to float summation order.
    score_workers:
        Fan each run's scoring pass out across this many workers via the
        sharded inference engine (:mod:`repro.inference`).  Metrics are
        unchanged for any worker count — scores are bit-identical to the
        serial path.  Ignored for detectors whose ``predict`` lacks the
        knob (the baselines).
    """
    if num_runs < 1:
        raise ValueError("num_runs must be at least 1")
    name = detector_name or getattr(detector_factory, "__name__", "detector")
    summary = EvaluationSummary(detector=name, dataset=dataset.name)
    for run in range(num_runs):
        detector = apply_detector_overrides(
            detector_factory(run), sampler=sampler,
            num_inference_steps=num_inference_steps, ddim_eta=ddim_eta,
            stride_spacing=stride_spacing,
            validation_fraction=validation_fraction,
            validation_split=validation_split, num_workers=num_workers)
        fit_start = time.perf_counter()
        detector.fit(dataset.train)
        train_seconds = time.perf_counter() - fit_start
        if (score_workers is not None and score_workers > 1 and
                "score_workers" in inspect.signature(detector.predict).parameters):
            prediction = detector.predict(dataset.test,
                                          score_workers=score_workers)
        else:
            prediction = detector.predict(dataset.test)
        labels, scores = _extract_labels_scores(prediction)
        metrics = evaluate_labels(labels, scores, dataset.test_labels, adjust=adjust)
        train_result = getattr(detector, "last_train_result", None)
        train_epochs = train_result.epochs_run if train_result is not None else 0
        val_losses = tuple(getattr(train_result, "val_losses", ()) or ())
        summary.runs.append(replace(metrics, train_seconds=train_seconds,
                                    train_epochs=train_epochs,
                                    val_losses=val_losses))
    return summary


def average_summaries(summaries: Sequence[EvaluationSummary],
                      detector: Optional[str] = None) -> Dict[str, float]:
    """Average metrics over datasets (the paper's Table 3 / Table 6 rows)."""
    selected = [s for s in summaries if detector is None or s.detector == detector]
    if not selected:
        raise ValueError("no summaries to average")
    return {
        "precision": float(np.mean([s.precision for s in selected])),
        "recall": float(np.mean([s.recall for s in selected])),
        "f1": float(np.mean([s.f1 for s in selected])),
        "f1_std": float(np.mean([s.f1_std for s in selected])),
        "r_auc_pr": float(np.mean([s.r_auc_pr for s in selected])),
        "add": float(np.mean([s.add for s in selected])),
        "train_seconds": float(np.mean([s.train_seconds for s in selected])),
        "train_epochs": float(np.mean([s.train_epochs for s in selected])),
    }


def format_results_table(summaries: Sequence[EvaluationSummary],
                         metrics: Sequence[str] = ("precision", "recall", "f1", "f1_std",
                                                   "r_auc_pr", "add")) -> str:
    """Render summaries as an aligned text table (one row per detector/dataset)."""
    header = ["detector", "dataset"] + list(metrics)
    rows = [header]
    for summary in summaries:
        values = summary.as_dict()
        rows.append([summary.detector, summary.dataset]
                    + [f"{values[m]:.4f}" if m != "add" else f"{values[m]:.1f}" for m in metrics])
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
