"""Sharded inference: data-parallel scoring over spawn-safe worker pools.

The inference-side sibling of the training package's gradient-reducer seam:

* :class:`WorkerPool` — spawn-started daemon workers with idempotent,
  atexit-guaranteed cleanup (shared with the training reducer),
* :class:`ScoreSpec` / :class:`ScoreTask` — one batched scoring call
  factored into parent-side randomness and pure worker-side kernels,
* :class:`SerialScoreReducer` — the in-process path, bit-identical to the
  pre-engine inline scoring loop,
* :class:`MultiprocessScoreReducer` — the same plan fanned out round-robin
  across a persistent scoring-worker pool, with parameters shipped through
  the zero-copy shared-memory transport of :mod:`repro.nn.shm`.

See the README's "Sharded inference" section for the determinism contract
and guidance on when extra score workers help.
"""

from .parallel import (
    MultiprocessScoreReducer,
    ScoreReducer,
    ScoreSpec,
    ScoreTask,
    SerialScoreReducer,
)
from .pool import WorkerPool, register_cleanup, unregister_cleanup

__all__ = [
    "MultiprocessScoreReducer",
    "ScoreReducer",
    "ScoreSpec",
    "ScoreTask",
    "SerialScoreReducer",
    "WorkerPool",
    "register_cleanup",
    "unregister_cleanup",
]
