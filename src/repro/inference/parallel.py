"""The sharded inference engine: the ``ScoreReducer`` family.

Scoring dominates serving latency — every reverse-diffusion pass in
``detector.score`` and the :class:`~repro.serving.service.DetectorService`
hot path ran in a single process, while training has been data-parallel
since the :class:`~repro.training.GradientReducer` seam landed.  This module
mirrors that seam for inference:

* a :class:`ScoreSpec` factors one batched scoring call into a deterministic
  task ``plan`` ((mask policy, window chunk) pairs in the serial loop's
  order), a parent-side ``draw`` of each task's randomness, and a pure,
  rng-free ``compute`` kernel;
* :class:`SerialScoreReducer` runs the plan in-process — bit-identical to
  the pre-engine inline loop because the draws and the accumulation order
  are exactly the serial ones;
* :class:`MultiprocessScoreReducer` dispatches the same plan round-robin
  across a persistent pool of spawn-started scoring workers.

Determinism contract: *all* randomness is drawn in the parent, in plan
order, regardless of worker count; tasks are pure given their payload; and
the parent consumes results in plan order.  Scores are therefore invariant
across worker counts, and a 1-worker pool reproduces the serial path
bit for bit (``np.array_equal``, gated in ``benchmarks/test_serving_scale``).
The contract covers the whole sampler zoo, stochastic samplers included:
which reverse transitions consume randomness is the sampler's
``samples_noise`` declaration, which ``draw`` honours through
``draw_impute_noise`` — an ``eta > 0`` DDIM jump's noise rides in the task's
:class:`~repro.diffusion.ImputeNoise` payload (and shards with it) exactly
like the adjacent-step DDPM draws.  Samplers with per-pass state (the PNDM
eps history) re-initialise it per ``impute`` call, i.e. per task, so
sharding cannot leak history across chunk boundaries.

Parameters cross the process boundary through the zero-copy shared-memory
transport of :mod:`repro.nn.shm`: workers attach once at pool start-up and
every task message carries only the windows, the noise payload and the
expected block generation — per-step pickling no longer scales with model
size.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..nn.shm import SharedParameterBlock, SharedParameterSpec, SharedParameterView
from .pool import WorkerPool, register_cleanup, unregister_cleanup

__all__ = [
    "ScoreTask",
    "ScoreSpec",
    "ScoreReducer",
    "SerialScoreReducer",
    "MultiprocessScoreReducer",
]

#: ``on_result(task, step_squared)`` with ``step_squared`` mapping progress
#: (1 = noisiest visited step) to ``(task_windows, window, features)`` squared
#: errors.  Called exactly once per task, in plan order.
ResultFn = Callable[["ScoreTask", Dict[int, np.ndarray]], None]


@dataclass(frozen=True)
class ScoreTask:
    """One unit of a batched scoring call: a mask policy over a window chunk."""

    policy_index: int
    start: int   # first window row of the chunk (inclusive)
    stop: int    # last window row of the chunk (exclusive)

    @property
    def size(self) -> int:
        return self.stop - self.start


class ScoreSpec:
    """A batched scoring pass factored for sharded execution.

    The serial scorer interleaves its randomness with its computation; a
    spec splits them so the randomness can stay in the parent while the
    computation fans out.  The contract mirrors
    :class:`~repro.training.ParallelLossSpec`: iterating
    ``compute(windows[t.start:t.stop], t, draw(windows, t, rng))`` over
    ``plan(n)`` must be bit-identical to the serial scoring loop, consuming
    ``rng`` in the same order.
    """

    def build(self) -> List:
        """Materialise the model parameters on the worker side.

        Called once per worker after the spec is unpickled; must return the
        parameters in exactly the order of :meth:`parent_parameters` (each
        worker swaps them to shared-memory views of the parent's values).
        """
        raise NotImplementedError

    def parent_parameters(self) -> List:
        """The live parameter list the parent publishes to the shared block."""
        raise NotImplementedError

    def plan(self, num_windows: int) -> List[ScoreTask]:
        """The task decomposition of one batch, in serial-loop order."""
        raise NotImplementedError

    def draw(self, windows: np.ndarray, task: ScoreTask,
             rng: Optional[np.random.Generator]):
        """Every random draw of one task, executed in the parent in plan order."""
        return None

    def compute(self, windows: np.ndarray, task: ScoreTask,
                payload) -> Dict[int, np.ndarray]:
        """The pure, rng-free scoring kernel of one task.

        ``windows`` is the task's chunk (``task.stop - task.start`` rows);
        returns ``progress -> (chunk, window, features)`` squared errors.
        """
        raise NotImplementedError


class ScoreReducer:
    """Strategy that turns one batch of windows into per-step squared errors.

    The inference-side sibling of :class:`~repro.training.GradientReducer`:
    ``open``/``close`` bracket resource ownership (worker pools, shared
    memory), :meth:`window_errors` executes one batched scoring call.
    """

    def open(self) -> None:
        """Acquire resources (worker pools, shared-memory blocks)."""

    def close(self) -> None:
        """Release resources acquired by :meth:`open`; idempotent."""

    def window_errors(self, windows: np.ndarray,
                      rng: Optional[np.random.Generator],
                      on_result: Optional[ResultFn] = None
                      ) -> Optional[Dict[int, np.ndarray]]:
        """Score one batch of windows through the spec's task plan.

        With the default accumulator, returns ``progress -> (batch, window,
        features)`` summed squared errors (the serial scorer's ``error_sum``).
        A custom ``on_result`` receives each task's raw result in plan order
        instead — offline scoring uses this to scatter-add by window start —
        and the method returns ``None``.
        """
        raise NotImplementedError

    def __enter__(self) -> "ScoreReducer":
        self.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _batch_accumulator(num_windows: int):
    """Default result handler: sum task results into per-progress totals."""
    totals: Dict[int, np.ndarray] = {}

    def accumulate(task: ScoreTask, step_squared: Dict[int, np.ndarray]) -> None:
        for progress, squared in step_squared.items():
            if progress not in totals:
                totals[progress] = np.zeros((num_windows,) + squared.shape[1:])
            totals[progress][task.start:task.stop] += squared

    return totals, accumulate


class SerialScoreReducer(ScoreReducer):
    """In-process execution of a :class:`ScoreSpec` (the 1-process path).

    Draw-then-compute per task, in plan order, on the caller's generator —
    by the spec contract this is bit-identical to the pre-engine inline
    scoring loop, and it is the reference the multiprocess reducer is gated
    against.
    """

    def __init__(self, spec: ScoreSpec) -> None:
        self.spec = spec

    def window_errors(self, windows: np.ndarray,
                      rng: Optional[np.random.Generator],
                      on_result: Optional[ResultFn] = None
                      ) -> Optional[Dict[int, np.ndarray]]:
        windows = np.asarray(windows, dtype=np.float64)
        totals = None
        handler = on_result
        if handler is None:
            totals, handler = _batch_accumulator(windows.shape[0])
        for task in self.spec.plan(windows.shape[0]):
            payload = self.spec.draw(windows, task, rng)
            handler(task, self.spec.compute(
                windows[task.start:task.stop], task, payload))
        return totals


def _score_worker_main(conn, spec: ScoreSpec,
                       shm_spec: SharedParameterSpec) -> None:
    """Scoring-worker loop: receive (generation, task, chunk, payload), reply errors.

    Runs in a spawned subprocess.  The spec and the shared-memory handle
    arrive pickled through the process arguments; the worker rebuilds the
    model once, swaps its parameters to zero-copy views of the parent's
    block, and then serves tasks until the ``None`` sentinel.  Start-up
    failures are remembered and re-raised per task so the parent never loses
    pipe lockstep; per-task exceptions ship back as formatted tracebacks.
    """
    view: Optional[SharedParameterView] = None
    failure: Optional[str] = None
    try:
        parameters = spec.build()
        view = SharedParameterView(shm_spec)
        view.attach_to(parameters)
    except Exception:  # noqa: BLE001 - reported on first task
        failure = traceback.format_exc()
    while True:
        try:
            message = conn.recv()
        except EOFError:  # parent died / closed the pipe
            break
        if message is None:
            break
        generation, task, chunk, payload = message
        try:
            if failure is not None:
                raise RuntimeError(
                    "scoring worker failed to initialise:\n" + failure)
            view.check_generation(generation)
            conn.send(("ok", spec.compute(chunk, task, payload)))
        except Exception:  # noqa: BLE001 - shipped to the parent verbatim
            conn.send(("error", traceback.format_exc()))
    if view is not None:
        view.close()


class MultiprocessScoreReducer(ScoreReducer):
    """Dispatch the spec's task plan across a persistent scoring-worker pool.

    Tasks are assigned round-robin with one task in flight per worker (the
    parent draws/sends task ``i+1`` while workers compute, a simple software
    pipeline), and results are consumed strictly in plan order, so the
    accumulation arithmetic matches the serial reducer addition for
    addition.  Unlike the training reducer there is no gradient averaging —
    ``num_workers=1`` is valid and is exactly the serial computation moved
    into one spawned process (the bit-identity gate).

    The pool persists across :meth:`window_errors` calls (``open``/``close``
    or context manager), so a long-lived service pays the spawn cost once.
    Parameters are published to a shared-memory block at :meth:`open`;
    :meth:`refresh_parameters` re-publishes after a parent-side weight swap.
    """

    def __init__(self, spec: ScoreSpec, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.spec = spec
        self.num_workers = int(num_workers)
        self._pool: Optional[WorkerPool] = None
        self._block: Optional[SharedParameterBlock] = None
        self._generation = 0

    # ------------------------------------------------------------------
    def open(self) -> None:
        if self._pool is not None:
            return
        try:
            self._block = SharedParameterBlock(self.spec.parent_parameters())
            self._generation = self._block.publish(self.spec.parent_parameters())
            self._pool = WorkerPool(
                _score_worker_main, (self.spec, self._block.spec()),
                self.num_workers, name="score-worker")
            self._pool.start()
        except Exception:
            self.close()
            raise
        register_cleanup(self)

    def refresh_parameters(self) -> int:
        """Re-publish the parent parameters (after a hot weight swap).

        Bumps the shared block's generation counter and returns it; workers
        pick the new weights up on their next task without restarting.
        """
        if self._block is not None:
            self._generation = self._block.publish(self.spec.parent_parameters())
        return self._generation

    @property
    def generation(self) -> int:
        """Generation of the most recently published parameter snapshot."""
        return self._generation

    @property
    def worker_pids(self) -> List[int]:
        """PIDs of the live scoring workers (hot-swap tests assert these
        stay fixed across a weight republish)."""
        if self._pool is None:
            return []
        return [process.pid for process in self._pool._processes]

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
        block, self._block = self._block, None
        if block is not None:
            block.close()
        unregister_cleanup(self)

    # ------------------------------------------------------------------
    def window_errors(self, windows: np.ndarray,
                      rng: Optional[np.random.Generator],
                      on_result: Optional[ResultFn] = None
                      ) -> Optional[Dict[int, np.ndarray]]:
        if self._pool is None:
            self.open()
        windows = np.asarray(windows, dtype=np.float64)
        totals = None
        handler = on_result
        if handler is None:
            totals, handler = _batch_accumulator(windows.shape[0])
        tasks = self.spec.plan(windows.shape[0])
        connections = self._pool.connections
        outstanding: List[Optional[ScoreTask]] = [None] * len(connections)

        def collect(worker: int) -> None:
            task, outstanding[worker] = outstanding[worker], None
            try:
                reply = connections[worker].recv()
            except EOFError:
                raise RuntimeError(
                    "a scoring worker died mid-batch; the score spec is "
                    "probably not spawn-safe (it must be picklable and "
                    "rng-free in compute())"
                ) from None
            if reply[0] == "error":
                raise RuntimeError("scoring worker failed:\n" + reply[1])
            handler(task, reply[1])

        try:
            for index, task in enumerate(tasks):
                worker = index % len(connections)
                if outstanding[worker] is not None:
                    collect(worker)
                payload = self.spec.draw(windows, task, rng)
                connections[worker].send(
                    (self._generation, task, windows[task.start:task.stop],
                     payload))
                outstanding[worker] = task
            # Drain in plan order: the remaining tasks sit on consecutive
            # workers starting at the one task len(tasks)-size was sent to.
            first = len(tasks) % len(connections)
            for offset in range(len(connections)):
                worker = (first + offset) % len(connections)
                if outstanding[worker] is not None:
                    collect(worker)
        except Exception:
            # A failed batch leaves replies in flight; tear the pool down so
            # the lockstep protocol cannot desynchronise on the next call.
            self.close()
            raise
        return totals
