"""Spawn-safe persistent worker pools with guaranteed cleanup.

Both data-parallel engines (gradient workers in :mod:`repro.training`,
scoring workers in :mod:`repro.inference`) need the same process plumbing: a
pool of ``spawn``-started daemon processes, one duplex pipe each, a sentinel
shutdown protocol, and — critically — a cleanup path that cannot be skipped.
:class:`WorkerPool` factors that plumbing out of the reducers, and the
module-level cleanup registry guarantees that an exception, an early
``sys.exit`` or a Ctrl-C mid-epoch never leaks worker processes or orphaned
shared-memory segments:

* :meth:`WorkerPool.close` is idempotent and safe to call at any point
  (including on a half-started pool),
* every started pool — and any other closable resource handed to
  :func:`register_cleanup`, e.g. a shared-memory parameter block — is
  tracked in a weak set and closed by an ``atexit`` hook registered the
  first time a resource appears.  Normal ``close()`` unregisters, so the
  hook only ever fires for resources that leaked past their owner.
"""

from __future__ import annotations

import atexit
import multiprocessing
import weakref
from typing import Callable, List, Tuple

__all__ = ["WorkerPool", "register_cleanup", "unregister_cleanup"]

# Resources (pools, shared-memory blocks, reducers) whose close() must run
# even if their owner never reaches its finally block.  Weak references: a
# resource that was garbage-collected needs no cleanup call.
_CLEANUP_REGISTRY: "weakref.WeakSet" = weakref.WeakSet()
_ATEXIT_INSTALLED = False


def _close_registered() -> None:  # pragma: no cover - exercised via subprocess
    for resource in list(_CLEANUP_REGISTRY):
        try:
            resource.close()
        except Exception:
            pass


def register_cleanup(resource) -> None:
    """Track ``resource`` (anything with an idempotent ``close()``) for atexit."""
    global _ATEXIT_INSTALLED
    if not _ATEXIT_INSTALLED:
        # Registered lazily so importing repro never touches atexit; LIFO
        # ordering runs this hook before multiprocessing's own exit handler,
        # so workers get their shutdown sentinel while pipes are still alive.
        atexit.register(_close_registered)
        _ATEXIT_INSTALLED = True
    _CLEANUP_REGISTRY.add(resource)


def unregister_cleanup(resource) -> None:
    """Stop tracking a resource its owner closed normally."""
    _CLEANUP_REGISTRY.discard(resource)


class WorkerPool:
    """A pool of spawn-started daemon workers, one duplex pipe per worker.

    ``target(conn, *args)`` runs in each worker; it must loop on
    ``conn.recv()`` and treat ``None`` as the shutdown sentinel.  The pool
    owns only process/pipe lifecycle — messaging discipline (scatter/gather
    lockstep, round-robin pipelines) belongs to the caller, which accesses
    the parent pipe ends through :attr:`connections`.
    """

    def __init__(self, target: Callable, args: Tuple, num_workers: int,
                 name: str = "worker") -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.target = target
        self.args = tuple(args)
        self.num_workers = int(num_workers)
        self.name = name
        self._processes: List = []
        self._connections: List = []

    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return bool(self._processes)

    @property
    def size(self) -> int:
        return len(self._connections)

    @property
    def connections(self) -> List:
        return self._connections

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the workers; idempotent once started."""
        if self._processes:
            return
        context = multiprocessing.get_context("spawn")  # fork-free by design
        try:
            for index in range(self.num_workers):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=self.target, args=(child_conn,) + self.args,
                    name=f"{self.name}-{index}", daemon=True)
                process.start()
                child_conn.close()
                self._processes.append(process)
                self._connections.append(parent_conn)
        except Exception:
            # A partial pool must never survive: reap what did spawn so a
            # retry starts from scratch instead of silently running with
            # fewer workers than requested.
            self.close()
            raise
        register_cleanup(self)

    def close(self) -> None:
        """Shut the pool down; idempotent and safe on a half-started pool."""
        connections, self._connections = self._connections, []
        processes, self._processes = self._processes, []
        for conn in connections:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join(timeout=1.0)
        for conn in connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        unregister_cleanup(self)

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
