"""Masking strategies used to create the imputation targets."""

from .base import MaskingStrategy, validate_masks
from .grating import GratingMasking
from .random_mask import RandomMasking

__all__ = ["MaskingStrategy", "validate_masks", "GratingMasking", "RandomMasking"]
