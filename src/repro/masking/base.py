"""Masking strategy interface.

ImDiffusion creates missing values on purpose (Sec. 4.2): a masking strategy
produces one or more binary masks over a ``(window_length, num_features)``
window, where ``1`` marks an *observed* value and ``0`` a value that must be
imputed.  Strategies return a set of complementary masks whose masked regions
jointly cover every position, so that after imputing each masked view and
merging, every timestamp has a prediction-error signal.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

__all__ = ["MaskingStrategy", "validate_masks"]


class MaskingStrategy(ABC):
    """Produces complementary observation masks for imputation."""

    @abstractmethod
    def masks(self, window_length: int, num_features: int,
              rng: Optional[np.random.Generator] = None) -> List[np.ndarray]:
        """Return a list of masks of shape ``(window_length, num_features)``.

        Values are ``1.0`` where the data is observed and ``0.0`` where it is
        masked (to be imputed).  The union of the masked regions over all
        returned masks must cover every position.
        """

    @property
    def num_policies(self) -> int:
        """Number of masks produced per window (the ``p`` index in the paper)."""
        return 2


def validate_masks(masks: List[np.ndarray]) -> None:
    """Check that the masked regions of ``masks`` jointly cover every position."""
    if not masks:
        raise ValueError("no masks provided")
    shape = masks[0].shape
    coverage = np.zeros(shape, dtype=bool)
    for mask in masks:
        if mask.shape != shape:
            raise ValueError("all masks must share the same shape")
        values = np.unique(mask)
        if not set(values.tolist()).issubset({0.0, 1.0}):
            raise ValueError("masks must be binary (0/1)")
        coverage |= mask == 0
    if not coverage.all():
        raise ValueError("masked regions do not cover every position")
