"""Grating masking strategy (Sec. 4.2, Fig. 3 of the paper).

The window is divided along the time axis into alternating chunks; policy
``p=0`` masks the even chunks and observes the odd ones, policy ``p=1`` is the
exact complement.  Together the two policies guarantee that every timestamp is
imputed exactly once, and each imputation can "peek" at the neighbouring
future chunk, which is what gives ImDiffusion its timeliness advantage.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import MaskingStrategy

__all__ = ["GratingMasking"]


class GratingMasking(MaskingStrategy):
    """Equally spaced alternating time-chunk masks.

    Parameters
    ----------
    num_masked_windows, num_unmasked_windows:
        Number of masked / unmasked chunks per detection window (both are 5 in
        the paper's Table 1).  The window is split into
        ``num_masked_windows + num_unmasked_windows`` chunks of (near-)equal
        length which alternate between masked and observed.
    """

    def __init__(self, num_masked_windows: int = 5, num_unmasked_windows: int = 5) -> None:
        if num_masked_windows < 1 or num_unmasked_windows < 1:
            raise ValueError("chunk counts must be at least 1")
        self.num_masked_windows = num_masked_windows
        self.num_unmasked_windows = num_unmasked_windows

    @property
    def num_chunks(self) -> int:
        return self.num_masked_windows + self.num_unmasked_windows

    def masks(self, window_length: int, num_features: int,
              rng: Optional[np.random.Generator] = None) -> List[np.ndarray]:
        if window_length < self.num_chunks:
            raise ValueError(
                f"window of length {window_length} cannot be split into {self.num_chunks} chunks"
            )
        boundaries = np.linspace(0, window_length, self.num_chunks + 1).astype(int)
        mask_p0 = np.ones((window_length, num_features), dtype=np.float64)
        for chunk_index in range(self.num_chunks):
            start, end = boundaries[chunk_index], boundaries[chunk_index + 1]
            if chunk_index % 2 == 0:
                mask_p0[start:end, :] = 0.0
        mask_p1 = 1.0 - mask_p0
        return [mask_p0, mask_p1]
