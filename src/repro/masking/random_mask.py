"""Random masking strategy (the ablation baseline of Sec. 4.2 / 5.3.4).

Each value of the window is masked independently with probability
``mask_ratio`` (50 % in the paper, following CSDI).  To guarantee that every
position is imputed at least once, the second policy is the exact complement
of the first.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import MaskingStrategy

__all__ = ["RandomMasking"]


class RandomMasking(MaskingStrategy):
    """Independent Bernoulli masking with a complementary second policy."""

    def __init__(self, mask_ratio: float = 0.5, seed: int = 0) -> None:
        if not 0.0 < mask_ratio < 1.0:
            raise ValueError("mask_ratio must be strictly between 0 and 1")
        self.mask_ratio = mask_ratio
        self.seed = seed

    def masks(self, window_length: int, num_features: int,
              rng: Optional[np.random.Generator] = None) -> List[np.ndarray]:
        rng = rng or np.random.default_rng(self.seed)
        observed = (rng.random((window_length, num_features)) >= self.mask_ratio)
        mask_p0 = observed.astype(np.float64)
        mask_p1 = 1.0 - mask_p0
        return [mask_p0, mask_p1]
