"""Denoiser networks for ImDiffusion."""

from .embeddings import (
    ComplementaryEmbedding,
    DiffusionStepEmbedding,
    MaskPolicyEmbedding,
    sinusoidal_embedding,
)
from .imtransformer import ImTransformer, ResidualBlock

__all__ = [
    "ComplementaryEmbedding",
    "DiffusionStepEmbedding",
    "MaskPolicyEmbedding",
    "sinusoidal_embedding",
    "ImTransformer",
    "ResidualBlock",
]
