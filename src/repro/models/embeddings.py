"""Embeddings used by the ImTransformer denoiser (Fig. 5 of the paper).

Four kinds of auxiliary information are embedded and injected into the
denoiser:

* the diffusion step ``t`` (sinusoidal embedding followed by an MLP),
* the masking policy index ``p`` (a learnable table with one row per policy),
* the "complementary information": sinusoidal time-position embeddings along
  the window axis and a learnable per-feature embedding along the channel
  axis.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Embedding, Linear, Module, Tensor

__all__ = ["sinusoidal_embedding", "DiffusionStepEmbedding", "MaskPolicyEmbedding",
           "ComplementaryEmbedding"]


def sinusoidal_embedding(positions: np.ndarray, dim: int, max_period: float = 10000.0) -> np.ndarray:
    """Classic transformer sinusoidal embedding of integer ``positions``.

    Returns an array of shape ``positions.shape + (dim,)``; no gradients flow
    through this function (it is a fixed encoding).
    """
    if dim % 2 != 0:
        raise ValueError("embedding dimension must be even")
    positions = np.asarray(positions, dtype=np.float64)
    half = dim // 2
    freqs = np.exp(-np.log(max_period) * np.arange(half) / half)
    args = positions[..., None] * freqs
    return np.concatenate([np.sin(args), np.cos(args)], axis=-1)


class DiffusionStepEmbedding(Module):
    """Sinusoidal embedding of the diffusion step ``t`` refined by a two-layer MLP."""

    def __init__(self, hidden_dim: int, embedding_dim: int = 32,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.embedding_dim = embedding_dim
        self.proj1 = Linear(embedding_dim, hidden_dim, rng=rng)
        self.proj2 = Linear(hidden_dim, hidden_dim, rng=rng)

    def forward(self, steps: np.ndarray) -> Tensor:
        """Embed integer steps into ``(batch, hidden_dim)``.

        ``steps`` may be a scalar (embedded as a single-row batch) or an
        array of shape ``(batch,)``; entries are independent, so one call
        can embed a heterogeneous mix of diffusion timesteps.
        """
        steps = np.atleast_1d(np.asarray(steps))
        encoded = sinusoidal_embedding(steps, self.embedding_dim)
        return self.proj2(self.proj1(Tensor(encoded)).silu()).silu()


class MaskPolicyEmbedding(Module):
    """Learnable embedding of the grating-mask policy index ``p`` (Sec. 4.2)."""

    def __init__(self, num_policies: int, hidden_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.table = Embedding(num_policies, hidden_dim, rng=rng)

    def forward(self, policies: np.ndarray) -> Tensor:
        return self.table(np.asarray(policies, dtype=np.int64))


class ComplementaryEmbedding(Module):
    """Time- and feature-dimension side information (the paper's "complementary information").

    Produces a tensor of shape ``(1, hidden_dim, num_features, window_length)``
    that is broadcast-added inside every residual block: sinusoidal encodings
    of the time index plus a learnable embedding of the feature index, each
    projected to the hidden dimension.
    """

    def __init__(self, num_features: int, hidden_dim: int, time_embedding_dim: int = 32,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_features = num_features
        self.hidden_dim = hidden_dim
        self.time_embedding_dim = time_embedding_dim
        self.time_proj = Linear(time_embedding_dim, hidden_dim, rng=rng)
        self.feature_table = Embedding(num_features, hidden_dim, rng=rng)

    def forward(self, window_length: int) -> Tensor:
        time_encoded = sinusoidal_embedding(np.arange(window_length), self.time_embedding_dim)
        time_emb = self.time_proj(Tensor(time_encoded))          # (L, hidden)
        feature_emb = self.feature_table(np.arange(self.num_features))  # (K, hidden)
        # Broadcast-add to (1, hidden, K, L).
        time_part = time_emb.transpose(1, 0).reshape(1, self.hidden_dim, 1, window_length)
        feature_part = feature_emb.transpose(1, 0).reshape(1, self.hidden_dim, self.num_features, 1)
        return time_part + feature_part
