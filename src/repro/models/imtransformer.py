"""ImTransformer: the denoising network of ImDiffusion (Sec. 4.4, Fig. 5).

The architecture follows the paper (which in turn builds on CSDI/DiffWave):

* the two input channels (corrupted masked data and the reference channel)
  are projected into a hidden representation,
* a stack of residual blocks processes the representation; each block adds
  the diffusion-step and mask-policy embeddings, applies a *temporal*
  transformer layer (attention over the window axis, shared across features)
  and a *spatial* transformer layer (attention over the feature axis, shared
  across timestamps), adds the complementary time/feature embedding and
  finishes with a gated convolution that produces a residual and a skip path,
* the summed skip connections are projected to a single output channel: the
  predicted noise ``eps`` for every ``(feature, timestamp)`` position.

The ``include_temporal`` / ``include_spatial`` switches implement the
component ablations of Sec. 5.3.5.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import Conv1d, Linear, Module, Tensor, TransformerEncoderLayer
from .embeddings import ComplementaryEmbedding, DiffusionStepEmbedding, MaskPolicyEmbedding

__all__ = ["ImTransformer", "ResidualBlock"]


class ResidualBlock(Module):
    """One residual block of the ImTransformer (Fig. 5b)."""

    def __init__(self, hidden_dim: int, num_heads: int,
                 include_temporal: bool = True, include_spatial: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.hidden_dim = hidden_dim
        self.include_temporal = include_temporal
        self.include_spatial = include_spatial
        if include_temporal:
            self.temporal_layer = TransformerEncoderLayer(hidden_dim, num_heads, rng=rng)
        if include_spatial:
            self.spatial_layer = TransformerEncoderLayer(hidden_dim, num_heads, rng=rng)
        self.step_proj = Linear(hidden_dim, hidden_dim, rng=rng)
        self.gate_conv = Conv1d(hidden_dim, 2 * hidden_dim, kernel_size=1, rng=rng)
        self.output_conv = Conv1d(hidden_dim, 2 * hidden_dim, kernel_size=1, rng=rng)

    def forward(self, hidden: Tensor, step_embedding: Tensor, policy_embedding: Tensor,
                side_info: Tensor, num_features: int, window_length: int) -> tuple:
        """Process ``hidden`` of shape ``(batch, hidden_dim, K*L)``.

        Returns ``(residual_output, skip)``, both of the same shape as the input.
        """
        batch = hidden.shape[0]
        d = self.hidden_dim

        conditioned = self.step_proj(step_embedding + policy_embedding)  # (batch, d)
        y = hidden + conditioned.reshape(batch, d, 1)

        # (batch, d, K*L) -> (batch, K, L, d) view used by both transformers.
        y = y.reshape(batch, d, num_features, window_length)
        if self.include_temporal:
            temporal_in = y.transpose(0, 2, 3, 1).reshape(batch * num_features, window_length, d)
            temporal_out = self.temporal_layer(temporal_in)
            y = temporal_out.reshape(batch, num_features, window_length, d).transpose(0, 3, 1, 2)
        if self.include_spatial:
            spatial_in = y.transpose(0, 3, 2, 1).reshape(batch * window_length, num_features, d)
            spatial_out = self.spatial_layer(spatial_in)
            y = spatial_out.reshape(batch, window_length, num_features, d).transpose(0, 3, 2, 1)

        y = y + side_info  # complementary time/feature information
        y = y.reshape(batch, d, num_features * window_length)

        gated = self.gate_conv(y)
        filter_part = gated[:, :d, :]
        gate_part = gated[:, d:, :]
        z = filter_part.tanh() * gate_part.sigmoid()

        out = self.output_conv(z)
        residual = out[:, :d, :]
        skip = out[:, d:, :]
        return (hidden + residual) * (1.0 / np.sqrt(2.0)), skip


class ImTransformer(Module):
    """Denoising network ``eps_Theta(x_t, t | reference, p)`` for imputed diffusion.

    Parameters
    ----------
    num_features:
        Number of channels ``K`` of the multivariate series.
    hidden_dim:
        Width of the residual blocks (128 in the paper, smaller by default
        here to keep CPU training fast).
    num_blocks:
        Number of residual blocks (4 in the paper).
    num_heads:
        Attention heads of the temporal/spatial transformer layers.
    num_policies:
        Number of masking policies (2 for grating masking).
    include_temporal / include_spatial:
        Ablation switches for the two transformer layers.
    """

    def __init__(self, num_features: int, hidden_dim: int = 32, num_blocks: int = 2,
                 num_heads: int = 4, num_policies: int = 2,
                 include_temporal: bool = True, include_spatial: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_features = num_features
        self.hidden_dim = hidden_dim
        self.num_blocks = num_blocks

        self.input_proj = Conv1d(2, hidden_dim, kernel_size=1, rng=rng)
        self.step_embedding = DiffusionStepEmbedding(hidden_dim, rng=rng)
        self.policy_embedding = MaskPolicyEmbedding(num_policies, hidden_dim, rng=rng)
        self.side_embedding = ComplementaryEmbedding(num_features, hidden_dim, rng=rng)
        self.blocks = [
            ResidualBlock(hidden_dim, num_heads, include_temporal=include_temporal,
                          include_spatial=include_spatial, rng=rng)
            for _ in range(num_blocks)
        ]
        self.output_proj1 = Conv1d(hidden_dim, hidden_dim, kernel_size=1, rng=rng)
        self.output_proj2 = Conv1d(hidden_dim, 1, kernel_size=1, rng=rng)

    def forward(self, x_in: np.ndarray, steps: np.ndarray, policies: np.ndarray) -> Tensor:
        """Predict the added noise.

        Parameters
        ----------
        x_in:
            Array of shape ``(batch, 2, num_features, window_length)``.
            Channel 0 holds the corrupted values on the masked region (zeros
            elsewhere); channel 1 holds the reference channel — the forward
            noise of the unmasked region for the unconditional model, or the
            clean unmasked values for the conditional model.
        steps:
            Integer diffusion steps ``t`` of shape ``(batch,)``, or a scalar
            that is broadcast over the batch.  Entries may differ per sample:
            one denoiser call can serve a heterogeneous micro-batch whose
            windows sit at different points of the reverse trajectory.
        policies:
            Integer masking-policy indices ``p`` of shape ``(batch,)``, or a
            scalar broadcast over the batch.

        Returns
        -------
        Tensor of shape ``(batch, num_features, window_length)`` with the
        predicted noise for every position.
        """
        x_in = np.asarray(x_in, dtype=np.float64)
        batch, channels, num_features, window_length = x_in.shape
        if channels != 2:
            raise ValueError("x_in must have exactly 2 channels")
        if num_features != self.num_features:
            raise ValueError(
                f"model was built for {self.num_features} features, got {num_features}"
            )
        steps = np.asarray(steps)
        if steps.ndim == 0:
            steps = np.full(batch, int(steps), dtype=np.int64)
        elif steps.shape != (batch,):
            raise ValueError(f"steps must be a scalar or shape ({batch},), got {steps.shape}")
        policies = np.asarray(policies)
        if policies.ndim == 0:
            policies = np.full(batch, int(policies), dtype=np.int64)
        elif policies.shape != (batch,):
            raise ValueError(f"policies must be a scalar or shape ({batch},), got {policies.shape}")

        flat = Tensor(x_in.reshape(batch, 2, num_features * window_length))
        hidden = self.input_proj(flat).relu()

        step_emb = self.step_embedding(steps)
        policy_emb = self.policy_embedding(policies)
        side = self.side_embedding(window_length)

        skips: List[Tensor] = []
        for block in self.blocks:
            hidden, skip = block(hidden, step_emb, policy_emb, side,
                                 num_features, window_length)
            skips.append(skip)

        total = skips[0]
        for skip in skips[1:]:
            total = total + skip
        total = total * (1.0 / np.sqrt(len(skips)))

        out = self.output_proj1(total).relu()
        out = self.output_proj2(out)
        return out.reshape(batch, num_features, window_length)
