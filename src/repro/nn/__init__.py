"""A compact NumPy-based neural-network substrate.

The original ImDiffusion implementation relies on PyTorch; this package
re-creates the minimal pieces of that stack needed by the paper — a
reverse-mode autograd engine, dense / convolutional / recurrent / attention
layers and the Adam optimizer — entirely on top of NumPy so the repository has
no binary deep-learning dependency.
"""

from .tensor import (
    Tensor,
    as_tensor,
    concat,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
    stack,
    where,
)
from . import functional
from .layers import (
    Conv1d,
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    MLP,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    SiLU,
    Tanh,
)
from .attention import MultiHeadSelfAttention, TransformerEncoder, TransformerEncoderLayer
from .recurrent import GRU, GRUCell, LSTM, LSTMCell
from .optim import Adam, CosineLR, Optimizer, SGD, StepLR, clip_grad_norm
from .serialization import (
    load_checkpoint,
    load_checkpoint_metadata,
    load_module,
    load_state_dict,
    save_checkpoint,
    save_module,
    save_state_dict,
)
from .shm import SharedParameterBlock, SharedParameterSpec, SharedParameterView

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "functional",
    "Parameter",
    "Module",
    "ModuleList",
    "Linear",
    "Conv1d",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "SiLU",
    "Tanh",
    "Sigmoid",
    "Sequential",
    "MLP",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "LSTMCell",
    "LSTM",
    "GRUCell",
    "GRU",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
    "clip_grad_norm",
    "save_module",
    "load_module",
    "save_state_dict",
    "load_state_dict",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_metadata",
    "SharedParameterBlock",
    "SharedParameterSpec",
    "SharedParameterView",
]
