"""Multi-head self-attention and transformer encoder layers.

These blocks power the ImTransformer denoiser (temporal and spatial
transformer layers, Sec. 4.4 of the paper) as well as the transformer-based
baselines (TranAD, MTAD-GAT's attention variant).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import Dropout, LayerNorm, Linear, Module
from .tensor import Tensor

__all__ = ["MultiHeadSelfAttention", "TransformerEncoderLayer", "TransformerEncoder"]


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    Operates on inputs of shape ``(batch, sequence, model_dim)`` and returns
    the same shape.  An optional additive attention mask (``-inf`` style, as a
    NumPy array broadcastable to ``(batch, heads, seq, seq)``) can be supplied
    to hide positions.
    """

    def __init__(self, model_dim: int, num_heads: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError("model_dim must be divisible by num_heads")
        rng = rng or np.random.default_rng()
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.q_proj = Linear(model_dim, model_dim, rng=rng)
        self.k_proj = Linear(model_dim, model_dim, rng=rng)
        self.v_proj = Linear(model_dim, model_dim, rng=rng)
        self.out_proj = Linear(model_dim, model_dim, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (batch, seq, dim) -> (batch, heads, seq, head_dim)
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, attn_mask: Optional[np.ndarray] = None) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = q.matmul(k.transpose(0, 1, 3, 2)) * scale
        if attn_mask is not None:
            scores = scores + Tensor(np.asarray(attn_mask, dtype=np.float64))
        weights = scores.softmax(axis=-1)
        context = weights.matmul(v)  # (batch, heads, seq, head_dim)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.model_dim)
        return self.out_proj(merged)


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder block: attention + feed-forward with residuals."""

    def __init__(self, model_dim: int, num_heads: int, ff_dim: Optional[int] = None,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        ff_dim = ff_dim or 2 * model_dim
        self.attention = MultiHeadSelfAttention(model_dim, num_heads, rng=rng)
        self.norm1 = LayerNorm(model_dim)
        self.norm2 = LayerNorm(model_dim)
        self.ff1 = Linear(model_dim, ff_dim, rng=rng)
        self.ff2 = Linear(ff_dim, model_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, attn_mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.attention(self.norm1(x), attn_mask=attn_mask)
        x = x + self.dropout(attended)
        hidden = self.ff2(self.ff1(self.norm2(x)).gelu())
        return x + self.dropout(hidden)


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer` blocks."""

    def __init__(self, model_dim: int, num_heads: int, num_layers: int,
                 ff_dim: Optional[int] = None, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.layers = [
            TransformerEncoderLayer(model_dim, num_heads, ff_dim=ff_dim, dropout=dropout, rng=rng)
            for _ in range(num_layers)
        ]

    def forward(self, x: Tensor, attn_mask: Optional[np.ndarray] = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, attn_mask=attn_mask)
        return x
