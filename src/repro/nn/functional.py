"""Functional neural-network operations built on :class:`repro.nn.Tensor`.

These are stateless helpers used both by the layer classes in
:mod:`repro.nn.layers` and directly by models that prefer a functional style
(losses, normalisation, masked reductions).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .tensor import Tensor, as_tensor, concat, stack, where

__all__ = [
    "linear",
    "layer_norm",
    "dropout",
    "embedding",
    "conv1d",
    "mse_loss",
    "mae_loss",
    "masked_mse_loss",
    "binary_cross_entropy",
    "kl_divergence_normal",
    "softmax",
    "log_softmax",
    "one_hot",
]


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight + bias`` for inputs of shape ``(..., in_features)``."""
    out = x.matmul(weight)
    if bias is not None:
        out = out + bias
    return out


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension."""
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normed = centered / ((variance + eps) ** 0.5)
    return normed * weight + bias


def dropout(x: Tensor, rate: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: identity unless ``training`` and ``rate > 0``."""
    if not training or rate <= 0.0:
        return x
    if rng is None:
        rng = np.random.default_rng()
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)


def embedding(indices: np.ndarray, weight: Tensor) -> Tensor:
    """Look up rows of ``weight`` for integer ``indices`` (autograd flows to weight)."""
    indices = np.asarray(indices, dtype=np.int64)
    return weight[indices]


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    padding: int = 0,
) -> Tensor:
    """1-D convolution over inputs of shape ``(batch, in_channels, length)``.

    ``weight`` has shape ``(out_channels, in_channels, kernel_size)``.  The
    implementation unfolds the input into sliding windows and reduces the
    convolution to a batched matrix multiplication, which keeps everything
    inside the autograd graph.
    """
    batch, in_channels, length = x.shape
    out_channels, w_in_channels, kernel_size = weight.shape
    if in_channels != w_in_channels:
        raise ValueError(
            f"input has {in_channels} channels but weight expects {w_in_channels}"
        )
    if padding > 0:
        x = x.pad(((0, 0), (0, 0), (padding, padding)))
        length = length + 2 * padding
    out_length = length - kernel_size + 1
    if out_length <= 0:
        raise ValueError("kernel does not fit into the (padded) input")

    if kernel_size == 1:
        # Fast path: a 1x1 convolution is a linear map over channels.
        w2 = weight.reshape(out_channels, in_channels)
        out = w2.expand_dims(0).matmul(x)
    else:
        windows = [x[:, :, i : i + kernel_size] for i in range(out_length)]
        # (batch, out_length, in_channels * kernel_size)
        unfolded = stack(
            [w.reshape(batch, in_channels * kernel_size) for w in windows], axis=1
        )
        w2 = weight.reshape(out_channels, in_channels * kernel_size).transpose(1, 0)
        out = unfolded.matmul(w2)  # (batch, out_length, out_channels)
        out = out.transpose(0, 2, 1)
    if bias is not None:
        out = out + bias.reshape(1, out_channels, 1)
    return out


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    target = as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error over all elements."""
    target = as_tensor(target)
    return (prediction - target).abs().mean()


def masked_mse_loss(prediction: Tensor, target: Tensor, mask: np.ndarray) -> Tensor:
    """MSE restricted to positions where ``mask`` is non-zero.

    This is the ImDiffusion training objective: the denoising error is only
    evaluated on the masked (to-be-imputed) region of the window.
    """
    target = as_tensor(target)
    mask = np.asarray(mask, dtype=np.float64)
    count = float(mask.sum())
    if count == 0:
        raise ValueError("mask selects no elements")
    diff = (prediction - target) * Tensor(mask)
    return (diff * diff).sum() * (1.0 / count)


def binary_cross_entropy(prediction: Tensor, target: Tensor, eps: float = 1e-7) -> Tensor:
    """Binary cross entropy on probabilities in ``(0, 1)``."""
    target = as_tensor(target)
    p = prediction.clip(eps, 1.0 - eps)
    loss = -(target * p.log() + (1.0 - target) * (1.0 - p).log())
    return loss.mean()


def kl_divergence_normal(mu: Tensor, log_var: Tensor) -> Tensor:
    """KL(q || N(0, I)) for a diagonal Gaussian, averaged over the batch."""
    term = (mu * mu) + log_var.exp() - log_var - 1.0
    return term.sum(axis=-1).mean() * 0.5


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.softmax(axis=axis).log()


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Plain NumPy one-hot encoding helper (no gradient needed)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out
