"""Parameter initialisation schemes for the :mod:`repro.nn` layers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "normal", "zeros", "ones", "uniform"]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight of ``shape``.

    For 2-D weights the convention is ``(in_features, out_features)``; for
    convolutional weights ``(out_channels, in_channels, kernel_size)`` the
    receptive field multiplies into both fans.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 3:
        receptive = shape[2]
        return shape[1] * receptive, shape[0] * receptive
    if len(shape) == 1:
        return shape[0], shape[0]
    raise ValueError(f"unsupported weight shape {shape}")


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation for ReLU-style non-linearities."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Zero-mean Gaussian initialisation with standard deviation ``std``."""
    return rng.normal(0.0, std, size=shape)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    return rng.uniform(low, high, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
