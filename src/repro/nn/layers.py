"""Layer/module abstractions for the :mod:`repro.nn` substrate.

The :class:`Module` base class provides parameter discovery (recursing into
attributes that are modules, lists of modules or parameters), train/eval mode
switching and a ``state_dict`` interface used by
:mod:`repro.nn.serialization`.  The concrete layers implemented here are the
building blocks required by the ImDiffusion denoiser and the baselines:
``Linear``, ``Conv1d``, ``Embedding``, ``LayerNorm``, ``Dropout``,
``Sequential`` and a small ``MLP`` helper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Conv1d",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "SiLU",
    "Tanh",
    "Sigmoid",
    "Sequential",
    "MLP",
    "ModuleList",
]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; :meth:`parameters` and :meth:`named_parameters` discover them
    recursively.
    """

    def __init__(self) -> None:
        self.training: bool = True

    # -- parameter discovery -------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Parameter):
                        yield f"{full}.{key}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{key}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- train / eval switching ----------------------------------------------
    def modules(self) -> Iterator["Module"]:
        """Yield this module and every sub-module, depth first.

        Children are discovered through attributes that are modules or that
        are lists/tuples/dicts containing modules (matching the containers
        :meth:`named_parameters` understands).  Shared sub-modules are
        yielded once.
        """
        seen: set = set()
        stack: List["Module"] = [self]
        while stack:
            module = stack.pop()
            if id(module) in seen:
                continue
            seen.add(id(module))
            yield module
            for value in vars(module).values():
                if isinstance(value, Module):
                    stack.append(value)
                elif isinstance(value, (list, tuple)):
                    stack.extend(item for item in value if isinstance(item, Module))
                elif isinstance(value, dict):
                    stack.extend(item for item in value.values() if isinstance(item, Module))

    def train(self, mode: bool = True) -> "Module":
        """Recursively set the training flag on this module and all children.

        The train/eval contract:

        * ``module.train()`` puts *every* module in the tree in training mode
          (``training=True``): stochastic layers such as :class:`Dropout` are
          active, and forward passes record autograd graphs as usual.  Any
          parameter previously frozen by ``eval(inference=True)`` is thawed.
        * ``module.eval()`` puts every module in the tree in evaluation mode
          (``training=False``): stochastic layers become deterministic.
          Gradients are still recorded unless scoring also runs under
          :class:`repro.nn.no_grad` or ``eval(inference=True)`` is used.
        * ``module.eval(inference=True)`` additionally marks every parameter
          in the tree as an inference tensor, so forward passes skip graph
          construction even outside a ``no_grad`` block.

        Both methods return ``self`` so they can be chained.
        """
        for m in self.modules():
            m.training = mode
        if mode:
            for p in self.parameters():
                p.inference_(False)
        return self

    def eval(self, inference: bool = False) -> "Module":
        """Recursively switch the module tree to evaluation mode.

        With ``inference=True`` every parameter is marked as an inference
        tensor (see :meth:`Tensor.inference_`), making forward passes
        graph-free until :meth:`train` is called again.  See :meth:`train`
        for the full contract.
        """
        self.train(mode=False)
        if inference:
            for p in self.parameters():
                p.inference_(True)
        return self

    # -- state dict -----------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"parameter {name!r} has shape {p.data.shape} but state provides {value.shape}"
                )
            p.data = value.copy()

    # -- call protocol ---------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of sub-modules that is tracked by parameter discovery."""

    def __init__(self, modules: Optional[Iterable[Module]] = None) -> None:
        super().__init__()
        self.items: List[Module] = list(modules or [])

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers have no forward
        raise RuntimeError("ModuleList is a container and cannot be called")


class Linear(Module):
    """Affine transformation ``y = x W + b`` over the last dimension."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv1d(Module):
    """1-D convolution over ``(batch, channels, length)`` inputs."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 1,
                 padding: Optional[int] = None, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        if padding is None:
            padding = (kernel_size - 1) // 2
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(x, self.weight, self.bias, padding=self.padding)


class Embedding(Module):
    """Integer index to dense vector lookup table."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=0.05))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(indices, self.weight)


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learnable scale/shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)))
        self.bias = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, rate: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.rate = rate
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, training=self.training, rng=self._rng)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class SiLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.silu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Apply sub-modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.steps = ModuleList(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.steps:
            x = module(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with a configurable activation between layers."""

    def __init__(self, sizes: Sequence[int], activation: str = "relu",
                 final_activation: Optional[str] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        rng = rng or np.random.default_rng()
        activations = {
            "relu": ReLU,
            "gelu": GELU,
            "silu": SiLU,
            "tanh": Tanh,
            "sigmoid": Sigmoid,
        }
        layers: List[Module] = []
        for i in range(len(sizes) - 1):
            layers.append(Linear(sizes[i], sizes[i + 1], rng=rng))
            is_last = i == len(sizes) - 2
            if not is_last:
                layers.append(activations[activation]())
            elif final_activation is not None:
                layers.append(activations[final_activation]())
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
