"""Gradient-descent optimizers and learning-rate schedules."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "StepLR", "CosineLR"]


class Optimizer:
    """Base class: holds the parameter list and implements ``zero_grad``."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """The optimizer's full state as ``(scalars, arrays)``.

        ``scalars`` is JSON-serialisable, ``arrays`` maps names to NumPy
        arrays; together they restore the optimizer bit for bit, which is
        what makes a mid-run training checkpoint resumable without drift.
        Per-parameter slots are keyed by *position* in the parameter list, so
        a restored optimizer must be built over the same architecture.
        """
        return {"lr": self.lr}, {}

    def load_state_dict(self, scalars: dict,
                        arrays: Optional[Dict[str, np.ndarray]] = None) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.lr = float(scalars["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel = self._velocity.get(id(p))
                vel = self.momentum * vel + grad if vel is not None else grad
                self._velocity[id(p)] = vel
                grad = vel
            p.data = p.data - self.lr * grad

    def state_dict(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        scalars, arrays = super().state_dict()
        for index, p in enumerate(self.parameters):
            vel = self._velocity.get(id(p))
            if vel is not None:
                arrays[f"velocity.{index}"] = vel.copy()
        return scalars, arrays

    # Momentum slots are keyed by ``id(parameter)``, which is process-local;
    # pickling re-keys them by position so a transported optimizer re-attaches
    # to the transported parameters.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_velocity"] = {index: self._velocity[id(p)]
                              for index, p in enumerate(self.parameters)
                              if id(p) in self._velocity}
        return state

    def __setstate__(self, state: dict) -> None:
        by_index = state.pop("_velocity")
        self.__dict__.update(state)
        self._velocity = {id(p): by_index[index]
                          for index, p in enumerate(self.parameters)
                          if index in by_index}

    def load_state_dict(self, scalars: dict,
                        arrays: Optional[Dict[str, np.ndarray]] = None) -> None:
        super().load_state_dict(scalars)
        self._velocity = {}
        for index, p in enumerate(self.parameters):
            vel = (arrays or {}).get(f"velocity.{index}")
            if vel is not None:
                self._velocity[id(p)] = np.asarray(vel, dtype=np.float64).copy()


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._step_count = 0

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p), np.zeros_like(p.data))
            v = self._v.get(id(p), np.zeros_like(p.data))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[id(p)] = m
            self._v[id(p)] = v
            m_hat = m / (1.0 - self.beta1 ** t)
            v_hat = v / (1.0 - self.beta2 ** t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        scalars, arrays = super().state_dict()
        scalars["step_count"] = self._step_count
        for index, p in enumerate(self.parameters):
            m = self._m.get(id(p))
            if m is not None:
                arrays[f"m.{index}"] = m.copy()
                arrays[f"v.{index}"] = self._v[id(p)].copy()
        return scalars, arrays

    # Moment slots are keyed by ``id(parameter)``, which is process-local;
    # pickling re-keys them by position so a transported optimizer re-attaches
    # to the transported parameters.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for slot in ("_m", "_v"):
            slots = getattr(self, slot)
            state[slot] = {index: slots[id(p)]
                           for index, p in enumerate(self.parameters)
                           if id(p) in slots}
        return state

    def __setstate__(self, state: dict) -> None:
        by_index = {slot: state.pop(slot) for slot in ("_m", "_v")}
        self.__dict__.update(state)
        for slot, values in by_index.items():
            setattr(self, slot, {id(p): values[index]
                                 for index, p in enumerate(self.parameters)
                                 if index in values})

    def load_state_dict(self, scalars: dict,
                        arrays: Optional[Dict[str, np.ndarray]] = None) -> None:
        super().load_state_dict(scalars)
        self._step_count = int(scalars.get("step_count", 0))
        self._m = {}
        self._v = {}
        for index, p in enumerate(self.parameters):
            m = (arrays or {}).get(f"m.{index}")
            if m is not None:
                self._m[id(p)] = np.asarray(m, dtype=np.float64).copy()
                self._v[id(p)] = np.asarray(arrays[f"v.{index}"],
                                            dtype=np.float64).copy()


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class StepLR:
    """Multiply the optimizer learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    def state_dict(self) -> dict:
        return {"epoch": self._epoch, "lr": self.optimizer.lr}

    def load_state_dict(self, state: dict) -> None:
        self._epoch = int(state["epoch"])
        self.optimizer.lr = float(state["lr"])


class CosineLR:
    """Cosine-annealed learning rate with an optional linear warmup.

    The schedule is indexed by epoch: during the first ``warmup_epochs``
    epochs the rate ramps linearly from ``base_lr / warmup_epochs`` up to
    ``base_lr``, then follows half a cosine down to ``min_lr`` at epoch
    ``total_epochs - 1``.  Constructing the schedule immediately applies the
    epoch-0 rate, and each :meth:`step` call advances to the next epoch's
    rate (call it at the end of every epoch, as
    :class:`repro.training.LRSchedule` does).
    """

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 warmup_epochs: int = 0, min_lr: float = 0.0) -> None:
        if total_epochs < 1:
            raise ValueError("total_epochs must be at least 1")
        if not 0 <= warmup_epochs < total_epochs:
            raise ValueError("warmup_epochs must lie in [0, total_epochs)")
        if min_lr < 0:
            raise ValueError("min_lr must be non-negative")
        self.optimizer = optimizer
        self.total_epochs = int(total_epochs)
        self.warmup_epochs = int(warmup_epochs)
        self.base_lr = float(optimizer.lr)
        self.min_lr = float(min_lr)
        self._epoch = 0
        self.optimizer.lr = self.lr_at(0)

    def lr_at(self, epoch: int) -> float:
        """The learning rate the schedule prescribes for ``epoch``."""
        if epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        decay_epochs = self.total_epochs - self.warmup_epochs - 1
        if decay_epochs <= 0:
            return self.base_lr if epoch < self.total_epochs else self.min_lr
        progress = (epoch - self.warmup_epochs) / decay_epochs
        progress = min(max(progress, 0.0), 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + float(np.cos(np.pi * progress)))

    def step(self) -> None:
        self._epoch += 1
        self.optimizer.lr = self.lr_at(min(self._epoch, self.total_epochs - 1))

    def state_dict(self) -> dict:
        return {"epoch": self._epoch, "lr": self.optimizer.lr}

    def load_state_dict(self, state: dict) -> None:
        self._epoch = int(state["epoch"])
        self.optimizer.lr = float(state["lr"])
