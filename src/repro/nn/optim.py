"""Gradient-descent optimizers and learning-rate schedules."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "StepLR"]


class Optimizer:
    """Base class: holds the parameter list and implements ``zero_grad``."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel = self._velocity.get(id(p))
                vel = self.momentum * vel + grad if vel is not None else grad
                self._velocity[id(p)] = vel
                grad = vel
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._step_count = 0

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p), np.zeros_like(p.data))
            v = self._v.get(id(p), np.zeros_like(p.data))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[id(p)] = m
            self._v[id(p)] = v
            m_hat = m / (1.0 - self.beta1 ** t)
            v_hat = v / (1.0 - self.beta2 ** t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class StepLR:
    """Multiply the optimizer learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
