"""Recurrent layers (LSTM / GRU) used by the baseline detectors.

LSTM-AD, OmniAnomaly (GRU + VAE), MAD-GAN and MSCRED all rely on recurrent
sequence encoders.  The cells here process inputs of shape
``(batch, time, features)`` step by step inside the autograd graph.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import init
from .layers import Linear, Module
from .tensor import Tensor, concat, stack

__all__ = ["LSTMCell", "LSTM", "GRUCell", "GRU"]


class LSTMCell(Module):
    """A single long short-term memory cell."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # One fused projection for the four gates keeps the graph small.
        self.input_proj = Linear(input_size, 4 * hidden_size, rng=rng)
        self.hidden_proj = Linear(hidden_size, 4 * hidden_size, bias=False, rng=rng)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = self.input_proj(x) + self.hidden_proj(h_prev)
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs:1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs:2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs:3 * hs].tanh()
        o_gate = gates[:, 3 * hs:4 * hs].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """A (optionally multi-layer) LSTM over ``(batch, time, features)`` inputs."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.hidden_size = hidden_size
        self.cells = [
            LSTMCell(input_size if i == 0 else hidden_size, hidden_size, rng=rng)
            for i in range(num_layers)
        ]

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        """Return ``(outputs, last_hidden)``.

        ``outputs`` has shape ``(batch, time, hidden)`` and contains the top
        layer's hidden state at every step; ``last_hidden`` is the final
        hidden state of the top layer.
        """
        batch, time, _ = x.shape
        layer_input_steps: List[Tensor] = [x[:, t, :] for t in range(time)]
        for cell in self.cells:
            h, c = cell.initial_state(batch)
            outputs: List[Tensor] = []
            for step in layer_input_steps:
                h, c = cell(step, (h, c))
                outputs.append(h)
            layer_input_steps = outputs
        stacked = stack(layer_input_steps, axis=1)
        return stacked, layer_input_steps[-1]


class GRUCell(Module):
    """A single gated recurrent unit cell."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.input_proj = Linear(input_size, 3 * hidden_size, rng=rng)
        self.hidden_proj = Linear(hidden_size, 3 * hidden_size, bias=False, rng=rng)

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        hs = self.hidden_size
        x_proj = self.input_proj(x)
        h_proj = self.hidden_proj(h_prev)
        r_gate = (x_proj[:, 0 * hs:1 * hs] + h_proj[:, 0 * hs:1 * hs]).sigmoid()
        z_gate = (x_proj[:, 1 * hs:2 * hs] + h_proj[:, 1 * hs:2 * hs]).sigmoid()
        n_gate = (x_proj[:, 2 * hs:3 * hs] + r_gate * h_proj[:, 2 * hs:3 * hs]).tanh()
        return (1.0 - z_gate) * n_gate + z_gate * h_prev

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))


class GRU(Module):
    """A (optionally multi-layer) GRU over ``(batch, time, features)`` inputs."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.hidden_size = hidden_size
        self.cells = [
            GRUCell(input_size if i == 0 else hidden_size, hidden_size, rng=rng)
            for i in range(num_layers)
        ]

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        batch, time, _ = x.shape
        layer_input_steps: List[Tensor] = [x[:, t, :] for t in range(time)]
        for cell in self.cells:
            h = cell.initial_state(batch)
            outputs: List[Tensor] = []
            for step in layer_input_steps:
                h = cell(step, h)
                outputs.append(h)
            layer_input_steps = outputs
        stacked = stack(layer_input_steps, axis=1)
        return stacked, layer_input_steps[-1]
