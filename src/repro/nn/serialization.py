"""Saving and loading module parameters to ``.npz`` archives."""

from __future__ import annotations

import json
import os
from typing import Dict, Tuple

import numpy as np

from .layers import Module

__all__ = [
    "save_module",
    "load_module",
    "save_state_dict",
    "load_state_dict",
    "save_checkpoint",
    "atomic_save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_metadata",
]

#: Reserved archive key holding the JSON metadata of a checkpoint.
METADATA_KEY = "__checkpoint_metadata__"


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> None:
    """Persist a ``state_dict`` mapping to a compressed ``.npz`` file.

    Parameter names may contain dots, which ``np.savez`` handles fine because
    keys are plain strings inside the archive.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a ``state_dict`` previously written by :func:`save_state_dict`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_checkpoint(path: str, arrays: Dict[str, np.ndarray], metadata: dict) -> None:
    """Persist named arrays plus a JSON-serialisable metadata dict in one archive.

    The metadata is stored as a UTF-8 byte array under :data:`METADATA_KEY`
    inside the same ``.npz`` file, so a checkpoint is a single portable file.
    JSON keeps arbitrary-precision integers, which matters for the random
    generator state stored by the model registry.
    """
    if METADATA_KEY in arrays:
        raise ValueError(f"array name {METADATA_KEY!r} is reserved for metadata")
    payload = dict(arrays)
    encoded = json.dumps(metadata).encode("utf-8")
    payload[METADATA_KEY] = np.frombuffer(encoded, dtype=np.uint8)
    save_state_dict(payload, path)


def atomic_save_checkpoint(path: str, arrays: Dict[str, np.ndarray],
                           metadata: dict) -> None:
    """:func:`save_checkpoint` through a temp file + atomic rename.

    A reader never observes a half-written archive: the payload lands in
    ``<path>.tmp.npz`` first and is moved over ``path`` with ``os.replace``
    (publishing a new checkpoint is an atomic file swap).  Used by both the
    serving :class:`~repro.serving.ModelRegistry` and the training
    :class:`~repro.training.Checkpoint` callback.
    """
    tmp_path = path + ".tmp.npz"  # np.savez appends .npz to bare names
    save_checkpoint(tmp_path, arrays, metadata)
    os.replace(tmp_path, path)


def load_checkpoint(path: str) -> Tuple[Dict[str, np.ndarray], dict]:
    """Load ``(arrays, metadata)`` previously written by :func:`save_checkpoint`."""
    state = load_state_dict(path)
    raw = state.pop(METADATA_KEY, None)
    if raw is None:
        raise KeyError(f"{path!r} is not a checkpoint: missing {METADATA_KEY!r}")
    metadata = json.loads(raw.tobytes().decode("utf-8"))
    return state, metadata


def load_checkpoint_metadata(path: str) -> dict:
    """Read only the metadata of a checkpoint, without decompressing arrays.

    ``np.load`` on an ``.npz`` archive is lazy per entry, so cataloguing many
    checkpoints stays cheap regardless of model size.
    """
    with np.load(path) as archive:
        if METADATA_KEY not in archive.files:
            raise KeyError(f"{path!r} is not a checkpoint: missing {METADATA_KEY!r}")
        return json.loads(archive[METADATA_KEY].tobytes().decode("utf-8"))


def save_module(module: Module, path: str) -> None:
    """Save all parameters of ``module`` to ``path`` (``.npz``)."""
    save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: str) -> Module:
    """Load parameters into ``module`` from ``path`` and return the module."""
    module.load_state_dict(load_state_dict(path))
    return module
