"""Saving and loading module parameters to ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module

__all__ = ["save_module", "load_module", "save_state_dict", "load_state_dict"]


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> None:
    """Persist a ``state_dict`` mapping to a compressed ``.npz`` file.

    Parameter names may contain dots, which ``np.savez`` handles fine because
    keys are plain strings inside the archive.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a ``state_dict`` previously written by :func:`save_state_dict`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: str) -> None:
    """Save all parameters of ``module`` to ``path`` (``.npz``)."""
    save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: str) -> Module:
    """Load parameters into ``module`` from ``path`` and return the module."""
    module.load_state_dict(load_state_dict(path))
    return module
