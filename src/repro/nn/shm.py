"""Zero-copy parameter transport over shared memory.

The data-parallel engines (gradient workers in training, scoring workers in
the sharded inference engine) need every worker to see the parent's current
parameters at each step.  Pickling the full parameter list into every
worker's pipe costs ``O(parameters x workers)`` serialization *per step*;
this module replaces that with a single OS-level shared-memory block:

* the parent allocates one :class:`SharedParameterBlock` sized to its
  parameter list and :meth:`~SharedParameterBlock.publish`-es the current
  values before each scatter — one ``memcpy`` per parameter, no pickling,
* each worker attaches once through the picklable
  :class:`SharedParameterSpec` handle and swaps its replica parameters'
  ``data`` to zero-copy NumPy views into the block
  (:meth:`SharedParameterView.attach_to`),
* a generation counter at the head of the block invalidates stale views:
  every ``publish()`` bumps it, every step message carries the expected
  generation, and a worker refuses to compute against a mismatched block.

Safety relies on the engines' lockstep pipe protocol — the parent only
writes between a gather and the next scatter, so no worker is ever reading
while the block changes.  Cleanup is deliberately conservative: the block
owner both closes and unlinks; workers merely detach (and are excluded from
their process-local resource tracker, which would otherwise unlink the
segment out from under the parent on worker exit).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SharedParameterSpec", "SharedParameterBlock", "SharedParameterView"]

#: Bytes reserved at the head of the block for the int64 generation counter.
HEADER_BYTES = 8


def _parameter_arrays(parameters: Sequence) -> List[np.ndarray]:
    arrays = []
    for parameter in parameters:
        data = np.asarray(getattr(parameter, "data", parameter))
        if data.dtype != np.float64:
            raise TypeError(
                f"shared parameter blocks hold float64 parameters, got {data.dtype}")
        arrays.append(data)
    return arrays


@dataclass(frozen=True)
class SharedParameterSpec:
    """Picklable handle to an existing block: segment name plus the layout."""

    name: str
    shapes: Tuple[Tuple[int, ...], ...]

    @property
    def num_parameters(self) -> int:
        return len(self.shapes)


class _Layout:
    """Byte offsets of the generation header and each parameter slot."""

    def __init__(self, shapes: Sequence[Tuple[int, ...]]) -> None:
        self.shapes = tuple(tuple(int(dim) for dim in shape) for shape in shapes)
        self.offsets: List[int] = []
        cursor = HEADER_BYTES
        for shape in self.shapes:
            self.offsets.append(cursor)
            cursor += int(np.prod(shape, dtype=np.int64)) * 8
        self.total_bytes = max(cursor, HEADER_BYTES + 1)

    def views(self, shm: shared_memory.SharedMemory
              ) -> Tuple[np.ndarray, List[np.ndarray]]:
        generation = np.ndarray((1,), dtype=np.int64, buffer=shm.buf, offset=0)
        slots = [np.ndarray(shape, dtype=np.float64, buffer=shm.buf, offset=offset)
                 for shape, offset in zip(self.shapes, self.offsets)]
        return generation, slots


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for auto-unlink.

    Python's ``resource_tracker`` assumes whoever maps a segment co-owns it
    and unlinks leaked segments at process exit — with a loud "leaked
    shared_memory" warning.  Worker processes only *borrow* the parent's
    block, so they must opt out: via ``track=False`` where available
    (Python >= 3.13) and by suppressing the registration otherwise.  The
    suppression must happen at attach time (not unregister-after-attach):
    workers share one tracker process whose cache is a set, so N registers
    for the same name collapse into one entry and the later unregisters
    would hit KeyErrors inside the tracker.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class SharedParameterBlock:
    """Parent-side owner of one shared-memory parameter block.

    Sized once from the parameter list at construction; the parameter
    *shapes* are fixed for the lifetime of the block (the engines rebuild
    their pools — and with them the block — whenever the model changes
    architecture, which in practice is never mid-run).
    """

    def __init__(self, parameters: Sequence) -> None:
        arrays = _parameter_arrays(parameters)
        self._layout = _Layout([array.shape for array in arrays])
        self._shm: Optional[shared_memory.SharedMemory] = shared_memory.SharedMemory(
            create=True, size=self._layout.total_bytes)
        self._generation_view, self._slots = self._layout.views(self._shm)
        self._generation_view[0] = 0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        self._check_open()
        return self._shm.name

    @property
    def generation(self) -> int:
        self._check_open()
        return int(self._generation_view[0])

    @property
    def nbytes(self) -> int:
        return self._layout.total_bytes

    def spec(self) -> SharedParameterSpec:
        """The picklable attach handle shipped to each worker once."""
        self._check_open()
        return SharedParameterSpec(name=self._shm.name, shapes=self._layout.shapes)

    # ------------------------------------------------------------------
    def publish(self, parameters: Sequence) -> int:
        """Copy the current parameter values in and bump the generation.

        Returns the new generation, which the caller stamps on every
        message of the upcoming scatter.  Must only be called while no
        worker is computing (the engines' lockstep protocol guarantees it).
        """
        self._check_open()
        arrays = _parameter_arrays(parameters)
        if len(arrays) != len(self._slots):
            raise ValueError(
                f"block holds {len(self._slots)} parameters, got {len(arrays)}")
        for slot, array in zip(self._slots, arrays):
            if array.shape != slot.shape:
                raise ValueError(
                    f"parameter shape {array.shape} does not match the block "
                    f"slot {slot.shape}; rebuild the block after architecture "
                    "changes")
            np.copyto(slot, array)
        self._generation_view[0] += 1
        return int(self._generation_view[0])

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the mapping and unlink the segment; idempotent."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        # The NumPy views export the buffer; drop them before closing or the
        # memoryview release raises BufferError.
        self._generation_view = None
        self._slots = []
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-unlink race
            pass

    def __enter__(self) -> "SharedParameterBlock":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass

    def _check_open(self) -> None:
        if self._shm is None:
            raise RuntimeError("shared parameter block is closed")


class SharedParameterView:
    """Worker-side zero-copy window into a parent's parameter block."""

    def __init__(self, spec: SharedParameterSpec) -> None:
        self._layout = _Layout(spec.shapes)
        self._shm: Optional[shared_memory.SharedMemory] = _attach_untracked(spec.name)
        self._generation_view, self._slots = self._layout.views(self._shm)

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """The block's current generation (what the parent last published)."""
        self._check_open()
        return int(self._generation_view[0])

    @property
    def slots(self) -> List[np.ndarray]:
        self._check_open()
        return list(self._slots)

    def attach_to(self, parameters: Sequence) -> None:
        """Swap each replica parameter's ``data`` to its shared-memory view.

        After this, the worker reads whatever the parent last published
        without any per-step transfer.  The replica list must mirror the
        parent's parameter list exactly (same count, same order, same
        shapes) — a mismatch means the worker rebuilt a different model
        than the parent is training/serving.
        """
        self._check_open()
        if len(parameters) != len(self._slots):
            raise ValueError(
                f"worker rebuilt {len(parameters)} parameters but the shared "
                f"block holds {len(self._slots)}; the spec's build() must "
                "mirror the parent parameter list")
        for index, (parameter, slot) in enumerate(zip(parameters, self._slots)):
            shape = np.asarray(parameter.data).shape
            if shape != slot.shape:
                raise ValueError(
                    f"parameter {index} has shape {shape} but the shared slot "
                    f"is {slot.shape}")
            parameter.data = slot

    def check_generation(self, expected: int) -> None:
        """Raise if the block no longer holds the generation a message expects."""
        actual = self.generation
        if actual != int(expected):
            raise RuntimeError(
                f"stale shared-parameter view: block is at generation {actual} "
                f"but the message expects {expected}")

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the block (never unlinks — the parent owns it)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        self._generation_view = None
        self._slots = []
        try:
            shm.close()
        except BufferError:
            # Replica parameters may still hold views into the mapping (the
            # worker is about to exit anyway); the OS reclaims it at process
            # teardown and the parent owns the unlink.
            pass

    def __enter__(self) -> "SharedParameterView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass

    def _check_open(self) -> None:
        if self._shm is None:
            raise RuntimeError("shared parameter view is closed")
