"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the lowest layer of the ``repro.nn`` substrate.  It provides a
:class:`Tensor` class that wraps a ``numpy.ndarray`` and records the
operations applied to it so that gradients can be propagated backwards with
:meth:`Tensor.backward`.  The design mirrors the familiar PyTorch semantics
(broadcasting, ``requires_grad``, accumulation into ``.grad``) but is kept
deliberately small: only the operations needed by the ImDiffusion models and
the baseline detectors are implemented.

The implementation favours clarity over raw speed; every operation builds a
closure that knows how to push the upstream gradient to its parents, and
:meth:`Tensor.backward` walks the graph in reverse topological order.
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]

# ---------------------------------------------------------------------------
# Global grad mode
# ---------------------------------------------------------------------------
_GRAD_ENABLED: bool = True


def is_grad_enabled() -> bool:
    """Whether operations currently record an autograd graph."""
    return _GRAD_ENABLED


def set_grad_enabled(mode: bool) -> bool:
    """Set the global grad mode; returns the previous mode."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = bool(mode)
    return previous


class no_grad:
    """Context manager (and decorator) that disables graph construction.

    Inside a ``with no_grad():`` block every operation skips its backward
    closure and parent bookkeeping entirely: results are plain *inference
    tensors* (``requires_grad=False``, :attr:`Tensor.inference` set) that
    hold only data.  This is the hot-path mode for serving and scoring,
    where building the reverse graph would waste both time and memory.

    Numerics are unaffected — a forward pass under ``no_grad`` is
    bit-identical to the grad-enabled pass; only gradient availability
    changes.  Nesting is supported; the previous mode is restored on exit.
    """

    def __enter__(self) -> "no_grad":
        self._previous = set_grad_enabled(False)
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        set_grad_enabled(self._previous)
        return False

    def __call__(self, func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with no_grad():
                return func(*args, **kwargs)

        return wrapper


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` into a float64 NumPy array."""
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting.

    When an operand of shape ``shape`` was broadcast up to the shape of
    ``grad`` during the forward pass, the gradient flowing back must be summed
    over the broadcast axes so that it matches the operand again.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode autograd support.

    Parameters
    ----------
    data:
        Array-like payload.  Always stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream tensor.

    Notes
    -----
    A tensor can additionally be placed in *inference mode* (see
    :meth:`inference_`), either explicitly or by being produced inside a
    :class:`no_grad` block.  Inference tensors never participate in graph
    construction: operations that consume them treat them as constants, and
    calling :meth:`backward` on them raises.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op",
                 "_inference")

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._op: str = ""
        self._inference: bool = False

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    @property
    def inference(self) -> bool:
        """Whether this tensor is excluded from graph construction."""
        return self._inference

    def inference_(self, mode: bool = True) -> "Tensor":
        """Mark (or unmark) this tensor as an inference tensor, in place.

        An inference tensor behaves like a constant in every operation even
        when it has ``requires_grad=True`` (e.g. a frozen
        :class:`~repro.nn.Parameter` during serving): no backward closure is
        recorded for ops that consume it, so forward passes allocate no graph.
        Returns ``self`` for chaining.
        """
        self._inference = bool(mode)
        return self

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Pickling (state transport for multiprocessing workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle a tensor as pure state, dropping the autograd graph.

        Backward closures and parent edges are process-local (they capture
        live intermediate arrays) and cannot travel across a ``spawn``
        boundary; a transported tensor arrives as a leaf.  This is what makes
        modules and optimizers shippable to data-parallel gradient workers.
        """
        return {
            "data": self.data,
            "grad": self.grad,
            "requires_grad": self.requires_grad,
            "_inference": self._inference,
        }

    def __setstate__(self, state: dict) -> None:
        self.data = state["data"]
        self.grad = state["grad"]
        self.requires_grad = state["requires_grad"]
        self._backward = None
        self._parents = ()
        self._op = ""
        self._inference = state["_inference"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, op={self._op!r})"

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        if not _GRAD_ENABLED:
            out = Tensor(data)
            out._inference = True
            return out
        requires = any(p.requires_grad and not p._inference for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._backward = backward
            out._parents = tuple(parents)
            out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad or self._inference:
            return
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate ``grad`` (default: ones) through the graph.

        Gradients are accumulated into the ``grad`` attribute of every tensor
        in the graph that has ``requires_grad=True``.  The graph is walked in
        reverse topological order, so each node's gradient is complete before
        its own backward closure runs.
        """
        if self._inference:
            raise RuntimeError(
                "called backward() on an inference tensor (created under no_grad "
                "or explicitly marked with inference_()); re-run the forward pass "
                "with gradients enabled to backpropagate"
            )
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(data, (self,), backward, "neg")

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(-grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(data, (self, other_t), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            other_t._accumulate(
                _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape)
            )

        return Tensor._make(data, (self, other_t), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward, "pow")

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix multiplication supporting batched operands."""
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other_t._accumulate(grad * a)
                return
            if a.ndim == 1:
                a2 = a.reshape(1, -1)
                grad2 = np.expand_dims(grad, axis=-2)
                ga = (grad2 @ np.swapaxes(b, -1, -2)).reshape(a.shape)
                gb = _unbroadcast(np.swapaxes(a2, -1, -2) @ grad2, b.shape)
                self._accumulate(ga)
                other_t._accumulate(gb)
                return
            if b.ndim == 1:
                b2 = b.reshape(-1, 1)
                grad2 = np.expand_dims(grad, axis=-1)
                ga = _unbroadcast(grad2 @ np.swapaxes(b2, -1, -2), a.shape)
                gb = _unbroadcast((np.swapaxes(a, -1, -2) @ grad2).reshape(-1, b.shape[0]).sum(axis=0), b.shape)
                self._accumulate(ga)
                other_t._accumulate(gb)
                return
            ga = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
            gb = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
            self._accumulate(ga)
            other_t._accumulate(gb)

        return Tensor._make(data, (self, other_t), backward, "matmul")

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return Tensor._make(data, (self,), backward, "leaky_relu")

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit using the tanh approximation."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x ** 3)
        tanh_inner = np.tanh(inner)
        data = 0.5 * x * (1.0 + tanh_inner)

        def backward(grad: np.ndarray) -> None:
            sech2 = 1.0 - tanh_inner ** 2
            d_inner = c * (1.0 + 3 * 0.044715 * x ** 2)
            local = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
            self._accumulate(grad * local)

        return Tensor._make(data, (self,), backward, "gelu")

    def silu(self) -> "Tensor":
        """Sigmoid linear unit (a.k.a. swish)."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        data = self.data * sig

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (sig + self.data * sig * (1.0 - sig)))

        return Tensor._make(data, (self,), backward, "silu")

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward, "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward, "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, axis=a)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return Tensor._make(data, (self,), backward, "sum")

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            full = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                full = np.expand_dims(data, axis=axis)
            mask = self.data == full
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.broadcast_to(g, self.data.shape) * mask / counts)

        return Tensor._make(data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return Tensor._make(data, (self,), backward, "reshape")

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward, "transpose")

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def expand_dims(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(data, (self,), backward, "expand_dims")

    def squeeze(self, axis: int) -> "Tensor":
        data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.expand_dims(grad, axis=axis))

        return Tensor._make(data, (self,), backward, "squeeze")

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward, "getitem")

    def pad(self, pad_width: Sequence[Tuple[int, int]]) -> "Tensor":
        data = np.pad(self.data, pad_width)

        def backward(grad: np.ndarray) -> None:
            slices = tuple(
                slice(before, grad.shape[i] - after) for i, (before, after) in enumerate(pad_width)
            )
            self._accumulate(grad[slices])

        return Tensor._make(data, (self,), backward, "pad")

    def repeat(self, repeats: int, axis: int) -> "Tensor":
        data = np.repeat(self.data, repeats, axis=axis)

        def backward(grad: np.ndarray) -> None:
            shape = list(self.data.shape)
            shape.insert(axis + 1, repeats)
            self._accumulate(grad.reshape(shape).sum(axis=axis + 1))

        return Tensor._make(data, (self,), backward, "repeat")

    # ------------------------------------------------------------------
    # Softmax (numerically stable, on the last axis by default)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * data).sum(axis=axis, keepdims=True)
            self._accumulate(data * (grad - dot))

        return Tensor._make(data, (self,), backward, "softmax")


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with autograd support."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: np.ndarray) -> None:
        start = 0
        for tensor, size in zip(tensors, sizes):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, start + size)
            tensor._accumulate(grad[tuple(index)])
            start += size

    return Tensor._make(data, tensors, backward, "concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with autograd support."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for i, tensor in enumerate(tensors):
            tensor._accumulate(moved[i])

    return Tensor._make(data, tensors, backward, "stack")


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select with autograd flowing through both branches."""
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        a_t._accumulate(_unbroadcast(grad * cond, a_t.shape))
        b_t._accumulate(_unbroadcast(grad * (~cond), b_t.shape))

    return Tensor._make(data, (a_t, b_t), backward, "where")


def as_tensor(value: Union[Tensor, ArrayLike], requires_grad: bool = False) -> Tensor:
    """Return ``value`` unchanged if it is a tensor, otherwise wrap it."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
