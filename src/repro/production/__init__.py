"""Production deployment harness: online evaluation and the legacy detector."""

from .legacy import LegacyThresholdDetector
from .online import OnlineEvaluation, compare_with_legacy, run_online_evaluation

__all__ = [
    "LegacyThresholdDetector",
    "OnlineEvaluation",
    "compare_with_legacy",
    "run_online_evaluation",
]
