"""The "legacy" production detector that ImDiffusion replaced (Sec. 6).

The paper compares ImDiffusion against a deep-learning detector that had been
running in the email-delivery system for years and reports only *relative*
improvements.  We model the legacy detector as a sensible but simpler
production monitor: an exponentially-weighted moving average per service with
a k-sigma deviation rule, which is representative of the threshold-style
monitors such systems start from.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..baselines.base import BaseDetector

__all__ = ["LegacyThresholdDetector"]


class LegacyThresholdDetector(BaseDetector):
    """EWMA + k-sigma latency monitor (one alarm when any service deviates)."""

    name = "Legacy"

    def __init__(self, smoothing: float = 0.1, sigma_threshold: float = 4.0,
                 threshold_percentile: float = 97.0, seed: int = 0) -> None:
        super().__init__(threshold_percentile=threshold_percentile, seed=seed)
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.smoothing = smoothing
        self.sigma_threshold = sigma_threshold
        self._residual_std: Optional[np.ndarray] = None

    def _ewma_residuals(self, series: np.ndarray) -> np.ndarray:
        """Per-channel residuals against an exponentially weighted moving average."""
        mean = series[0].copy()
        residuals = np.zeros_like(series)
        for t in range(series.shape[0]):
            residuals[t] = series[t] - mean
            mean = (1.0 - self.smoothing) * mean + self.smoothing * series[t]
        return residuals

    def _fit(self, train: np.ndarray) -> None:
        residuals = self._ewma_residuals(train)
        self._residual_std = residuals.std(axis=0) + 1e-9

    def _score(self, test: np.ndarray) -> np.ndarray:
        residuals = self._ewma_residuals(test)
        deviations = np.abs(residuals) / self._residual_std
        return deviations.max(axis=1)

    def predict(self, test: np.ndarray):
        """Use the fixed k-sigma rule instead of a percentile of the test scores."""
        scores = self.score(test)
        labels = (scores >= self.sigma_threshold).astype(np.int64)
        from ..baselines.base import BaselineResult

        return BaselineResult(labels=labels, scores=scores)
