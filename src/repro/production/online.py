"""Online deployment harness (Sec. 6 of the paper).

The production deployment at Microsoft runs ImDiffusion as a latency monitor
polling microservice telemetry every 30 seconds.  This module reproduces that
protocol on the simulated trace of :mod:`repro.data.production`:

* a detector is trained offline on the recent history (the train split),
* the test split is then *streamed* timestamp by timestamp; alarms are
  re-evaluated on a sliding evaluation buffer, mimicking an online monitor
  that re-scores the most recent window at every poll,
* throughput (scored points per second) and the full accuracy/timeliness
  metric set are recorded,
* :func:`compare_with_legacy` reports the *relative improvement* of one
  detector over another — the quantity Table 7 of the paper publishes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..data.production import MicroserviceLatencySimulator, ProductionConfig, ProductionTrace
from ..evaluation import evaluate_labels
from ..evaluation.runner import RunMetrics

__all__ = ["OnlineEvaluation", "run_online_evaluation", "compare_with_legacy"]


@dataclass
class OnlineEvaluation:
    """Result of an online run: metrics, alarms and throughput."""

    metrics: RunMetrics
    labels: np.ndarray
    scores: np.ndarray
    points_per_second: float


def run_online_evaluation(detector, trace: ProductionTrace,
                          rescore_every: int = 16) -> OnlineEvaluation:
    """Stream the test split of ``trace`` through a fitted or unfitted detector.

    The detector is fitted on the trace's train split, then the test split is
    consumed in arrival order.  Every ``rescore_every`` new samples the
    detector re-scores the history seen so far (production systems batch the
    scoring of recent samples for efficiency); the labels of the new samples
    are taken from that scoring pass, so no future information leaks into the
    decision for a timestamp.
    """
    detector.fit(trace.train)
    length = trace.test.shape[0]
    labels = np.zeros(length, dtype=np.int64)
    scores = np.zeros(length, dtype=np.float64)

    start_time = time.perf_counter()
    processed = 0
    while processed < length:
        next_block = min(processed + rescore_every, length)
        history = trace.test[:next_block]
        prediction = detector.predict(history)
        block = slice(processed, next_block)
        labels[block] = np.asarray(prediction.labels)[block]
        scores[block] = np.asarray(prediction.scores)[block]
        processed = next_block
    elapsed = max(time.perf_counter() - start_time, 1e-9)

    metrics = evaluate_labels(labels, scores, trace.test_labels)
    return OnlineEvaluation(
        metrics=metrics,
        labels=labels,
        scores=scores,
        points_per_second=float(length / elapsed),
    )


def compare_with_legacy(candidate_eval: OnlineEvaluation,
                        legacy_eval: OnlineEvaluation) -> Dict[str, float]:
    """Relative improvements of a candidate detector over the legacy detector.

    Mirrors Table 7: percentage improvements of precision, recall, F1 and
    R-AUC-PR (higher is better) and of ADD (lower is better), plus the
    candidate's raw inference throughput.
    """
    def relative_gain(new: float, old: float) -> float:
        if old <= 0:
            return 0.0 if new <= 0 else float("inf")
        return (new - old) / old

    candidate, legacy = candidate_eval.metrics, legacy_eval.metrics
    return {
        "precision_improvement": relative_gain(candidate.precision, legacy.precision),
        "recall_improvement": relative_gain(candidate.recall, legacy.recall),
        "f1_improvement": relative_gain(candidate.f1, legacy.f1),
        "r_auc_pr_improvement": relative_gain(candidate.r_auc_pr, legacy.r_auc_pr),
        "add_reduction": relative_gain(legacy.add, candidate.add) if candidate.add > 0 else 0.0,
        "inference_points_per_second": candidate_eval.points_per_second,
    }
