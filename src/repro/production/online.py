"""Online deployment harness (Sec. 6 of the paper).

The production deployment at Microsoft runs ImDiffusion as a latency monitor
polling microservice telemetry every 30 seconds.  This module reproduces that
protocol on the simulated trace of :mod:`repro.data.production`:

* a detector is trained offline on the recent history (the train split),
* the test split is then *streamed* timestamp by timestamp; alarms are
  re-evaluated on a sliding evaluation buffer, mimicking an online monitor
  that re-scores the most recent window at every poll,
* throughput (scored points per second) and the full accuracy/timeliness
  metric set are recorded,
* :func:`compare_with_legacy` reports the *relative improvement* of one
  detector over another — the quantity Table 7 of the paper publishes.

Two scoring paths are available:

* **Incremental** (default for :class:`~repro.core.ImDiffusionDetector`):
  the stream runs through :class:`~repro.serving.IncrementalScorer`, which
  scores only the new tail of the sliding window at each poll — amortised
  O(window) model work per poll, so the whole stream costs O(n) instead of
  the O(n²) of re-scoring the full history.
* **Bounded re-scoring** (generic detectors, e.g. the legacy monitor): every
  ``rescore_every`` samples the detector re-scores the most recent
  ``eval_buffer`` points and the labels of the new samples are taken from
  that pass.  No future information leaks into the decision for a timestamp
  in either path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..analytics import AlertEvent, AnalyticsEngine, Episode
from ..core import ImDiffusionDetector
from ..data.production import ProductionTrace
from ..evaluation import evaluate_labels
from ..evaluation.runner import RunMetrics

__all__ = ["OnlineEvaluation", "run_online_evaluation", "compare_with_legacy"]

#: Default size of the sliding evaluation buffer (in samples).  At the
#: paper's 30-second sampling this is roughly a week of telemetry — long
#: enough for stable thresholds, bounded so per-poll work never grows with
#: the age of the stream.
DEFAULT_EVAL_BUFFER = 1024

#: Tenant name under which the online harness streams into the analytics
#: engine — there is exactly one stream per evaluation run.
ONLINE_TENANT = "online"


@dataclass
class OnlineEvaluation:
    """Result of an online run: metrics, alarms, analytics and throughput."""

    metrics: RunMetrics
    labels: np.ndarray
    scores: np.ndarray
    points_per_second: float
    episodes: List[Episode] = field(default_factory=list)
    alert_events: List[AlertEvent] = field(default_factory=list)


def run_online_evaluation(detector, trace: ProductionTrace,
                          rescore_every: int = 16,
                          eval_buffer: int = DEFAULT_EVAL_BUFFER,
                          incremental: Optional[bool] = None,
                          alert_policy: Optional[str] = None,
                          episode_gap: int = 2,
                          episode_min_length: int = 1) -> OnlineEvaluation:
    """Stream the test split of ``trace`` through a fitted or unfitted detector.

    The detector is fitted on the trace's train split, then the test split is
    consumed in arrival order in blocks of ``rescore_every`` samples
    (production systems batch the scoring of recent samples for efficiency).
    ``eval_buffer`` bounds the history visible to any single scoring pass, so
    per-poll work is independent of the total stream length.

    ``incremental`` selects the scoring path; by default ImDiffusion
    detectors use the incremental tail scorer and every other detector uses
    bounded re-scoring.

    The stream lands in one :class:`~repro.analytics.AnalyticsEngine` score
    store as it is scored, so the result carries sessionized anomaly
    :class:`~repro.analytics.Episode`\\ s (``episode_gap`` /
    ``episode_min_length``) and, when ``alert_policy`` is given, the
    edge-triggered :class:`~repro.analytics.AlertEvent`\\ s the policy fired
    over the run.
    """
    if rescore_every < 1:
        raise ValueError("rescore_every must be positive")
    if eval_buffer < rescore_every:
        raise ValueError("eval_buffer must be at least rescore_every")
    detector.fit(trace.train)
    if incremental is None:
        incremental = isinstance(detector, ImDiffusionDetector)
    length = trace.test.shape[0]
    analytics = AnalyticsEngine(
        history=max(length, 1),
        policies=[alert_policy] if alert_policy else [],
        episode_gap=episode_gap,
        episode_min_length=episode_min_length,
    )
    if incremental:
        labels, scores, elapsed = _stream_incremental(
            detector, trace.test, rescore_every, eval_buffer, analytics)
    else:
        labels, scores, elapsed = _stream_bounded(
            detector, trace.test, rescore_every, eval_buffer)
        # The bounded path scores in place; replay the finished stream so
        # both paths report episodes/alerts from the same engine.
        analytics.observe_block(ONLINE_TENANT, 0, scores, labels)

    metrics = evaluate_labels(labels, scores, trace.test_labels)
    return OnlineEvaluation(
        metrics=metrics,
        labels=labels,
        scores=scores,
        points_per_second=float(length / elapsed),
        episodes=analytics.episodes(ONLINE_TENANT),
        alert_events=analytics.drain_events(),
    )


def _stream_bounded(detector, test: np.ndarray, rescore_every: int,
                    eval_buffer: int):
    """Generic path: re-score a bounded trailing buffer at every poll."""
    length = test.shape[0]
    labels = np.zeros(length, dtype=np.int64)
    scores = np.zeros(length, dtype=np.float64)

    start_time = time.perf_counter()
    processed = 0
    while processed < length:
        next_block = min(processed + rescore_every, length)
        window_start = max(0, next_block - eval_buffer)
        history = test[window_start:next_block]
        prediction = detector.predict(history)
        block = slice(processed - window_start, next_block - window_start)
        labels[processed:next_block] = np.asarray(prediction.labels)[block]
        scores[processed:next_block] = np.asarray(prediction.scores)[block]
        processed = next_block
    elapsed = max(time.perf_counter() - start_time, 1e-9)
    return labels, scores, elapsed


def _stream_incremental(detector: ImDiffusionDetector, test: np.ndarray,
                        rescore_every: int, eval_buffer: int,
                        analytics: AnalyticsEngine):
    """ImDiffusion path: score only the new tail via the serving-layer scorer.

    Each poll's fresh span (everything past the analytics watermark) lands in
    ``analytics``'s score store, which doubles as the run's label/score
    history — one bounded store per tenant instead of arrays re-derived and
    copied at every step.  Decisions for a timestamp freeze at the poll that
    first covered it, exactly as an online monitor would have emitted them.
    """
    from ..serving import IncrementalScorer  # deferred: serving imports production

    window = detector.config.window_size
    history = max(eval_buffer, window)
    scorer = IncrementalScorer(detector, history=history,
                               raw_capacity=max(history, 4 * window))
    tenant = ONLINE_TENANT
    scorer.register_tenant(tenant)
    analytics.register_tenant(tenant)

    length = test.shape[0]
    start_time = time.perf_counter()
    processed = 0
    while processed < length:
        next_block = min(processed + rescore_every, length)
        scorer.ingest(tenant, test[processed:next_block])
        # Score the new tail: complete windows plus a window anchored at the
        # stream end, so the freshest points get labels at this poll.
        if scorer.total(tenant) >= window:
            scorer.score_pending(tenant, anchor_tail=True)
            view = scorer.decide(tenant)
            start, fresh_labels, fresh_scores = view.slice_from(
                analytics.watermark(tenant))
            if fresh_labels.shape[0]:
                analytics.store.skip_to(tenant, start)
                analytics.observe_block(tenant, start, fresh_scores, fresh_labels)
        processed = next_block
    elapsed = max(time.perf_counter() - start_time, 1e-9)

    stream = analytics.view(tenant)
    labels = np.zeros(length, dtype=np.int64)
    scores = np.zeros(length, dtype=np.float64)
    labels[stream.start:stream.end] = stream.label_array()
    scores[stream.start:stream.end] = stream.scores
    return labels, scores, elapsed


def compare_with_legacy(candidate_eval: OnlineEvaluation,
                        legacy_eval: OnlineEvaluation) -> Dict[str, float]:
    """Relative improvements of a candidate detector over the legacy detector.

    Mirrors Table 7: percentage improvements of precision, recall, F1 and
    R-AUC-PR (higher is better) and of ADD (lower is better), plus the
    candidate's raw inference throughput.
    """
    def relative_gain(new: float, old: float) -> float:
        if old <= 0:
            return 0.0 if new <= 0 else float("inf")
        return (new - old) / old

    candidate, legacy = candidate_eval.metrics, legacy_eval.metrics
    return {
        "precision_improvement": relative_gain(candidate.precision, legacy.precision),
        "recall_improvement": relative_gain(candidate.recall, legacy.recall),
        "f1_improvement": relative_gain(candidate.f1, legacy.f1),
        "r_auc_pr_improvement": relative_gain(candidate.r_auc_pr, legacy.r_auc_pr),
        "add_reduction": relative_gain(legacy.add, candidate.add) if candidate.add > 0 else 0.0,
        "inference_points_per_second": candidate_eval.points_per_second,
    }
