"""Streaming serving layer: multi-tenant online anomaly detection.

The paper's deployment story (Sec. 6) is a latency monitor polling telemetry
every 30 seconds.  This package turns the offline detector into a long-lived,
multi-tenant service:

* :mod:`~repro.serving.router` — event ingress with bounded per-tenant buffers,
* :mod:`~repro.serving.batcher` — cross-tenant micro-batching of denoiser
  calls with flush-by-size / flush-by-age and backpressure,
* :mod:`~repro.serving.scorer` — incremental tail scoring (amortised
  O(window) per poll instead of O(history)),
* :mod:`~repro.serving.registry` — checkpointing fitted detectors so tenants
  share warm models,
* :mod:`~repro.serving.metrics` — operational telemetry of the service itself,
* :mod:`~repro.serving.service` — the :class:`DetectorService` orchestrator.

Quickstart::

    from repro.serving import DetectorService, ModelRegistry, ServingConfig

    registry = ModelRegistry("./models")
    registry.save("latency-monitor", fitted_detector)

    service = DetectorService(registry.load("latency-monitor"),
                              ServingConfig(flush_size=8, history=512))
    for tenant, sample in telemetry:
        for alarm in service.ingest(tenant, sample):
            page_oncall(alarm)
"""

from .batcher import BatchResult, BatcherStats, MicroBatcher
from .buffers import RingBuffer
from .metrics import LatencyTracker, ServiceMetrics
from .registry import ModelRecord, ModelRegistry
from .router import StreamRouter, TelemetryEvent
from .scorer import IncrementalScorer, PendingWindow, ScoreView
from .service import Alarm, DetectorService, ServingConfig

__all__ = [
    "Alarm",
    "BatchResult",
    "BatcherStats",
    "DetectorService",
    "IncrementalScorer",
    "LatencyTracker",
    "MicroBatcher",
    "ModelRecord",
    "ModelRegistry",
    "PendingWindow",
    "RingBuffer",
    "ScoreView",
    "ServiceMetrics",
    "ServingConfig",
    "StreamRouter",
    "TelemetryEvent",
]
