"""Cross-tenant micro-batching of denoiser calls.

One reverse-diffusion pass has substantial per-call overhead (mask set-up,
chunking, Python dispatch), so scoring each tenant's windows separately wastes
most of the accelerator-friendly batch dimension.  The :class:`MicroBatcher`
queues pending windows from *all* tenants and flushes them through a single
batched scoring call when either

* ``flush_size`` windows are pending (flush by size),
* the oldest pending window has waited ``flush_age`` seconds (flush by age), or
* the caller forces a flush (end of stream, shutdown).

Backpressure: when the queue reaches ``max_pending`` the submitting producer
pays for a synchronous flush before its window is accepted, so the queue can
never grow without bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .scorer import PendingWindow

__all__ = ["BatchResult", "BatcherStats", "MicroBatcher"]

#: ``score_fn(windows) -> {progress: (batch, window) errors}`` — progress
#: indexes the *visited* denoising steps of the detector's configured reverse
#: sampler (1 = noisiest, max = final), so a strided sampler yields fewer,
#: cheaper entries per flush without any batcher-side changes.
ScoreFn = Callable[[np.ndarray], Dict[int, np.ndarray]]
#: ``on_result(request, step_errors)`` with per-window ``{progress: (window,)}``
ResultFn = Callable[[PendingWindow, Dict[int, np.ndarray]], None]


@dataclass
class BatchResult:
    """Outcome of one flushed batch."""

    reason: str                       # "size" | "age" | "forced" | "backpressure"
    requests: List[PendingWindow]
    step_errors: Dict[int, np.ndarray]  # progress -> (batch, window)
    seconds: float

    @property
    def num_windows(self) -> int:
        return len(self.requests)


@dataclass
class BatcherStats:
    batches_flushed: int = 0
    windows_scored: int = 0
    backpressure_events: int = 0
    flush_reasons: Dict[str, int] = field(default_factory=dict)


class MicroBatcher:
    """Coalesce pending windows across tenants into batched scoring calls."""

    def __init__(self, score_fn: ScoreFn, flush_size: int = 8,
                 flush_age: float = 1.0, max_pending: int = 64,
                 on_result: Optional[ResultFn] = None,
                 on_batch: Optional[Callable[["BatchResult"], None]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if flush_size < 1:
            raise ValueError("flush_size must be positive")
        if max_pending < flush_size:
            raise ValueError("max_pending must be at least flush_size")
        if flush_age <= 0:
            raise ValueError("flush_age must be positive")
        self.score_fn = score_fn
        self.flush_size = int(flush_size)
        self.flush_age = float(flush_age)
        self.max_pending = int(max_pending)
        self.on_result = on_result
        self.on_batch = on_batch
        self.clock = clock
        self.stats = BatcherStats()
        self._pending: List[PendingWindow] = []
        self._enqueued_at: List[float] = []

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def oldest_age(self) -> float:
        """Seconds the oldest pending window has been waiting (0 when empty)."""
        if not self._enqueued_at:
            return 0.0
        return max(0.0, self.clock() - self._enqueued_at[0])

    # ------------------------------------------------------------------
    def submit(self, request: PendingWindow) -> Optional[BatchResult]:
        """Enqueue one window; returns a result if backpressure forced a flush.

        A full queue triggers a synchronous backpressure flush — the producer
        pays for the scoring pass — *before* the new window is accepted.
        Ordinary size/age flushing happens in :meth:`maybe_flush`, which the
        driving loop calls between submissions.
        """
        result = None
        if len(self._pending) >= self.max_pending:
            self.stats.backpressure_events += 1
            result = self.flush(reason="backpressure")
        self._pending.append(request)
        self._enqueued_at.append(self.clock())
        return result

    def maybe_flush(self) -> Optional[BatchResult]:
        """Flush if the size or age trigger fires; called on every poll tick."""
        if len(self._pending) >= self.flush_size:
            return self.flush(reason="size")
        if self._pending and self.oldest_age() >= self.flush_age:
            return self.flush(reason="age")
        return None

    def flush(self, reason: str = "forced") -> Optional[BatchResult]:
        """Score every pending window in one coalesced call."""
        if not self._pending:
            return None
        requests = self._pending
        self._pending = []
        self._enqueued_at = []

        windows = np.stack([r.window for r in requests])
        started = self.clock()
        step_errors = self.score_fn(windows)
        seconds = max(0.0, self.clock() - started)

        self.stats.batches_flushed += 1
        self.stats.windows_scored += len(requests)
        self.stats.flush_reasons[reason] = self.stats.flush_reasons.get(reason, 0) + 1

        if self.on_result is not None:
            for i, request in enumerate(requests):
                per_window = {k: errors[i] for k, errors in step_errors.items()}
                self.on_result(request, per_window)
        result = BatchResult(reason=reason, requests=requests,
                             step_errors=step_errors, seconds=seconds)
        if self.on_batch is not None:
            self.on_batch(result)
        return result
