"""Bounded per-tenant buffers used throughout the serving layer.

The serving layer never keeps unbounded history: raw telemetry and per-step
score caches both live in fixed-capacity ring buffers addressed by *absolute*
stream indices.  Index ``i`` always refers to the ``i``-th point a tenant ever
produced, regardless of how many older points have been evicted, which keeps
bookkeeping (scored-up-to markers, alarm cursors) immune to wrap-around.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["RingBuffer"]


class RingBuffer:
    """Fixed-capacity chronological buffer of ``(time, width)`` rows.

    Rows are addressed by absolute index: ``start_index`` is the oldest
    retained row, ``end_index`` one past the newest.  Appending past capacity
    silently evicts the oldest rows (and counts them in :attr:`evicted`).
    """

    def __init__(self, capacity: int, width: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if width < 1:
            raise ValueError("width must be positive")
        self.capacity = int(capacity)
        self.width = int(width)
        self._data = np.zeros((self.capacity, self.width), dtype=np.float64)
        self._end = 0  # absolute index one past the newest row
        self.evicted = 0

    # ------------------------------------------------------------------
    @property
    def end_index(self) -> int:
        return self._end

    @property
    def start_index(self) -> int:
        return max(0, self._end - self.capacity)

    @property
    def size(self) -> int:
        return self._end - self.start_index

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    def append(self, rows: np.ndarray) -> int:
        """Append rows at the end of the stream; returns how many were evicted."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if rows.shape[1] != self.width:
            raise ValueError(f"expected rows of width {self.width}, got {rows.shape[1]}")
        before = self.start_index
        self.write_at(self._end, rows)
        newly_evicted = self.start_index - before
        return newly_evicted

    def write_at(self, abs_start: int, rows: np.ndarray) -> None:
        """Write rows at an absolute position, extending the stream if needed.

        Positions already evicted are skipped.  Writing past ``end_index``
        advances it; a gap between the current end and ``abs_start`` (e.g. a
        stream whose head was evicted before it was ever scored) is
        zero-filled so the retained range stays contiguous.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        count = rows.shape[0]
        if abs_start < 0:
            raise IndexError(f"write at negative index {abs_start}")
        if abs_start > self._end:
            gap = min(abs_start - self._end, self.capacity)
            positions = (abs_start - np.arange(1, gap + 1)) % self.capacity
            self._data[positions] = 0.0
        end = abs_start + count
        new_end = max(self._end, end)
        # Skip any part that falls before the post-write retention horizon.
        horizon = max(0, new_end - self.capacity)
        if abs_start < horizon:
            skip = horizon - abs_start
            rows = rows[skip:]
            abs_start = horizon
            count = rows.shape[0]
        if count:
            positions = (abs_start + np.arange(count)) % self.capacity
            self._data[positions] = rows
        if new_end > self._end:
            self.evicted += max(0, horizon - self.start_index)
            self._end = new_end

    def skip_to(self, abs_index: int) -> int:
        """Advance the stream to ``abs_index`` without writing real rows.

        The skipped span zero-fills like any other gap (callers that care —
        e.g. the analytics score store replaying a capture whose prefix was
        never exported — track the first *valid* index themselves, the same
        way the incremental scorer's ``valid_from`` does).  Returns the
        skipped count.
        """
        if abs_index < self._end:
            raise IndexError(
                f"cannot skip backwards: end is {self._end}, got {abs_index}")
        skipped = abs_index - self._end
        self.write_at(abs_index, np.empty((0, self.width), dtype=np.float64))
        return skipped

    # ------------------------------------------------------------------
    def view(self, abs_start: Optional[int] = None,
             abs_end: Optional[int] = None) -> np.ndarray:
        """Chronological copy of the retained rows in ``[abs_start, abs_end)``.

        Defaults to the full retained range; requested bounds must lie inside
        it.
        """
        lo = self.start_index if abs_start is None else int(abs_start)
        hi = self._end if abs_end is None else int(abs_end)
        if lo < self.start_index or hi > self._end or lo > hi:
            raise IndexError(
                f"range [{lo}, {hi}) outside retained [{self.start_index}, {self._end})"
            )
        if lo == hi:
            return np.empty((0, self.width), dtype=np.float64)
        positions = (lo + np.arange(hi - lo)) % self.capacity
        return self._data[positions].copy()

    def tail(self, count: int) -> np.ndarray:
        """The newest ``count`` retained rows (fewer if the buffer is shorter)."""
        count = min(int(count), self.size)
        return self.view(self._end - count, self._end)
