"""Operational telemetry of the serving layer.

A long-lived monitor is itself a service that must be monitored.  This module
collects the counters and latency distributions an operator of the detector
service would page on: ingest/scoring throughput, micro-batch flush behaviour,
queue depth, backpressure and alarm rates.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = ["LatencyTracker", "ServiceMetrics"]


class LatencyTracker:
    """Bounded reservoir of latency samples with percentile queries."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._samples: List[float] = []
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += float(seconds)
        self._samples.append(float(seconds))
        if len(self._samples) > self.capacity:
            del self._samples[: len(self._samples) - self.capacity]

    def percentile(self, q: float) -> float:
        """q-th percentile (0-100) of the retained samples; 0 when empty."""
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, q))

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total_seconds / self.count


class ServiceMetrics:
    """Counters, gauges and latency distributions of the detector service."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self.started_at = clock()
        # Counters
        self.events_ingested = 0
        self.points_scored = 0
        self.windows_scored = 0
        self.batches_flushed = 0
        self.alarms_raised = 0
        self.backpressure_events = 0
        self.points_evicted = 0
        self.flush_reasons: Dict[str, int] = {}
        # Alert-policy engine (repro.analytics) edges, by policy and kind
        self.alerts_fired = 0
        self.alerts_resolved = 0
        self.alerts_by_policy: Dict[str, int] = {}
        # Online adaptation loop (repro.adaptation) transitions
        self.drift_events = 0
        self.drift_recoveries = 0
        self.adaptations_applied = 0
        self.adaptations_skipped = 0
        self.models_published = 0
        self.rollbacks = 0
        self.hot_swaps = 0
        # Gauges
        self.queue_depth = 0
        self.active_tenants = 0
        # Latency of batched scoring calls
        self.scoring_latency = LatencyTracker()
        # Latency of the post-merge alarm scan (decide + fresh-span analytics)
        self.alarm_scan_latency = LatencyTracker()

    # ------------------------------------------------------------------
    def record_batch(self, num_windows: int, points: int, seconds: float,
                     reason: str) -> None:
        """Account one flushed scoring batch and its latency sample."""
        self.batches_flushed += 1
        self.windows_scored += num_windows
        self.points_scored += points
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
        self.scoring_latency.record(seconds)

    def record_alert(self, event) -> None:
        """Account one :class:`repro.analytics.AlertEvent` edge."""
        if event.kind == "fired":
            self.alerts_fired += 1
            self.alerts_by_policy[event.policy] = (
                self.alerts_by_policy.get(event.policy, 0) + 1)
        else:
            self.alerts_resolved += 1

    def record_drift(self, event) -> None:
        """Account one :class:`repro.adaptation.DriftEvent` edge."""
        if event.kind == "drift":
            self.drift_events += 1
        else:
            self.drift_recoveries += 1

    def record_adaptation(self, action: str) -> None:
        """Account one adaptation outcome (``adapted``/``rolled_back``/``skipped``)."""
        if action == "adapted":
            self.adaptations_applied += 1
        elif action == "rolled_back":
            self.rollbacks += 1
        elif action == "skipped":
            self.adaptations_skipped += 1
        else:
            raise ValueError(f"unknown adaptation action {action!r}")

    def record_publish(self) -> None:
        """Account one model version published to the registry."""
        self.models_published += 1

    def record_hot_swap(self) -> None:
        """Account one in-place weight swap under the running service."""
        self.hot_swaps += 1

    def record_alarm_scan(self, seconds: float) -> None:
        """Account one :meth:`DetectorService.collect_alarms` scan."""
        self.alarm_scan_latency.record(seconds)

    def record_drain(self, num_windows: int, new_points: int) -> None:
        """Account a shutdown drain pass without polluting latency samples."""
        self.batches_flushed += 1
        self.windows_scored += num_windows
        self.points_scored += new_points
        self.flush_reasons["drain"] = self.flush_reasons.get("drain", 0) + 1

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since the metrics object was created."""
        return max(self.clock() - self.started_at, 1e-9)

    @property
    def points_per_second(self) -> float:
        """Scoring throughput over the lifetime of the service."""
        return self.points_scored / self.elapsed_seconds

    @property
    def alarms_per_second(self) -> float:
        """Alarm rate over the lifetime of the service."""
        return self.alarms_raised / self.elapsed_seconds

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat dictionary of every metric, for logging or assertions."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "events_ingested": float(self.events_ingested),
            "points_scored": float(self.points_scored),
            "windows_scored": float(self.windows_scored),
            "batches_flushed": float(self.batches_flushed),
            "alarms_raised": float(self.alarms_raised),
            "alerts_fired": float(self.alerts_fired),
            "alerts_resolved": float(self.alerts_resolved),
            "drift_events": float(self.drift_events),
            "drift_recoveries": float(self.drift_recoveries),
            "adaptations_applied": float(self.adaptations_applied),
            "adaptations_skipped": float(self.adaptations_skipped),
            "models_published": float(self.models_published),
            "rollbacks": float(self.rollbacks),
            "hot_swaps": float(self.hot_swaps),
            "backpressure_events": float(self.backpressure_events),
            "points_evicted": float(self.points_evicted),
            "queue_depth": float(self.queue_depth),
            "active_tenants": float(self.active_tenants),
            "points_per_second": self.points_per_second,
            "alarms_per_second": self.alarms_per_second,
            "scoring_latency_p50": self.scoring_latency.percentile(50.0),
            "scoring_latency_p99": self.scoring_latency.percentile(99.0),
            "scoring_latency_mean": self.scoring_latency.mean,
            "alarm_scan_latency_p50": self.alarm_scan_latency.percentile(50.0),
            "alarm_scan_latency_p99": self.alarm_scan_latency.percentile(99.0),
            "alarm_scan_latency_mean": self.alarm_scan_latency.mean,
        }

    def format_table(self) -> str:
        """Human-readable metrics table for the CLI."""
        snap = self.snapshot()
        lines = ["metric                        value",
                 "-" * 40]
        for key in ("active_tenants", "events_ingested", "points_scored",
                    "windows_scored", "batches_flushed", "alarms_raised",
                    "alerts_fired", "alerts_resolved",
                    "drift_events", "adaptations_applied",
                    "adaptations_skipped", "models_published", "rollbacks",
                    "hot_swaps",
                    "backpressure_events", "points_evicted", "queue_depth"):
            lines.append(f"{key:28s} {snap[key]:>10.0f}")
        lines.append(f"{'points_per_second':28s} {snap['points_per_second']:>10.1f}")
        lines.append(f"{'alarms_per_second':28s} {snap['alarms_per_second']:>10.3f}")
        lines.append(f"{'scoring_latency_p50 (ms)':28s} "
                     f"{1000 * snap['scoring_latency_p50']:>10.2f}")
        lines.append(f"{'scoring_latency_p99 (ms)':28s} "
                     f"{1000 * snap['scoring_latency_p99']:>10.2f}")
        lines.append(f"{'alarm_scan_latency_p50 (ms)':28s} "
                     f"{1000 * snap['alarm_scan_latency_p50']:>10.2f}")
        lines.append(f"{'alarm_scan_latency_p99 (ms)':28s} "
                     f"{1000 * snap['alarm_scan_latency_p99']:>10.2f}")
        if self.flush_reasons:
            reasons = ", ".join(f"{k}={v}" for k, v in sorted(self.flush_reasons.items()))
            lines.append(f"{'flushes_by_reason':28s} {reasons:>10s}")
        if self.alerts_by_policy:
            policies = ", ".join(f"{k}={v}"
                                 for k, v in sorted(self.alerts_by_policy.items()))
            lines.append(f"{'alerts_by_policy':28s} {policies:>10s}")
        return "\n".join(lines)
