"""Persistent registry of fitted detectors shared across tenants.

Training an ImDiffusion detector is by far the most expensive step of the
serving pipeline, so fitted models are checkpointed once and shared: the
registry stores each model as a single ``.npz`` checkpoint (denoiser weights,
scaler statistics, configuration and random-generator state) written through
:mod:`repro.nn.serialization`, and any number of serving processes can load
the same warm model.  Restored detectors produce bit-identical predictions to
the detector that was saved.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import ImDiffusionDetector
from ..nn.serialization import (atomic_save_checkpoint, load_checkpoint,
                                load_checkpoint_metadata)

__all__ = ["ModelRecord", "ModelRegistry"]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_SUFFIX = ".ckpt.npz"


@dataclass(frozen=True)
class ModelRecord:
    """Catalogue entry describing one registered model."""

    name: str
    path: str
    num_features: int
    window_size: int
    num_steps: int
    created_at: float
    size_bytes: int

    def describe(self) -> str:
        return (f"{self.name}: {self.num_features} features, "
                f"window {self.window_size}, {self.num_steps} diffusion steps, "
                f"{self.size_bytes / 1024:.1f} KiB")


class ModelRegistry:
    """File-system backed catalogue of fitted :class:`ImDiffusionDetector` models.

    Models are stored flat, one atomic ``.npz`` checkpoint per name.  Two
    conventions coexist:

    * **Unversioned** names (``save``/``load``): publishing under an existing
      name atomically replaces the previous checkpoint.
    * **Versioned** lineages (``publish_version``/``load_version``): each
      publish appends an immutable ``name.v<N>`` checkpoint, so the online
      adaptation loop can roll back to (or audit) any earlier model.

    Examples
    --------
    >>> registry = ModelRegistry("/tmp/registry-example")
    >>> detector.fit(train)                                # doctest: +SKIP
    >>> registry.save("served", detector)                  # doctest: +SKIP
    >>> registry.publish_version("served", detector)       # doctest: +SKIP
    1
    >>> registry.load_version("served", 1)                 # doctest: +SKIP
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, name: str) -> str:
        if not _NAME_PATTERN.match(name):
            raise ValueError(
                f"invalid model name {name!r}: use letters, digits, '.', '_' or '-'"
            )
        return os.path.join(self.root, name + _SUFFIX)

    # ------------------------------------------------------------------
    def save(self, name: str, detector: ImDiffusionDetector,
             metadata: Optional[dict] = None) -> str:
        """Checkpoint a fitted detector under ``name``; returns the file path.

        Saving under an existing name overwrites the previous checkpoint
        (publishing a retrained model is an atomic file replacement).
        """
        path = self._path(name)
        arrays, meta = detector.to_checkpoint()
        meta["registry"] = {
            "name": name,
            "created_at": time.time(),
            "extra": metadata or {},
        }
        atomic_save_checkpoint(path, arrays, meta)
        return path

    def load(self, name: str) -> ImDiffusionDetector:
        """Rebuild the fitted detector registered under ``name``."""
        path = self._path(name)
        if not os.path.exists(path):
            raise KeyError(f"no model named {name!r} in registry at {self.root}")
        arrays, meta = load_checkpoint(path)
        return ImDiffusionDetector.from_checkpoint(arrays, meta)

    # ------------------------------------------------------------------
    def record(self, name: str) -> ModelRecord:
        """Catalogue metadata for ``name`` without rebuilding the network."""
        path = self._path(name)
        if not os.path.exists(path):
            raise KeyError(f"no model named {name!r} in registry at {self.root}")
        meta = load_checkpoint_metadata(path)
        config = meta["config"]
        return ModelRecord(
            name=name,
            path=path,
            num_features=int(meta["num_features"]),
            window_size=int(config["window_size"]),
            num_steps=int(config["num_steps"]),
            created_at=float(meta.get("registry", {}).get("created_at", 0.0)),
            size_bytes=os.path.getsize(path),
        )

    def list_models(self) -> List[str]:
        """Sorted names of every checkpoint in the registry directory."""
        names = [
            entry[: -len(_SUFFIX)]
            for entry in os.listdir(self.root)
            if entry.endswith(_SUFFIX)
        ]
        return sorted(names)

    def records(self) -> Dict[str, ModelRecord]:
        """Metadata records of every registered model, keyed by name."""
        return {name: self.record(name) for name in self.list_models()}

    def __contains__(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def delete(self, name: str) -> None:
        """Remove the checkpoint registered under ``name``."""
        path = self._path(name)
        if not os.path.exists(path):
            raise KeyError(f"no model named {name!r} in registry at {self.root}")
        os.remove(path)

    # ------------------------------------------------------------------
    # Versioned lineages (the online-adaptation publish/rollback surface)
    # ------------------------------------------------------------------
    @staticmethod
    def version_name(name: str, version: int) -> str:
        """The registry name of version ``version`` of lineage ``name``."""
        if version < 1:
            raise ValueError("versions start at 1")
        return f"{name}.v{int(version)}"

    def versions(self, name: str) -> List[int]:
        """All published versions of lineage ``name``, ascending."""
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid model name {name!r}")
        pattern = re.compile(re.escape(name) + r"\.v(\d+)$")
        found = []
        for registered in self.list_models():
            match = pattern.match(registered)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self, name: str) -> Optional[int]:
        """The newest published version of ``name`` (``None`` if none)."""
        published = self.versions(name)
        return published[-1] if published else None

    def publish_version(self, name: str, detector: ImDiffusionDetector,
                        metadata: Optional[dict] = None) -> int:
        """Publish ``detector`` as the next version of lineage ``name``.

        Versions are immutable and dense: the first publish creates
        ``name.v1``, the next ``name.v2``, and so on.  Returns the new
        version number.
        """
        version = (self.latest_version(name) or 0) + 1
        extra = dict(metadata or {})
        extra.setdefault("model", name)
        extra.setdefault("version", version)
        self.save(self.version_name(name, version), detector, extra)
        return version

    def load_version(self, name: str, version: int) -> ImDiffusionDetector:
        """Rebuild one published version; raises ``KeyError`` if its
        checkpoint is missing (e.g. deleted by retention)."""
        return self.load(self.version_name(name, version))
