"""Persistent registry of fitted detectors shared across tenants.

Training an ImDiffusion detector is by far the most expensive step of the
serving pipeline, so fitted models are checkpointed once and shared: the
registry stores each model as a single ``.npz`` checkpoint (denoiser weights,
scaler statistics, configuration and random-generator state) written through
:mod:`repro.nn.serialization`, and any number of serving processes can load
the same warm model.  Restored detectors produce bit-identical predictions to
the detector that was saved.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import ImDiffusionDetector
from ..nn.serialization import (atomic_save_checkpoint, load_checkpoint,
                                load_checkpoint_metadata)

__all__ = ["ModelRecord", "ModelRegistry"]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_SUFFIX = ".ckpt.npz"


@dataclass(frozen=True)
class ModelRecord:
    """Catalogue entry describing one registered model."""

    name: str
    path: str
    num_features: int
    window_size: int
    num_steps: int
    created_at: float
    size_bytes: int

    def describe(self) -> str:
        return (f"{self.name}: {self.num_features} features, "
                f"window {self.window_size}, {self.num_steps} diffusion steps, "
                f"{self.size_bytes / 1024:.1f} KiB")


class ModelRegistry:
    """File-system backed catalogue of fitted :class:`ImDiffusionDetector` models."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, name: str) -> str:
        if not _NAME_PATTERN.match(name):
            raise ValueError(
                f"invalid model name {name!r}: use letters, digits, '.', '_' or '-'"
            )
        return os.path.join(self.root, name + _SUFFIX)

    # ------------------------------------------------------------------
    def save(self, name: str, detector: ImDiffusionDetector,
             metadata: Optional[dict] = None) -> str:
        """Checkpoint a fitted detector under ``name``; returns the file path.

        Saving under an existing name overwrites the previous checkpoint
        (publishing a retrained model is an atomic file replacement).
        """
        path = self._path(name)
        arrays, meta = detector.to_checkpoint()
        meta["registry"] = {
            "name": name,
            "created_at": time.time(),
            "extra": metadata or {},
        }
        atomic_save_checkpoint(path, arrays, meta)
        return path

    def load(self, name: str) -> ImDiffusionDetector:
        """Rebuild the fitted detector registered under ``name``."""
        path = self._path(name)
        if not os.path.exists(path):
            raise KeyError(f"no model named {name!r} in registry at {self.root}")
        arrays, meta = load_checkpoint(path)
        return ImDiffusionDetector.from_checkpoint(arrays, meta)

    # ------------------------------------------------------------------
    def record(self, name: str) -> ModelRecord:
        """Catalogue metadata for ``name`` without rebuilding the network."""
        path = self._path(name)
        if not os.path.exists(path):
            raise KeyError(f"no model named {name!r} in registry at {self.root}")
        meta = load_checkpoint_metadata(path)
        config = meta["config"]
        return ModelRecord(
            name=name,
            path=path,
            num_features=int(meta["num_features"]),
            window_size=int(config["window_size"]),
            num_steps=int(config["num_steps"]),
            created_at=float(meta.get("registry", {}).get("created_at", 0.0)),
            size_bytes=os.path.getsize(path),
        )

    def list_models(self) -> List[str]:
        names = [
            entry[: -len(_SUFFIX)]
            for entry in os.listdir(self.root)
            if entry.endswith(_SUFFIX)
        ]
        return sorted(names)

    def records(self) -> Dict[str, ModelRecord]:
        return {name: self.record(name) for name in self.list_models()}

    def __contains__(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def delete(self, name: str) -> None:
        path = self._path(name)
        if not os.path.exists(path):
            raise KeyError(f"no model named {name!r} in registry at {self.root}")
        os.remove(path)
