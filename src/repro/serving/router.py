"""Event ingress: route per-tenant telemetry into bounded buffers and windows.

The :class:`StreamRouter` is the front door of the serving layer.  Producers
push :class:`TelemetryEvent` instances (or raw ``(tenant, values)`` pairs);
the router appends them to the owning tenant's bounded ring buffer inside the
:class:`~repro.serving.scorer.IncrementalScorer` and emits complete detection
windows downstream (normally into the micro-batcher) as soon as they fill up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from .scorer import IncrementalScorer, PendingWindow

__all__ = ["TelemetryEvent", "StreamRouter"]


@dataclass(frozen=True)
class TelemetryEvent:
    """One telemetry sample from one tenant.

    ``values`` is the multivariate observation (one entry per monitored
    channel); ``timestamp`` is an optional producer-side time (seconds).
    """

    tenant: str
    values: np.ndarray
    timestamp: Optional[float] = None


class StreamRouter:
    """Ingest telemetry events and emit full detection windows per tenant."""

    def __init__(self, scorer: IncrementalScorer,
                 on_window: Optional[Callable[[PendingWindow], None]] = None,
                 auto_register: bool = True) -> None:
        self.scorer = scorer
        self.on_window = on_window
        self.auto_register = auto_register
        self.events_ingested = 0
        self.points_evicted = 0

    # ------------------------------------------------------------------
    def register_tenant(self, tenant: str) -> None:
        self.scorer.register_tenant(tenant)

    def tenants(self) -> List[str]:
        return self.scorer.tenants()

    # ------------------------------------------------------------------
    def ingest(self, event: TelemetryEvent) -> List[PendingWindow]:
        """Route one event; returns the windows it completed (usually 0 or 1)."""
        return self.ingest_points(event.tenant, np.atleast_2d(event.values))

    def ingest_points(self, tenant: str, points: np.ndarray) -> List[PendingWindow]:
        """Route a contiguous block of points from one tenant."""
        if self.auto_register and not self.scorer.is_registered(tenant):
            self.scorer.register_tenant(tenant)
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        self.points_evicted += self.scorer.ingest(tenant, points)
        self.events_ingested += points.shape[0]
        windows = self.scorer.pending_windows(tenant)
        if self.on_window is not None:
            for window in windows:
                self.on_window(window)
        return windows
