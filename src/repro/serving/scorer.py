"""Incremental scoring on top of a fitted :class:`ImDiffusionDetector`.

The offline detector re-scores whatever series it is handed, so a naive
online loop that calls ``predict`` on the full history does O(n) model work
per poll — O(n²) over the stream.  :class:`IncrementalScorer` instead keeps a
bounded per-tenant cache of per-step imputation errors and only runs the
denoiser over the *new tail* of each tenant's stream:

* new points accumulate in a bounded raw ring buffer,
* once a full detection window of unscored points exists the window is scored
  (optionally batched across tenants by the micro-batcher) and its per-step
  errors are merged into the tenant's score cache,
* anomaly labels are re-derived from the cached errors with the same ensemble
  voting mechanism the offline detector uses, evaluated over the bounded
  cache instead of the full history.

Amortised work per new point is O(window) model time, independent of how long
the stream has been running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import ImDiffusionDetector
from ..core.detector import ImputationScoreSpec
from ..core.ensemble import EnsembleVoter
from ..core.modes import build_masks
from ..inference import ScoreReducer, SerialScoreReducer
from .buffers import RingBuffer

__all__ = ["PendingWindow", "ScoreView", "IncrementalScorer"]


@dataclass(frozen=True)
class PendingWindow:
    """One detection window awaiting a denoiser pass."""

    tenant: str
    start: int           # absolute index of the window's first timestamp
    window: np.ndarray   # scaled values, shape (window_size, num_features)


@dataclass
class ScoreView:
    """Current labels/scores for the retained span of one tenant's stream."""

    start: int
    end: int
    labels: np.ndarray
    scores: np.ndarray

    def label_at(self, abs_index: int) -> int:
        return int(self.labels[abs_index - self.start])

    def score_at(self, abs_index: int) -> float:
        return float(self.scores[abs_index - self.start])

    def slice_from(self, abs_index: int) -> Tuple[int, np.ndarray, np.ndarray]:
        """``(start, labels, scores)`` from ``abs_index`` to the view's end.

        The vectorized form of walking ``label_at``/``score_at`` point by
        point — this is what the service's alarm scan and the analytics
        feed consume per fresh span.  ``abs_index`` below the view start
        clamps to the start.
        """
        lo = max(int(abs_index), self.start) - self.start
        return self.start + lo, self.labels[lo:], self.scores[lo:]


class _TenantState:
    def __init__(self, raw_capacity: int, score_capacity: int,
                 num_features: int, num_steps: int) -> None:
        self.raw = RingBuffer(raw_capacity, num_features)
        self.scores = RingBuffer(score_capacity, num_steps)
        self.emitted_until = 0   # absolute index: windows formed up to here
        self.dropped_points = 0  # unscored points lost to raw-buffer eviction
        self.valid_from = 0      # first index with real (non-gap-fill) scores


class IncrementalScorer:
    """Score per-tenant telemetry streams incrementally with a shared detector.

    Parameters
    ----------
    detector:
        A *fitted* :class:`ImDiffusionDetector` (e.g. loaded from the
        :class:`~repro.serving.registry.ModelRegistry`), shared by all tenants.
    history:
        Capacity of the per-tenant score cache — the sliding evaluation
        buffer over which thresholds and ensemble votes are computed.
    raw_capacity:
        Capacity of the per-tenant raw ring buffer; defaults to
        ``max(history, 4 * window_size)``.
    reducer:
        The :class:`~repro.inference.ScoreReducer` executing the batched
        denoiser passes.  Defaults to an in-process
        :class:`~repro.inference.SerialScoreReducer`; the service passes a
        :class:`~repro.inference.MultiprocessScoreReducer` when configured
        with ``score_workers > 1``.  By the reducer determinism contract the
        scores are identical either way.  The scorer owns the reducer it is
        handed: :meth:`close` releases it.
    """

    def __init__(self, detector: ImDiffusionDetector, history: int = 1024,
                 raw_capacity: Optional[int] = None,
                 reducer: Optional[ScoreReducer] = None) -> None:
        if not detector.is_fitted:
            raise ValueError("IncrementalScorer requires a fitted detector")
        self.detector = detector
        config = detector.config
        self.window_size = config.window_size
        # Width of the per-tenant score cache: one column per *collected*
        # denoising step.  Under a strided sampler this is the trajectory
        # length, not the schedule's nominal T.
        self.num_steps = config.inference_steps
        self.num_features = int(detector.num_features)
        self.history = int(history)
        if self.history < self.window_size:
            raise ValueError("history must be at least one window long")
        self.raw_capacity = int(raw_capacity or max(self.history, 4 * self.window_size))
        if self.raw_capacity < self.window_size:
            raise ValueError("raw_capacity must be at least one window long")
        self._masks = build_masks(config, self.window_size, self.num_features)
        # Serving is inference-only: flip the shared denoiser to eval mode
        # once so every batched pass runs with deterministic layers and
        # (together with the impute-level no_grad) a graph-free hot path.
        detector._imputer.model.eval()
        # open() eagerly so a multiprocess reducer pays its spawn cost at
        # service start-up, not on the first tenant's first flush.
        self._reducer = reducer if reducer is not None else SerialScoreReducer(
            ImputationScoreSpec(detector))
        self._reducer.open()
        self._voter = EnsembleVoter(
            error_percentile=config.error_percentile,
            vote_fraction=config.vote_fraction,
            step_stride=config.vote_step_stride,
            last_fraction=config.vote_last_fraction,
        )
        self._tenants: Dict[str, _TenantState] = {}

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------
    def register_tenant(self, tenant: str) -> None:
        if tenant in self._tenants:
            raise ValueError(f"tenant {tenant!r} already registered")
        self._tenants[tenant] = _TenantState(
            self.raw_capacity, self.history, self.num_features, self.num_steps)

    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    def is_registered(self, tenant: str) -> bool:
        return tenant in self._tenants

    def _state(self, tenant: str) -> _TenantState:
        try:
            return self._tenants[tenant]
        except KeyError:
            raise KeyError(f"unknown tenant {tenant!r}; register_tenant first") from None

    def total(self, tenant: str) -> int:
        """Absolute number of points the tenant has ever ingested."""
        return self._state(tenant).raw.end_index

    def scored_until(self, tenant: str) -> int:
        """Absolute index up to which scores exist."""
        return self._state(tenant).scores.end_index

    def dropped_points(self, tenant: str) -> int:
        return self._state(tenant).dropped_points

    def buffered_points(self, tenant: str) -> int:
        """Raw points currently retained in the tenant's ring buffer."""
        return self._state(tenant).raw.size

    def raw_tail(self, tenant: str, count: int) -> np.ndarray:
        """Copy of the newest ``count`` retained *unscaled* raw points.

        This is the adaptation controller's window-snapshot hook: on a
        confirmed drift event it grabs the recent span of the tenant's ring
        buffer as fine-tuning data.  Returns at most the retained size.
        """
        ring = self._state(tenant).raw
        count = min(int(count), ring.size)
        return np.array(ring.view(ring.end_index - count, ring.end_index))

    # ------------------------------------------------------------------
    # Ingestion and window formation
    # ------------------------------------------------------------------
    def ingest(self, tenant: str, points: np.ndarray) -> int:
        """Append raw points to the tenant's stream; returns evicted row count."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features, got {points.shape[1]}")
        return self._state(tenant).raw.append(points)

    def scale(self, points: np.ndarray) -> np.ndarray:
        """Apply the detector's training-time standardisation."""
        return self.detector._scaler.transform(points)

    def pending_windows(self, tenant: str, anchor_tail: bool = False) -> List[PendingWindow]:
        """Windows of not-yet-scored points, ready for a denoiser pass.

        Complete non-overlapping windows are emitted from the unscored
        boundary onward.  With ``anchor_tail`` a final window anchored at the
        end of the stream is added when a partial window of unscored points
        remains (the serving analogue of the anchored final window of
        :func:`repro.data.windows.window_starts`), re-scoring the overlap.
        """
        state = self._state(tenant)
        window = self.window_size
        total = state.raw.end_index
        if state.emitted_until < state.raw.start_index:
            state.dropped_points += state.raw.start_index - state.emitted_until
            state.emitted_until = state.raw.start_index
        pending: List[PendingWindow] = []
        while state.emitted_until + window <= total:
            start = state.emitted_until
            values = self.scale(state.raw.view(start, start + window))
            pending.append(PendingWindow(tenant=tenant, start=start, window=values))
            state.emitted_until = start + window
        if anchor_tail and state.emitted_until < total and total >= window:
            start = total - window
            values = self.scale(state.raw.view(start, start + window))
            pending.append(PendingWindow(tenant=tenant, start=start, window=values))
            state.emitted_until = total
        return pending

    # ------------------------------------------------------------------
    # Batched denoiser scoring
    # ------------------------------------------------------------------
    def score_window_batch(self, windows: np.ndarray,
                           rng: Optional[np.random.Generator] = None
                           ) -> Dict[int, np.ndarray]:
        """Per-step imputation errors for a batch of (scaled) windows.

        This is the coalesced denoiser call issued by the micro-batcher:
        ``windows`` may mix windows from many tenants.  Returns a mapping
        ``progress -> errors`` with ``errors`` of shape ``(batch, window)``,
        computed exactly as :meth:`ImDiffusionDetector.score` computes them
        for non-overlapping windows (same mask policies, same chunking, same
        draw order from the generator).  The pass inherits the detector's
        inference engine: grad-free denoiser calls and the configured
        reverse sampler (``progress`` indexes visited steps, 1 = noisiest).

        The denoiser work itself runs through the scorer's
        :class:`~repro.inference.ScoreReducer` — in-process by default,
        fanned out across scoring workers when the service is configured
        with ``score_workers > 1`` — with identical results either way.
        """
        detector = self.detector
        rng = rng if rng is not None else detector._rng
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3 or windows.shape[1:] != (self.window_size, self.num_features):
            raise ValueError(
                f"expected windows of shape (batch, {self.window_size}, "
                f"{self.num_features}), got {windows.shape}")

        batch = windows.shape[0]
        num_steps = self.num_steps
        error_sum = self._reducer.window_errors(windows, rng)
        for k in range(1, num_steps + 1):
            # An empty batch produces an empty task plan; keep the full
            # progress -> errors contract regardless.
            if k not in error_sum:
                error_sum[k] = np.zeros((batch, self.window_size, self.num_features))

        masked_count = np.zeros((self.window_size, self.num_features))
        for mask in self._masks:
            masked_count += 1.0 - mask

        coverage = np.maximum(masked_count.sum(axis=1), 1.0)  # (window,)
        return {progress: totals.sum(axis=2) / coverage
                for progress, totals in error_sum.items()}

    # ------------------------------------------------------------------
    # Merging and decisions
    # ------------------------------------------------------------------
    def merge(self, tenant: str, start: int,
              step_errors: Dict[int, np.ndarray]) -> None:
        """Merge one scored window's per-step errors into the tenant cache.

        ``step_errors`` maps denoising progress ``k`` to a ``(window,)`` error
        array.  Overlapping positions (anchored tail windows) are overwritten
        with the fresher scores.
        """
        rows = np.stack(
            [np.asarray(step_errors[k], dtype=np.float64)
             for k in range(1, self.num_steps + 1)], axis=1)
        state = self._state(tenant)
        if start > state.scores.end_index:
            # A span was evicted before it could be scored; the ring zero-fills
            # the gap, but those rows are not evidence — exclude them from
            # threshold/vote computation.
            state.valid_from = start
        state.scores.write_at(start, rows)

    def score_pending(self, tenant: str, anchor_tail: bool = False,
                      rng: Optional[np.random.Generator] = None) -> int:
        """Score all pending windows of one tenant directly (no micro-batching).

        Returns the number of windows scored.  This is the path the online
        evaluation harness uses; the multi-tenant service routes windows
        through the :class:`~repro.serving.batcher.MicroBatcher` instead.
        """
        pending = self.pending_windows(tenant, anchor_tail=anchor_tail)
        if not pending:
            return 0
        stacked = np.stack([p.window for p in pending])
        batch_errors = self.score_window_batch(stacked, rng=rng)
        for i, request in enumerate(pending):
            self.merge(tenant, request.start,
                       {k: batch_errors[k][i] for k in batch_errors})
        return len(pending)

    def decide(self, tenant: str) -> ScoreView:
        """Labels and final-step scores over the tenant's retained score cache.

        Thresholds and ensemble votes are recomputed over the bounded cache,
        mirroring the production monitor that re-evaluates alarms on a sliding
        evaluation buffer at every poll.
        """
        state = self._state(tenant)
        cache = state.scores
        lo = max(cache.start_index, state.valid_from)
        view = cache.view(lo, cache.end_index)
        if view.shape[0] == 0:
            empty = np.empty(0)
            return ScoreView(start=cache.end_index, end=cache.end_index,
                             labels=empty.astype(np.int64), scores=empty)
        step_errors = {k: view[:, k - 1] for k in range(1, self.num_steps + 1)}
        if self.detector.config.ensemble:
            labels = self._voter.vote(step_errors).labels
        else:
            labels = self._voter.single_step_labels(step_errors)
        return ScoreView(
            start=lo,
            end=cache.end_index,
            labels=labels,
            scores=view[:, self.num_steps - 1],
        )

    # ------------------------------------------------------------------
    # Hot weight swap
    # ------------------------------------------------------------------
    def swap_detector(self, source: ImDiffusionDetector) -> int:
        """Copy ``source``'s weights into the serving detector, in place.

        The serving swap of the adaptation loop: denoiser parameters and
        scaler statistics are copied **into the existing arrays** (object
        identity is preserved, so every live reference — score specs,
        shared-memory publishers — sees the new values), then a
        multiprocess reducer re-publishes to its shared block, bumping the
        generation counter so scoring workers pick the new weights up on
        their next task *without restarting*.  Returns the new parameter
        generation (0 for the in-process serial reducer).

        ``source`` must be scoring-compatible: same feature count, window
        size and sampler trajectory length (the per-tenant score caches are
        keyed by collected denoising step).  Tenant buffers, score caches
        and the detector's random stream are untouched — swapping in a
        bitwise-equal copy of the current weights leaves every future score
        bit-identical, which is what makes rollback exact.
        """
        if not source.is_fitted:
            raise ValueError("swap_detector requires a fitted source detector")
        if int(source.num_features) != self.num_features:
            raise ValueError(
                f"feature mismatch: serving {self.num_features}, "
                f"source {source.num_features}")
        if source.config.window_size != self.window_size:
            raise ValueError(
                f"window mismatch: serving {self.window_size}, "
                f"source {source.config.window_size}")
        if source.config.inference_steps != self.num_steps:
            raise ValueError(
                f"trajectory mismatch: serving collects {self.num_steps} "
                f"steps, source collects {source.config.inference_steps}")
        target = dict(self.detector._imputer.model.named_parameters())
        replacement = source._imputer.model.state_dict()
        if set(target) != set(replacement):
            raise ValueError("architecture mismatch: parameter names differ")
        for name, parameter in target.items():
            value = np.asarray(replacement[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"parameter {name!r} has shape {parameter.data.shape} "
                    f"but source provides {value.shape}")
        for name, parameter in target.items():
            np.copyto(parameter.data, np.asarray(replacement[name],
                                                 dtype=np.float64))
        np.copyto(self.detector._scaler.mean_,
                  np.asarray(source._scaler.mean_, dtype=np.float64))
        np.copyto(self.detector._scaler.std_,
                  np.asarray(source._scaler.std_, dtype=np.float64))
        refresh = getattr(self._reducer, "refresh_parameters", None)
        if refresh is not None:
            return int(refresh())
        return 0

    @property
    def parameter_generation(self) -> int:
        """Generation of the published parameter snapshot (0 when serial)."""
        return int(getattr(self._reducer, "generation", 0))

    @property
    def worker_pids(self) -> list:
        """PIDs of the score worker processes (empty for the serial reducer)."""
        return list(getattr(self._reducer, "worker_pids", []))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the score reducer (worker pool, shared memory); idempotent."""
        self._reducer.close()

    def __enter__(self) -> "IncrementalScorer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
