"""The multi-tenant detector service: router → micro-batcher → scorer.

:class:`DetectorService` wires the serving pieces into one long-lived,
multi-tenant monitor around a single shared (typically registry-loaded)
detector:

* producers push telemetry through :meth:`ingest`,
* the :class:`~repro.serving.router.StreamRouter` forms detection windows and
  hands them to the :class:`~repro.serving.batcher.MicroBatcher`,
* flushed batches run one coalesced denoiser call in the
  :class:`~repro.serving.scorer.IncrementalScorer`, whose per-tenant score
  caches the service then re-evaluates for fresh alarms,
* :class:`~repro.serving.metrics.ServiceMetrics` tracks throughput, scoring
  latency percentiles, queue depth and alarm rate throughout.

The service is single-threaded and event-driven: call :meth:`pump` (or let
:meth:`ingest` do it) to advance flush-by-age timers, and :meth:`drain` at
shutdown to score whatever is still queued.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core import ImDiffusionDetector
from ..core.detector import ImputationScoreSpec
from ..inference import MultiprocessScoreReducer, ScoreReducer
from .batcher import BatchResult, MicroBatcher
from .metrics import ServiceMetrics
from .router import StreamRouter, TelemetryEvent
from .scorer import IncrementalScorer, PendingWindow, ScoreView

if TYPE_CHECKING:  # pragma: no cover - import cycle: analytics uses our buffers
    from ..analytics import AlertEvent, AnalyticsEngine

__all__ = ["Alarm", "ServingConfig", "DetectorService"]


@dataclass(frozen=True)
class Alarm:
    """One anomaly alarm: a flagged timestamp in one tenant's stream."""

    tenant: str
    index: int    # absolute stream index of the flagged point
    score: float  # final-step imputation error at that point


@dataclass
class ServingConfig:
    """Knobs of the serving layer (the model itself is configured separately)."""

    flush_size: int = 8        # windows per coalesced denoiser call
    flush_age: float = 2.0     # seconds a window may wait before an age flush
    max_pending: int = 64      # queue bound triggering backpressure
    history: int = 1024        # per-tenant score-cache / evaluation buffer
    raw_capacity: Optional[int] = None  # per-tenant raw ring (default from scorer)
    # Sharded inference: fan each flushed batch out across this many scoring
    # workers (1 = score in-process).  Scores are worker-count-invariant;
    # see the README's "Sharded inference" section for when it helps.
    score_workers: int = 1
    # Analytics layer (repro.analytics): queryable score history + alerting
    alert_policies: Sequence[str] = ()  # policy expressions (see parse_policy)
    analytics_history: Optional[int] = None  # score-store retention (default: history)
    episode_gap: int = 2       # quiet points merged into an anomaly episode
    episode_min_length: int = 1  # shortest episode worth reporting


class DetectorService:
    """Serve many telemetry streams through one shared fitted detector."""

    def __init__(self, detector: ImDiffusionDetector,
                 config: Optional[ServingConfig] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or ServingConfig()
        if self.config.score_workers < 1:
            raise ValueError("score_workers must be at least 1")
        self.metrics = ServiceMetrics(clock=clock)
        reducer: Optional[ScoreReducer] = None
        if self.config.score_workers > 1:
            reducer = MultiprocessScoreReducer(
                ImputationScoreSpec(detector), self.config.score_workers)
        self.scorer = IncrementalScorer(
            detector, history=self.config.history,
            raw_capacity=self.config.raw_capacity,
            reducer=reducer)
        self.batcher = MicroBatcher(
            score_fn=self.scorer.score_window_batch,
            flush_size=self.config.flush_size,
            flush_age=self.config.flush_age,
            max_pending=self.config.max_pending,
            on_result=self._merge_result,
            on_batch=self._record_batch,
            clock=clock,
        )
        self.router = StreamRouter(self.scorer, on_window=self.batcher.submit)
        # Deferred import: repro.analytics builds on the serving ring buffers,
        # so importing it at module scope would be circular.
        from ..analytics import AnalyticsEngine

        self.analytics: "AnalyticsEngine" = AnalyticsEngine(
            history=self.config.analytics_history or self.config.history,
            policies=list(self.config.alert_policies),
            episode_gap=self.config.episode_gap,
            episode_min_length=self.config.episode_min_length,
        )
        self._alarm_cursor: Dict[str, int] = {}
        self._dirty: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    def register_tenant(self, tenant: str) -> None:
        """Register a tenant; idempotent for tenants the router auto-registered."""
        if not self.scorer.is_registered(tenant):
            self.router.register_tenant(tenant)
        self.analytics.register_tenant(tenant)
        self._alarm_cursor.setdefault(tenant, 0)
        self._dirty.setdefault(tenant, False)
        self.metrics.active_tenants = len(self.scorer.tenants())

    def tenants(self) -> List[str]:
        """Registered tenant names, sorted."""
        return self.scorer.tenants()

    # ------------------------------------------------------------------
    # Batcher callbacks
    # ------------------------------------------------------------------
    def _merge_result(self, request: PendingWindow,
                      step_errors: Dict[int, np.ndarray]) -> None:
        self.scorer.merge(request.tenant, request.start, step_errors)
        # Tenants may enter through the router's auto-register path, so the
        # service-side cursors are created lazily.
        self._alarm_cursor.setdefault(request.tenant, 0)
        self._dirty[request.tenant] = True

    def _record_batch(self, result: BatchResult) -> None:
        points = result.num_windows * self.scorer.window_size
        self.metrics.record_batch(result.num_windows, points, result.seconds,
                                  result.reason)

    def _sync_gauges(self) -> None:
        self.metrics.events_ingested = self.router.events_ingested
        self.metrics.points_evicted = self.router.points_evicted
        self.metrics.backpressure_events = self.batcher.stats.backpressure_events
        self.metrics.queue_depth = self.batcher.queue_depth

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------
    def ingest(self, tenant: str, values: np.ndarray) -> List[Alarm]:
        """Push one sample (or a contiguous block) from one tenant.

        Completed windows are queued for micro-batched scoring; any flush
        triggered along the way (size or backpressure) may produce fresh
        alarms, which are returned.
        """
        if tenant not in self._alarm_cursor:
            self.register_tenant(tenant)
        self.router.ingest_points(tenant, values)
        self.batcher.maybe_flush()
        self._sync_gauges()
        return self.collect_alarms()

    def ingest_event(self, event: TelemetryEvent) -> List[Alarm]:
        """Push one :class:`~repro.serving.router.TelemetryEvent` (see :meth:`ingest`)."""
        return self.ingest(event.tenant, np.atleast_2d(event.values))

    # ------------------------------------------------------------------
    # Poll-driven progress
    # ------------------------------------------------------------------
    def pump(self) -> List[Alarm]:
        """Advance time-based flushing; call periodically when ingest is idle."""
        self.batcher.maybe_flush()
        self._sync_gauges()
        return self.collect_alarms()

    def drain(self) -> List[Alarm]:
        """Flush every queued window and score all anchored tails (shutdown)."""
        self.batcher.flush(reason="forced")
        # Score partial tails directly so the last points of each stream get
        # labels even when they never filled a window.  Anchored tails mostly
        # re-score points already counted, so only the newly covered span is
        # added to the throughput counters, and no synthetic latency sample
        # is recorded.
        for tenant in self.scorer.tenants():
            before = self.scorer.scored_until(tenant)
            scored = self.scorer.score_pending(tenant, anchor_tail=True)
            if scored:
                new_points = self.scorer.scored_until(tenant) - before
                self.metrics.record_drain(scored, new_points)
                self._dirty[tenant] = True
        self._sync_gauges()
        return self.collect_alarms()

    # ------------------------------------------------------------------
    # Alarms
    # ------------------------------------------------------------------
    def collect_alarms(self) -> List[Alarm]:
        """Fresh alarms from every tenant whose scores changed since last check.

        Each fresh span is also pushed through the analytics layer: scores
        and labels land in the per-tenant score store, episodes advance, and
        every configured alert policy is evaluated incrementally (events are
        queued on ``self.analytics`` — see :meth:`drain_alert_events`).
        """
        scan_started = self.metrics.clock()
        alarms: List[Alarm] = []
        for tenant, dirty in list(self._dirty.items()):
            if not dirty:
                continue
            self._dirty[tenant] = False
            view = self.scorer.decide(tenant)
            cursor = max(self._alarm_cursor[tenant], view.start)
            start, labels, scores = view.slice_from(cursor)
            for offset in np.flatnonzero(labels):
                alarms.append(Alarm(tenant=tenant, index=start + int(offset),
                                    score=float(scores[offset])))
            self._alarm_cursor[tenant] = view.end
            if labels.shape[0]:
                # A span evicted before evaluation leaves a hole; the store
                # skips it so its watermark stays aligned with the cursor.
                self.analytics.store.skip_to(tenant, start)
                for event in self.analytics.observe_block(
                        tenant, start, scores, labels):
                    self.metrics.record_alert(event)
        self.metrics.alarms_raised += len(alarms)
        self.metrics.record_alarm_scan(self.metrics.clock() - scan_started)
        return alarms

    # ------------------------------------------------------------------
    # Analytics
    # ------------------------------------------------------------------
    def drain_alert_events(self) -> List["AlertEvent"]:
        """Alert-policy events queued since the last drain (stream order)."""
        return self.analytics.drain_events()

    def tenant_view(self, tenant: str) -> ScoreView:
        """Current labels/scores over one tenant's retained evaluation buffer."""
        return self.scorer.decide(tenant)

    # ------------------------------------------------------------------
    # Online adaptation
    # ------------------------------------------------------------------
    def hot_swap(self, detector: ImDiffusionDetector) -> int:
        """Swap the serving model's weights in place, without a restart.

        Delegates to :meth:`IncrementalScorer.swap_detector`: weights and
        scaler statistics are copied into the live arrays and, under
        ``score_workers > 1``, re-published to the shared-memory parameter
        block — the generation counter bump makes every scoring worker pick
        the new weights up on its next task.  Tenant state, score caches and
        the scoring random stream are untouched.  Returns the new parameter
        generation (0 when scoring in-process) and counts the transition in
        :attr:`metrics`.
        """
        generation = self.scorer.swap_detector(detector)
        self.metrics.record_hot_swap()
        return generation

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the scorer's inference resources; idempotent.

        With ``score_workers > 1`` this shuts the scoring-worker pool down
        and unlinks the shared-memory parameter block.  Queued windows are
        NOT scored — call :meth:`drain` first if their labels matter.
        """
        self.scorer.close()

    def __enter__(self) -> "DetectorService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
