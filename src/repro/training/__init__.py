"""Unified training engine: Trainer + callbacks + vectorized window loading.

This package is the third subsystem of the reproduction (after the serving
layer and the grad-free inference engine): one reusable gradient-descent
loop for the ImDiffusion denoiser and all nine trainable baselines.

* :class:`WindowLoader` — vectorized shuffled mini-batches over pre-cut
  window arrays (single fancy-index gather per batch, RNG-identical to the
  legacy hand-rolled loops),
* :func:`split_windows` — deterministic held-out validation split over the
  same aligned arrays (one permutation draw; none at fraction 0),
* :class:`Trainer` — the epoch/batch loop (loss, backward, gradient clip,
  optimizer step) with per-epoch held-out validation (``validate_fn``) and
  mid-run checkpoint/resume,
* callbacks — :class:`LossHistory`, :class:`EarlyStopping`,
  :class:`LRSchedule` (``StepLR``/``CosineLR``), :class:`Checkpoint`,
  :class:`LambdaCallback`.  Early stopping and best snapshots both track
  :func:`monitored_loss` — the held-out loss whenever validation runs,
* :class:`ParallelTrainer` — data-parallel execution of the same loop:
  batches are sharded across spawned gradient workers through the
  :class:`GradientReducer` seam, and the parent averages shard gradients
  before the single optimizer step (bit-identical to :class:`Trainer` at
  ``num_workers=1``).

Quickstart::

    from repro.nn import Adam
    from repro.training import EarlyStopping, Trainer, WindowLoader

    loader = WindowLoader(windows, batch_size=16, rng=rng)
    trainer = Trainer(model.parameters(), Adam(model.parameters(), lr=1e-3),
                      lambda batch, state: loss_of(batch.data),
                      grad_clip=5.0, callbacks=[EarlyStopping(patience=3)])
    result = trainer.fit(loader, epochs=50)
"""

from .callbacks import (
    Callback,
    Checkpoint,
    EarlyStopping,
    LambdaCallback,
    LossHistory,
    LRSchedule,
    monitored_loss,
)
from .loader import (
    VALIDATION_SEED_OFFSET,
    VALIDATION_SPLITS,
    Batch,
    WindowLoader,
    split_windows,
)
from .parallel import (
    AdversarialMethodLossSpec,
    MethodLossSpec,
    MultiprocessReducer,
    ParallelLossSpec,
    ParallelTrainer,
    SpecReducer,
)
from .trainer import GradientReducer, SerialReducer, Trainer, TrainResult, TrainState
from .variance import antithetic_loss, crn_validation_rng

__all__ = [
    "Batch",
    "WindowLoader",
    "split_windows",
    "VALIDATION_SEED_OFFSET",
    "VALIDATION_SPLITS",
    "Trainer",
    "TrainResult",
    "TrainState",
    "GradientReducer",
    "SerialReducer",
    "ParallelLossSpec",
    "MethodLossSpec",
    "AdversarialMethodLossSpec",
    "SpecReducer",
    "MultiprocessReducer",
    "ParallelTrainer",
    "Callback",
    "LossHistory",
    "EarlyStopping",
    "LRSchedule",
    "Checkpoint",
    "LambdaCallback",
    "monitored_loss",
    "antithetic_loss",
    "crn_validation_rng",
]
