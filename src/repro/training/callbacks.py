"""Callback protocol and stock callbacks for the training engine.

A callback observes the :class:`~repro.training.Trainer` loop through four
hooks — ``on_train_start``, ``on_epoch_start``, ``on_batch_end``,
``on_epoch_end`` (plus ``on_train_end``) — and may request a stop by setting
``state.stop_requested``.  The stock callbacks cover the needs of every
detector in the repository:

* :class:`LossHistory` — per-epoch (and optionally per-batch) loss curve,
* :class:`EarlyStopping` — patience on the train or a held-out loss, with
  best-weight restoration,
* :class:`LRSchedule` — drives a ``StepLR`` / ``CosineLR`` schedule once per
  epoch,
* :class:`Checkpoint` — periodic and best-loss snapshots through
  :mod:`repro.nn.serialization`, resumable mid-run,
* :class:`LambdaCallback` — ad-hoc hooks without a subclass (used e.g. by
  GDN to rebuild its sensor graph at every epoch start).

Callbacks that carry state across a checkpoint/resume boundary implement
``state_dict()`` / ``load_state_dict()``; the trainer aggregates them into
its own checkpoint payload.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

import numpy as np

from ..nn.serialization import atomic_save_checkpoint

__all__ = ["Callback", "LossHistory", "EarlyStopping", "LRSchedule",
           "Checkpoint", "LambdaCallback", "monitored_loss"]


def monitored_loss(state) -> float:
    """The loss the stopping/best-snapshot logic should track for this epoch.

    The held-out validation loss of the epoch just completed when the trainer
    ran a ``validate_fn`` (``state.val_losses`` has one entry per finished
    epoch), the mean training loss otherwise.  Centralised so
    :class:`EarlyStopping` and :class:`Checkpoint.save_best` can never
    disagree about which metric "best" means.
    """
    if state.val_losses and len(state.val_losses) == state.epoch:
        return float(state.val_losses[-1])
    return float(state.epoch_losses[-1])


class Callback:
    """Base class: every hook is a no-op, override what you need."""

    def on_train_start(self, trainer, state) -> None:
        pass

    def on_epoch_start(self, trainer, state) -> None:
        pass

    def on_batch_end(self, trainer, state) -> None:
        pass

    def on_epoch_end(self, trainer, state) -> None:
        pass

    def on_train_end(self, trainer, state) -> None:
        pass

    # Optional persistence across checkpoint/resume; None means stateless.
    def state_dict(self) -> Optional[dict]:
        return None

    def load_state_dict(self, state: dict) -> None:
        pass

    # Optional *array* persistence: state too large for the JSON metadata
    # (e.g. EarlyStopping's best-epoch weights) rides in the checkpoint's
    # array payload instead, namespaced by the trainer per callback index.
    def state_arrays(self) -> Dict[str, np.ndarray]:
        return {}

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        pass


class LambdaCallback(Callback):
    """Wrap plain functions as a callback (each receives ``(trainer, state)``)."""

    def __init__(self,
                 on_train_start: Optional[Callable] = None,
                 on_epoch_start: Optional[Callable] = None,
                 on_batch_end: Optional[Callable] = None,
                 on_epoch_end: Optional[Callable] = None,
                 on_train_end: Optional[Callable] = None) -> None:
        self._train_start = on_train_start
        self._epoch_start = on_epoch_start
        self._batch_end = on_batch_end
        self._epoch_end = on_epoch_end
        self._train_end = on_train_end

    def on_train_start(self, trainer, state) -> None:
        if self._train_start is not None:
            self._train_start(trainer, state)

    def on_epoch_start(self, trainer, state) -> None:
        if self._epoch_start is not None:
            self._epoch_start(trainer, state)

    def on_batch_end(self, trainer, state) -> None:
        if self._batch_end is not None:
            self._batch_end(trainer, state)

    def on_epoch_end(self, trainer, state) -> None:
        if self._epoch_end is not None:
            self._epoch_end(trainer, state)

    def on_train_end(self, trainer, state) -> None:
        if self._train_end is not None:
            self._train_end(trainer, state)


class LossHistory(Callback):
    """Record the loss curve: per-epoch means and optionally every batch."""

    def __init__(self, record_batches: bool = False) -> None:
        self.record_batches = record_batches
        self.epoch_losses: List[float] = []
        self.batch_losses: List[float] = []

    def on_batch_end(self, trainer, state) -> None:
        if self.record_batches:
            self.batch_losses.append(state.last_loss)

    def on_epoch_end(self, trainer, state) -> None:
        self.epoch_losses.append(state.epoch_losses[-1])

    def state_dict(self) -> dict:
        return {"epoch_losses": list(self.epoch_losses),
                "batch_losses": list(self.batch_losses)}

    def load_state_dict(self, state: dict) -> None:
        self.epoch_losses = [float(v) for v in state.get("epoch_losses", [])]
        self.batch_losses = [float(v) for v in state.get("batch_losses", [])]


class EarlyStopping(Callback):
    """Stop training when the monitored loss stops improving.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving epochs tolerated before the stop
        is requested.
    min_delta:
        Minimum decrease of the monitored value that counts as improvement.
    restore_best:
        On train end, copy the parameters of the best epoch back into the
        model (only when a later epoch was worse).
    monitor:
        ``None`` monitors :func:`monitored_loss` — the held-out validation
        loss whenever the trainer evaluates a ``validate_fn``, the mean
        training loss of the epoch otherwise.  Pass a callable
        ``(trainer, state) -> float`` to monitor something else entirely.
    """

    def __init__(self, patience: int = 3, min_delta: float = 0.0,
                 restore_best: bool = True,
                 monitor: Optional[Callable] = None) -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.patience = patience
        self.min_delta = float(min_delta)
        self.restore_best = restore_best
        self.monitor = monitor
        self.best_value = float("inf")
        self.best_epoch: Optional[int] = None
        self.wait = 0
        self._best_params: Optional[List[np.ndarray]] = None

    def on_epoch_end(self, trainer, state) -> None:
        if self.monitor is not None:
            value = float(self.monitor(trainer, state))
        else:
            value = monitored_loss(state)
        if value < self.best_value - self.min_delta:
            self.best_value = value
            self.best_epoch = state.epoch - 1  # epoch just completed
            self.wait = 0
            if self.restore_best:
                self._best_params = [np.asarray(p.data).copy()
                                     for p in trainer.parameters]
        else:
            self.wait += 1
            if self.wait >= self.patience:
                state.stop_requested = True
                state.stop_reason = (
                    f"early stop: no improvement for {self.patience} epochs "
                    f"(best {self.best_value:.6f} at epoch {self.best_epoch})"
                )

    def on_train_end(self, trainer, state) -> None:
        last_epoch = state.epoch - 1
        if (self.restore_best and self._best_params is not None
                and self.best_epoch != last_epoch):
            for p, best in zip(trainer.parameters, self._best_params):
                p.data = best.copy()

    def state_dict(self) -> dict:
        return {"best_value": self.best_value, "best_epoch": self.best_epoch,
                "wait": self.wait}

    def load_state_dict(self, state: dict) -> None:
        self.best_value = float(state["best_value"])
        self.best_epoch = state.get("best_epoch")
        self.wait = int(state["wait"])

    # The best-epoch weights ride in the checkpoint's array payload: without
    # them, a resumed run that never improves again would finish with its
    # last-epoch weights instead of the best ones.
    def state_arrays(self) -> Dict[str, np.ndarray]:
        if self._best_params is None:
            return {}
        return {f"best.{index}": p for index, p in enumerate(self._best_params)}

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        if not arrays:
            self._best_params = None
            return
        self._best_params = [
            np.asarray(arrays[f"best.{index}"], dtype=np.float64).copy()
            for index in range(len(arrays))
        ]


class LRSchedule(Callback):
    """Advance a learning-rate schedule (``StepLR``/``CosineLR``) each epoch."""

    def __init__(self, schedule) -> None:
        self.schedule = schedule

    def on_epoch_end(self, trainer, state) -> None:
        self.schedule.step()

    def state_dict(self) -> Optional[dict]:
        if hasattr(self.schedule, "state_dict"):
            return self.schedule.state_dict()
        return None

    def load_state_dict(self, state: dict) -> None:
        if hasattr(self.schedule, "load_state_dict"):
            self.schedule.load_state_dict(state)


class Checkpoint(Callback):
    """Write resumable training snapshots through :mod:`repro.nn.serialization`.

    Parameters
    ----------
    path:
        Destination ``.npz`` file of the periodic snapshot; it is atomically
        replaced every ``every`` epochs and at train end.
    every:
        Snapshot period in epochs.
    save_best:
        Additionally keep the best-monitored-loss snapshot under
        ``<path stem>.best.npz``.  "Best" means :func:`monitored_loss`: the
        held-out validation loss when the trainer evaluates one, the epoch
        train loss otherwise — always the same metric early stopping tracks.
    extra_metadata:
        Extra JSON-serialisable entries merged into every snapshot's
        metadata (e.g. the CLI records the detector config and dataset so
        ``repro train --resume`` can rebuild the exact run).  Keys must not
        collide with the trainer's own state fields.

    A snapshot holds the full trainer state — parameters, optimizer slots,
    RNG state, loss history and callback states — so
    :meth:`repro.training.Trainer.load_state_dict` resumes mid-run with
    bit-identical continuation (see ``tests/test_training_engine.py``).
    """

    def __init__(self, path: str, every: int = 1, save_best: bool = False,
                 extra_metadata: Optional[dict] = None) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        self.path = path
        self.every = every
        self.save_best = save_best
        self.extra_metadata = dict(extra_metadata or {})
        self.best_value = float("inf")
        self.last_saved_epoch: Optional[int] = None

    @property
    def best_path(self) -> str:
        stem = self.path
        for suffix in (".npz",):
            if stem.endswith(suffix):
                stem = stem[: -len(suffix)]
        return stem + ".best.npz"

    def _write(self, payload, path: str) -> None:
        arrays, metadata = payload
        if self.extra_metadata:
            collisions = set(self.extra_metadata) & set(metadata)
            if collisions:
                raise ValueError(
                    f"extra_metadata keys collide with trainer state: {sorted(collisions)}"
                )
            metadata = {**metadata, **self.extra_metadata}
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        atomic_save_checkpoint(path, arrays, metadata)

    def on_epoch_end(self, trainer, state) -> None:
        monitored = monitored_loss(state)
        periodic = state.epoch % self.every == 0
        best = self.save_best and monitored < self.best_value
        if not (periodic or best):
            return
        payload = trainer.state_dict()  # serialized once for both targets
        if periodic:
            self._write(payload, self.path)
            self.last_saved_epoch = state.epoch
        if best:
            self.best_value = monitored
            self._write(payload, self.best_path)

    def on_train_end(self, trainer, state) -> None:
        # Always rewrite: an earlier callback (EarlyStopping runs before this
        # one in both the detector and baseline wiring) may have restored the
        # best weights after the last periodic save, so the epoch number
        # alone cannot prove the snapshot on disk is current.
        self._write(trainer.state_dict(), self.path)
        self.last_saved_epoch = state.epoch

    def state_dict(self) -> dict:
        return {"best_value": self.best_value,
                "last_saved_epoch": self.last_saved_epoch}

    def load_state_dict(self, state: dict) -> None:
        self.best_value = float(state["best_value"])
        saved = state.get("last_saved_epoch")
        self.last_saved_epoch = int(saved) if saved is not None else None
