"""Callback protocol and stock callbacks for the training engine.

A callback observes the :class:`~repro.training.Trainer` loop through four
hooks — ``on_train_start``, ``on_epoch_start``, ``on_batch_end``,
``on_epoch_end`` (plus ``on_train_end``) — and may request a stop by setting
``state.stop_requested``.  The stock callbacks cover the needs of every
detector in the repository:

* :class:`LossHistory` — per-epoch (and optionally per-batch) loss curve,
* :class:`EarlyStopping` — patience on the train or a held-out loss, with
  best-weight restoration,
* :class:`LRSchedule` — drives a ``StepLR`` / ``CosineLR`` schedule once per
  epoch,
* :class:`Checkpoint` — periodic and best-loss snapshots through
  :mod:`repro.nn.serialization`, resumable mid-run,
* :class:`LambdaCallback` — ad-hoc hooks without a subclass (used e.g. by
  GDN to rebuild its sensor graph at every epoch start).

Callbacks that carry state across a checkpoint/resume boundary implement
``state_dict()`` / ``load_state_dict()``; the trainer aggregates them into
its own checkpoint payload.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional

import numpy as np

from ..nn.serialization import atomic_save_checkpoint

__all__ = ["Callback", "LossHistory", "EarlyStopping", "LRSchedule",
           "Checkpoint", "LambdaCallback"]


class Callback:
    """Base class: every hook is a no-op, override what you need."""

    def on_train_start(self, trainer, state) -> None:
        pass

    def on_epoch_start(self, trainer, state) -> None:
        pass

    def on_batch_end(self, trainer, state) -> None:
        pass

    def on_epoch_end(self, trainer, state) -> None:
        pass

    def on_train_end(self, trainer, state) -> None:
        pass

    # Optional persistence across checkpoint/resume; None means stateless.
    def state_dict(self) -> Optional[dict]:
        return None

    def load_state_dict(self, state: dict) -> None:
        pass


class LambdaCallback(Callback):
    """Wrap plain functions as a callback (each receives ``(trainer, state)``)."""

    def __init__(self,
                 on_train_start: Optional[Callable] = None,
                 on_epoch_start: Optional[Callable] = None,
                 on_batch_end: Optional[Callable] = None,
                 on_epoch_end: Optional[Callable] = None,
                 on_train_end: Optional[Callable] = None) -> None:
        self._train_start = on_train_start
        self._epoch_start = on_epoch_start
        self._batch_end = on_batch_end
        self._epoch_end = on_epoch_end
        self._train_end = on_train_end

    def on_train_start(self, trainer, state) -> None:
        if self._train_start is not None:
            self._train_start(trainer, state)

    def on_epoch_start(self, trainer, state) -> None:
        if self._epoch_start is not None:
            self._epoch_start(trainer, state)

    def on_batch_end(self, trainer, state) -> None:
        if self._batch_end is not None:
            self._batch_end(trainer, state)

    def on_epoch_end(self, trainer, state) -> None:
        if self._epoch_end is not None:
            self._epoch_end(trainer, state)

    def on_train_end(self, trainer, state) -> None:
        if self._train_end is not None:
            self._train_end(trainer, state)


class LossHistory(Callback):
    """Record the loss curve: per-epoch means and optionally every batch."""

    def __init__(self, record_batches: bool = False) -> None:
        self.record_batches = record_batches
        self.epoch_losses: List[float] = []
        self.batch_losses: List[float] = []

    def on_batch_end(self, trainer, state) -> None:
        if self.record_batches:
            self.batch_losses.append(state.last_loss)

    def on_epoch_end(self, trainer, state) -> None:
        self.epoch_losses.append(state.epoch_losses[-1])

    def state_dict(self) -> dict:
        return {"epoch_losses": list(self.epoch_losses),
                "batch_losses": list(self.batch_losses)}

    def load_state_dict(self, state: dict) -> None:
        self.epoch_losses = [float(v) for v in state.get("epoch_losses", [])]
        self.batch_losses = [float(v) for v in state.get("batch_losses", [])]


class EarlyStopping(Callback):
    """Stop training when the monitored loss stops improving.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving epochs tolerated before the stop
        is requested.
    min_delta:
        Minimum decrease of the monitored value that counts as improvement.
    restore_best:
        On train end, copy the parameters of the best epoch back into the
        model (only when a later epoch was worse).
    monitor:
        ``None`` monitors the mean training loss of the epoch; otherwise a
        callable ``(trainer, state) -> float`` evaluated at every epoch end
        — e.g. a closure computing a held-out validation loss.
    """

    def __init__(self, patience: int = 3, min_delta: float = 0.0,
                 restore_best: bool = True,
                 monitor: Optional[Callable] = None) -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.patience = patience
        self.min_delta = float(min_delta)
        self.restore_best = restore_best
        self.monitor = monitor
        self.best_value = float("inf")
        self.best_epoch: Optional[int] = None
        self.wait = 0
        self._best_params: Optional[List[np.ndarray]] = None

    def on_epoch_end(self, trainer, state) -> None:
        if self.monitor is not None:
            value = float(self.monitor(trainer, state))
        else:
            value = state.epoch_losses[-1]
        if value < self.best_value - self.min_delta:
            self.best_value = value
            self.best_epoch = state.epoch - 1  # epoch just completed
            self.wait = 0
            if self.restore_best:
                self._best_params = [np.asarray(p.data).copy()
                                     for p in trainer.parameters]
        else:
            self.wait += 1
            if self.wait >= self.patience:
                state.stop_requested = True
                state.stop_reason = (
                    f"early stop: no improvement for {self.patience} epochs "
                    f"(best {self.best_value:.6f} at epoch {self.best_epoch})"
                )

    def on_train_end(self, trainer, state) -> None:
        last_epoch = state.epoch - 1
        if (self.restore_best and self._best_params is not None
                and self.best_epoch != last_epoch):
            for p, best in zip(trainer.parameters, self._best_params):
                p.data = best.copy()

    def state_dict(self) -> dict:
        # Best weights are deliberately not persisted (they can be large);
        # after a resume the best-so-far snapshot is re-captured on the next
        # improving epoch.
        return {"best_value": self.best_value, "best_epoch": self.best_epoch,
                "wait": self.wait}

    def load_state_dict(self, state: dict) -> None:
        self.best_value = float(state["best_value"])
        self.best_epoch = state.get("best_epoch")
        self.wait = int(state["wait"])


class LRSchedule(Callback):
    """Advance a learning-rate schedule (``StepLR``/``CosineLR``) each epoch."""

    def __init__(self, schedule) -> None:
        self.schedule = schedule

    def on_epoch_end(self, trainer, state) -> None:
        self.schedule.step()

    def state_dict(self) -> Optional[dict]:
        if hasattr(self.schedule, "state_dict"):
            return self.schedule.state_dict()
        return None

    def load_state_dict(self, state: dict) -> None:
        if hasattr(self.schedule, "load_state_dict"):
            self.schedule.load_state_dict(state)


class Checkpoint(Callback):
    """Write resumable training snapshots through :mod:`repro.nn.serialization`.

    Parameters
    ----------
    path:
        Destination ``.npz`` file of the periodic snapshot; it is atomically
        replaced every ``every`` epochs and at train end.
    every:
        Snapshot period in epochs.
    save_best:
        Additionally keep the lowest-epoch-loss snapshot under
        ``<path stem>.best.npz``.

    A snapshot holds the full trainer state — parameters, optimizer slots,
    RNG state, loss history and callback states — so
    :meth:`repro.training.Trainer.load_state_dict` resumes mid-run with
    bit-identical continuation (see ``tests/test_training_engine.py``).
    """

    def __init__(self, path: str, every: int = 1, save_best: bool = False) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        self.path = path
        self.every = every
        self.save_best = save_best
        self.best_value = float("inf")
        self.last_saved_epoch: Optional[int] = None

    @property
    def best_path(self) -> str:
        stem = self.path
        for suffix in (".npz",):
            if stem.endswith(suffix):
                stem = stem[: -len(suffix)]
        return stem + ".best.npz"

    def _write(self, payload, path: str) -> None:
        arrays, metadata = payload
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        atomic_save_checkpoint(path, arrays, metadata)

    def on_epoch_end(self, trainer, state) -> None:
        periodic = state.epoch % self.every == 0
        best = self.save_best and state.epoch_losses[-1] < self.best_value
        if not (periodic or best):
            return
        payload = trainer.state_dict()  # serialized once for both targets
        if periodic:
            self._write(payload, self.path)
            self.last_saved_epoch = state.epoch
        if best:
            self.best_value = state.epoch_losses[-1]
            self._write(payload, self.best_path)

    def on_train_end(self, trainer, state) -> None:
        # Always rewrite: an earlier callback (EarlyStopping runs before this
        # one in both the detector and baseline wiring) may have restored the
        # best weights after the last periodic save, so the epoch number
        # alone cannot prove the snapshot on disk is current.
        self._write(trainer.state_dict(), self.path)
        self.last_saved_epoch = state.epoch

    def state_dict(self) -> dict:
        return {"best_value": self.best_value}

    def load_state_dict(self, state: dict) -> None:
        self.best_value = float(state["best_value"])
