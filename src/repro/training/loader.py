"""Vectorized batch loading over pre-cut window arrays.

Every training loop in the repository consumes the same shape of data: one or
more aligned arrays (windows, forecast targets, flattened features, ...) that
are shuffled once per epoch and walked in contiguous batches.  The seed code
re-implemented that walk ten times with hand-rolled ``rng.permutation`` +
``range(0, n, batch_size)`` loops; :class:`WindowLoader` centralises it and
gathers each batch with a single vectorized fancy-index instead of per-item
Python loops.

The loader is deliberately RNG-transparent: with ``shuffle=True`` it draws
exactly one ``rng.permutation(num_samples)`` per epoch, the same single draw
the legacy loops made, so migrating a loop onto the loader preserves the
random stream bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Batch", "WindowLoader", "split_windows", "VALIDATION_SEED_OFFSET",
           "VALIDATION_SPLITS"]

#: Offset added to a detector's seed to derive the dedicated validation
#: generator.  Validation always re-seeds with ``seed + offset``, so the
#: held-out loss uses the same noise at every epoch (values are comparable
#: across epochs) and never consumes the training random stream.
VALIDATION_SEED_OFFSET = 7919


#: Valid ``split`` strategies of :func:`split_windows`.
VALIDATION_SPLITS = ("random", "tail")


def split_windows(arrays: Sequence[np.ndarray], validation_fraction: float,
                  rng: np.random.Generator, split: str = "random"
                  ) -> Tuple[Tuple[np.ndarray, ...], Optional[Tuple[np.ndarray, ...]]]:
    """Deterministically split aligned sample arrays into train/held-out parts.

    With ``split="random"`` (the default) draws exactly one
    ``rng.permutation`` (and nothing when ``validation_fraction`` is 0,
    keeping the random stream untouched so a validation-free run stays
    bit-identical to the legacy loops), assigns the first
    ``round(n * validation_fraction)`` permuted samples — clamped to
    ``[1, n - 1]`` — to the held-out side, and returns both sides with their
    original sample order preserved.

    With ``split="tail"`` the held-out side is the *last* ``round(n *
    validation_fraction)`` samples in array order — for sequentially cut
    windows, the end of the series — which mirrors production drift
    monitoring: the model is validated on the most recent data it never
    trained on.  The tail split never consumes ``rng``, so switching a
    validation-free run to a tail-validated one leaves the training random
    stream untouched.

    Returns ``(train_arrays, val_arrays)``; ``val_arrays`` is ``None`` when
    the fraction is 0 or there are too few samples to hold any out.
    """
    if not 0.0 <= validation_fraction < 1.0:
        raise ValueError("validation_fraction must lie in [0, 1)")
    if split not in VALIDATION_SPLITS:
        raise ValueError(f"split must be one of {VALIDATION_SPLITS}")
    arrays = tuple(np.asarray(a) for a in arrays)
    if not arrays:
        raise ValueError("split_windows needs at least one array")
    num = arrays[0].shape[0]
    for array in arrays[1:]:
        if array.shape[0] != num:
            raise ValueError(
                f"all arrays must share the sample dimension: {num} vs {array.shape[0]}"
            )
    if validation_fraction == 0.0 or num < 2:
        return arrays, None
    num_val = int(np.clip(round(num * validation_fraction), 1, num - 1))
    if split == "tail":
        return (tuple(array[:num - num_val] for array in arrays),
                tuple(array[num - num_val:] for array in arrays))
    order = rng.permutation(num)
    val_idx = np.sort(order[:num_val])
    train_idx = np.sort(order[num_val:])
    return (tuple(array[train_idx] for array in arrays),
            tuple(array[val_idx] for array in arrays))


@dataclass
class Batch:
    """One mini-batch: the gathered array slices plus bookkeeping indices."""

    arrays: Tuple[np.ndarray, ...]
    indices: np.ndarray

    @property
    def data(self) -> np.ndarray:
        """The first (often only) array of the batch."""
        return self.arrays[0]

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    def __iter__(self):
        """Unpack like a tuple: ``inputs, targets = batch``."""
        return iter(self.arrays)


class WindowLoader:
    """Shuffled mini-batches over aligned sample arrays.

    Parameters
    ----------
    *arrays:
        One or more arrays whose leading dimension indexes samples; all must
        agree on that dimension.  Typical uses: ``(windows,)`` for
        reconstruction models, ``(histories, targets)`` for forecasters.
    batch_size:
        Samples per batch; the final batch may be smaller.
    rng:
        Generator used for the per-epoch shuffle.  Pass the owning detector's
        generator to keep its random stream identical to a hand-rolled loop.
    shuffle:
        Draw a fresh permutation at the start of every epoch (every
        ``__iter__`` call).  When False, batches walk the arrays in order.
    """

    def __init__(self, *arrays: np.ndarray, batch_size: int,
                 rng: Optional[np.random.Generator] = None,
                 shuffle: bool = True) -> None:
        if not arrays:
            raise ValueError("WindowLoader needs at least one array")
        self.arrays = tuple(np.asarray(a) for a in arrays)
        num = self.arrays[0].shape[0]
        for array in self.arrays[1:]:
            if array.shape[0] != num:
                raise ValueError(
                    f"all arrays must share the sample dimension: {num} vs {array.shape[0]}"
                )
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if shuffle and rng is None:
            raise ValueError("shuffle=True requires an rng")
        self.num_samples = num
        self.batch_size = int(batch_size)
        self.rng = rng
        self.shuffle = shuffle

    def __len__(self) -> int:
        """Batches per epoch."""
        return -(-self.num_samples // self.batch_size)

    def __iter__(self) -> Iterator[Batch]:
        if self.shuffle:
            order = self.rng.permutation(self.num_samples)
        else:
            order = np.arange(self.num_samples)
        for start in range(0, self.num_samples, self.batch_size):
            indices = order[start:start + self.batch_size]
            yield Batch(
                arrays=tuple(array[indices] for array in self.arrays),
                indices=indices,
            )
