"""Data-parallel training: sharded multiprocess gradient workers.

:class:`ParallelTrainer` scales the shared :class:`~repro.training.Trainer`
across CPU cores without changing its semantics: every mini-batch is split
into contiguous per-sample shards, ``num_workers`` spawned processes each run
one forward/backward over their shard, and the parent weight-averages the
shard gradients before taking the *single* optimizer step the serial loop
would have taken.  The decomposition is exact — for a loss of the form
``sum(errors) / weight`` the full-batch gradient equals
``sum(w_i * g_i) / sum(w_i)`` over the shards — so data parallelism is a pure
execution detail:

* the random stream is worker-count invariant: all batch-level randomness is
  drawn **in the parent** (:meth:`ParallelLossSpec.draw`) before sharding,
* callbacks, gradient clipping, checkpointing and resume run in the parent,
  untouched; ``num_workers`` is not part of the checkpoint, so a snapshot can
  be resumed under a different worker count,
* at ``num_workers=1`` no process is spawned and the loop is bit-identical
  to the serial :class:`~repro.training.Trainer` (regression-tested),
* at ``num_workers>1`` runs are bitwise reproducible for a fixed worker
  count and numerically equivalent (up to float summation order) across
  worker counts.

Workers are ``spawn``-started (fork-free), so everything that crosses the
process boundary must be picklable: the :class:`ParallelLossSpec` is shipped
once at pool start-up (module/optimizer transport is provided by
``repro.nn``'s pickle support).  Parameters never cross the pipes at all:
each worker attaches once to a shared-memory parameter block
(:mod:`repro.nn.shm`) that the parent re-publishes before every step — the
same zero-copy transport the sharded inference engine uses — so a step
message carries only the batch shard, its random payload and the block
generation, and per-step serialization no longer scales with model size.
"""

from __future__ import annotations

import traceback
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..inference.pool import WorkerPool, register_cleanup, unregister_cleanup
from ..nn.shm import SharedParameterBlock, SharedParameterSpec, SharedParameterView
from .loader import Batch
from .trainer import GradientReducer, Trainer, TrainState

__all__ = [
    "ParallelLossSpec",
    "MethodLossSpec",
    "SpecReducer",
    "MultiprocessReducer",
    "ParallelTrainer",
]


class ParallelLossSpec:
    """A training loss factored for data-parallel execution.

    The serial engine consumes an opaque closure ``loss_fn(batch, state)``;
    workers cannot, both because closures do not pickle and because any
    randomness drawn *inside* the loss would depend on how the batch was
    sharded.  A spec splits the closure into three picklable parts:

    * :meth:`draw` — every random draw the loss makes for a batch, executed
      in the parent on the trainer's generator *before* sharding.  Returns a
      tuple of arrays whose leading dimension indexes batch samples, so the
      payload shards alongside the batch.  Specs of deterministic losses
      return the default empty tuple.
    * :meth:`compute` — the pure, rng-free loss of one (shard, payload
      shard); runs identically in the parent (``num_workers=1``) and in a
      worker.
    * :meth:`weight` — the shard's weight in the gradient average.  The
      default (shard size) is exact for per-sample mean losses; losses
      normalised by something else (e.g. a masked-region element count)
      override it so ``sum(w_i * g_i) / sum(w_i)`` reproduces the full-batch
      gradient.

    The contract: ``compute(batch, draw(batch, rng, state), state)`` must be
    bit-identical to the serial closure, consuming ``rng`` in the same order.
    """

    def build(self) -> List:
        """Materialise the parameter list on the worker side.

        Called once per worker after the spec is unpickled; must return the
        trainable parameters in exactly the order of the parent trainer's
        parameter list (each step overwrites them with the parent's data).
        """
        raise NotImplementedError

    def draw(self, batch: Batch, rng: Optional[np.random.Generator],
             state: TrainState) -> Tuple[np.ndarray, ...]:
        return ()

    def compute(self, batch: Batch, payload: Tuple[np.ndarray, ...],
                state: TrainState):
        raise NotImplementedError

    def weight(self, batch: Batch, payload: Tuple[np.ndarray, ...]) -> float:
        return float(batch.size)


class MethodLossSpec(ParallelLossSpec):
    """Spec over methods of a picklable owner (the baseline detectors).

    Ships the owning detector to each worker once and resolves the loss and
    parameter-list methods by name, so a baseline opts into data parallelism
    by exposing its loss as a *method* (picklable by reference) instead of a
    local closure.  Only valid for deterministic losses without in-loop side
    effects: the worker-side owner is a replica, so anything the loss mutated
    (discriminator steps, rng draws) would diverge from the parent.
    """

    def __init__(self, owner, loss_method: str,
                 parameters_method: str = "_trainer_parameters") -> None:
        self.owner = owner
        self.loss_method = loss_method
        self.parameters_method = parameters_method

    def build(self) -> List:
        return list(getattr(self.owner, self.parameters_method)())

    def compute(self, batch: Batch, payload: Tuple[np.ndarray, ...],
                state: TrainState):
        return getattr(self.owner, self.loss_method)(batch, state)


class SpecReducer(GradientReducer):
    """In-process execution of a :class:`ParallelLossSpec`.

    The ``num_workers=1`` path: no process is spawned and no arrays are
    copied, so a :class:`ParallelTrainer` with one worker runs the exact
    serial loop — the spec contract then guarantees bit-identity with a
    :class:`~repro.training.Trainer` over the equivalent closure.
    """

    def __init__(self, spec: ParallelLossSpec) -> None:
        self.spec = spec
        self._trainer: Optional[Trainer] = None

    def open(self, trainer: Trainer) -> None:
        self._trainer = trainer

    def accumulate(self, batch: Batch, state: TrainState) -> float:
        payload = self.spec.draw(batch, self._trainer.rng, state)
        loss = self.spec.compute(batch, payload, state)
        loss.backward()
        return float(loss.data)


def _shard_bounds(num_samples: int, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal ``(start, stop)`` shard bounds; empty shards dropped."""
    base, extra = divmod(num_samples, num_shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        if size == 0:
            break
        bounds.append((start, start + size))
        start += size
    return bounds


def _worker_main(conn, spec: ParallelLossSpec,
                 shm_spec: SharedParameterSpec) -> None:
    """Gradient-worker loop: receive (generation, shard), reply (loss, weight, grads).

    Runs in a spawned subprocess.  The spec and the shared-memory handle
    arrive pickled through the process arguments; the worker rebuilds its
    replica once and swaps the parameters to zero-copy views of the parent's
    block, so resume/early-stop restores in the parent propagate through the
    next ``publish`` without any per-step parameter transfer.  Each message
    carries the expected block generation, one batch shard with its
    pre-drawn random payload, and a slim :class:`TrainState`.  Start-up
    failures are remembered and re-raised per step, and per-step exceptions
    ship back as formatted tracebacks, so the parent can re-raise without
    losing pipe lockstep.
    """
    view: Optional[SharedParameterView] = None
    failure: Optional[str] = None
    try:
        parameters = spec.build()
        view = SharedParameterView(shm_spec)
        view.attach_to(parameters)
    except Exception:  # noqa: BLE001 - reported on first step
        failure = traceback.format_exc()
    while True:
        try:
            message = conn.recv()
        except EOFError:  # parent died / closed the pipe
            break
        if message is None:
            break
        generation, shard_arrays, shard_indices, payload, state = message
        try:
            if failure is not None:
                raise RuntimeError(
                    "gradient worker failed to initialise:\n" + failure)
            view.check_generation(generation)
            for parameter in parameters:
                parameter.grad = None
            batch = Batch(arrays=shard_arrays, indices=shard_indices)
            loss = spec.compute(batch, payload, state)
            loss.backward()
            # None marks a parameter the loss did not touch; it must stay
            # None through the reduction, because the optimizers skip
            # None-grad parameters entirely (no moment decay) and the
            # parallel run must match that serial semantic.
            gradients = [parameter.grad for parameter in parameters]
            conn.send(("ok", float(loss.data),
                       float(spec.weight(batch, payload)), gradients))
        except Exception:  # noqa: BLE001 - shipped to the parent verbatim
            conn.send(("error", traceback.format_exc()))
    if view is not None:
        view.close()


class MultiprocessReducer(GradientReducer):
    """Shard each batch across spawned workers and average their gradients.

    The pool lives for the duration of one :meth:`Trainer.fit` call
    (``open``/``close``); per step the parent publishes the current
    parameters to the shared-memory block (one memcpy — workers read them
    through zero-copy views, see :mod:`repro.nn.shm`), scatters contiguous
    shards, and combines the replies in shard order as
    ``sum(w_i * g_i) / sum(w_i)`` — the exact full-batch gradient for every
    spec that honours the :class:`ParallelLossSpec` weight contract.  A
    batch smaller than the pool simply leaves the trailing workers idle for
    that step.

    ``close()`` is idempotent, runs as a context manager (inherited from
    :class:`~repro.training.GradientReducer`) and is additionally registered
    with the atexit cleanup registry while open, so an exception or Ctrl-C
    mid-epoch cannot leak spawned workers or orphaned shared-memory
    segments.
    """

    def __init__(self, spec: ParallelLossSpec, num_workers: int) -> None:
        if num_workers < 2:
            raise ValueError("MultiprocessReducer needs at least 2 workers; "
                             "use SpecReducer for the in-process path")
        self.spec = spec
        self.num_workers = int(num_workers)
        self._trainer: Optional[Trainer] = None
        self._pool: Optional[WorkerPool] = None
        self._block: Optional[SharedParameterBlock] = None

    # ------------------------------------------------------------------
    def open(self, trainer: Trainer) -> None:
        self._trainer = trainer
        if self._pool is not None:
            return
        try:
            self._block = SharedParameterBlock(trainer.parameters)
            self._pool = WorkerPool(
                _worker_main, (self.spec, self._block.spec()),
                self.num_workers, name="gradient-worker")
            self._pool.start()
        except Exception:
            # A partial pool must never survive: reap what did spawn so a
            # retried fit() starts from scratch instead of silently sharding
            # batches across fewer workers than requested.
            self.close()
            raise
        register_cleanup(self)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
        block, self._block = self._block, None
        if block is not None:
            block.close()
        unregister_cleanup(self)

    # ------------------------------------------------------------------
    def _compose_step_message(self, generation: int, batch: Batch,
                              payload: Tuple[np.ndarray, ...],
                              state: TrainState, start: int, stop: int):
        """The per-step pipe message for one shard — parameter-free by design.

        Everything that scales with model size travels through the
        shared-memory block instead; what crosses the pipe is only the block
        generation, the shard's slice of the batch and payload arrays, and a
        slim train state (regression-tested: pickled size is independent of
        the parameter count).
        """
        return (
            generation,
            tuple(array[start:stop] for array in batch.arrays),
            batch.indices[start:stop],
            tuple(array[start:stop] for array in payload),
            state,
        )

    def accumulate(self, batch: Batch, state: TrainState) -> float:
        trainer = self._trainer
        if self._pool is None or self._pool.size != self.num_workers:
            raise RuntimeError(
                f"worker pool holds {0 if self._pool is None else self._pool.size} "
                f"connections but {self.num_workers} were requested; call "
                "open() first"
            )
        connections = self._pool.connections
        payload = self.spec.draw(batch, trainer.rng, state)
        bounds = _shard_bounds(batch.size, self.num_workers)
        generation = self._block.publish(trainer.parameters)
        slim_state = TrainState(epoch=state.epoch, step=state.step,
                                batch=state.batch, last_loss=state.last_loss)
        for (start, stop), conn in zip(bounds, connections):
            conn.send(self._compose_step_message(
                generation, batch, payload, slim_state, start, stop))

        replies = []
        for _, conn in zip(bounds, connections):
            try:
                replies.append(conn.recv())
            except EOFError:
                raise RuntimeError(
                    "a gradient worker died mid-step; the loss spec is "
                    "probably not spawn-safe (it must be picklable and "
                    "rng-free in compute())"
                ) from None
        errors = [reply[1] for reply in replies if reply[0] == "error"]
        if errors:
            raise RuntimeError("gradient worker failed:\n" + "\n".join(errors))

        if len(replies) == 1:
            # Single shard (batch smaller than the pool): the worker's output
            # IS the batch output — no averaging, bitwise identical to a
            # one-worker step.
            _, loss_value, _, gradients = replies[0]
            for parameter, gradient in zip(trainer.parameters, gradients):
                parameter.grad = gradient
            return loss_value

        total_weight = 0.0
        total_loss = 0.0
        totals: List[Optional[np.ndarray]] = [None] * len(trainer.parameters)
        for _, loss_value, weight, gradients in replies:
            total_weight += weight
            total_loss += weight * loss_value
            for index, gradient in enumerate(gradients):
                if gradient is None:
                    continue
                scaled = weight * gradient
                totals[index] = scaled if totals[index] is None \
                    else totals[index] + scaled
        if total_weight <= 0:
            raise RuntimeError("gradient workers reported non-positive total weight")
        # A parameter no shard touched keeps grad=None, exactly as a serial
        # backward would have left it (the optimizers skip such parameters).
        for parameter, total in zip(trainer.parameters, totals):
            parameter.grad = None if total is None else total / total_weight
        return total_loss / total_weight


class ParallelTrainer(Trainer):
    """A :class:`~repro.training.Trainer` whose gradients come from a sharded pool.

    Construction mirrors ``Trainer`` but takes a :class:`ParallelLossSpec`
    instead of a loss closure.  ``num_workers=1`` executes the spec
    in-process (bit-identical to the serial trainer, no subprocess);
    ``num_workers>=2`` spawns that many gradient workers for the duration of
    each :meth:`fit` call.  Checkpoints, callbacks and ``validate_fn`` are
    inherited unchanged — the worker count is an execution detail that never
    enters the snapshot, so runs may be resumed on machines with different
    core counts.
    """

    def __init__(self, parameters: Sequence, optimizer,
                 loss_spec: ParallelLossSpec, *, num_workers: int = 1,
                 grad_clip: Optional[float] = None,
                 callbacks: Sequence = (),
                 rng: Optional[np.random.Generator] = None,
                 validate_fn=None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.loss_spec = loss_spec
        self.num_workers = int(num_workers)
        reducer = (SpecReducer(loss_spec) if num_workers == 1
                   else MultiprocessReducer(loss_spec, num_workers))
        super().__init__(parameters, optimizer, loss_fn=None,
                         grad_clip=grad_clip, callbacks=callbacks, rng=rng,
                         validate_fn=validate_fn, reducer=reducer)
