"""Data-parallel training: sharded multiprocess gradient workers.

:class:`ParallelTrainer` scales the shared :class:`~repro.training.Trainer`
across CPU cores without changing its semantics: every mini-batch is split
into contiguous per-sample shards, ``num_workers`` spawned processes each run
one forward/backward over their shard, and the parent weight-averages the
shard gradients before taking the *single* optimizer step the serial loop
would have taken.  The decomposition is exact — for a loss of the form
``sum(errors) / weight`` the full-batch gradient equals
``sum(w_i * g_i) / sum(w_i)`` over the shards — so data parallelism is a pure
execution detail:

* the random stream is worker-count invariant: all batch-level randomness is
  drawn **in the parent** (:meth:`ParallelLossSpec.draw`) before sharding,
* callbacks, gradient clipping, checkpointing and resume run in the parent,
  untouched; ``num_workers`` is not part of the checkpoint, so a snapshot can
  be resumed under a different worker count,
* at ``num_workers=1`` no process is spawned and the loop is bit-identical
  to the serial :class:`~repro.training.Trainer` (regression-tested),
* at ``num_workers>1`` runs are bitwise reproducible for a fixed worker
  count and numerically equivalent (up to float summation order) across
  worker counts.

Workers are ``spawn``-started (fork-free), so everything that crosses the
process boundary must be picklable: the :class:`ParallelLossSpec` is shipped
once at pool start-up (module/optimizer transport is provided by
``repro.nn``'s pickle support).  Parameters never cross the pipes at all:
each worker attaches once to a shared-memory parameter block
(:mod:`repro.nn.shm`) that the parent re-publishes before every step — the
same zero-copy transport the sharded inference engine uses — so a step
message carries only the batch shard, its random payload and the block
generation, and per-step serialization no longer scales with model size.
"""

from __future__ import annotations

import traceback
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..inference.pool import WorkerPool, register_cleanup, unregister_cleanup
from ..nn.shm import SharedParameterBlock, SharedParameterSpec, SharedParameterView
from .loader import Batch
from .trainer import GradientReducer, Trainer, TrainState

__all__ = [
    "ParallelLossSpec",
    "MethodLossSpec",
    "AdversarialMethodLossSpec",
    "SpecReducer",
    "MultiprocessReducer",
    "ParallelTrainer",
]


class ParallelLossSpec:
    """A training loss factored for data-parallel execution.

    The serial engine consumes an opaque closure ``loss_fn(batch, state)``;
    workers cannot, both because closures do not pickle and because any
    randomness drawn *inside* the loss would depend on how the batch was
    sharded.  A spec splits the closure into three picklable parts:

    * :meth:`draw` — every random draw the loss makes for a batch, executed
      in the parent on the trainer's generator *before* sharding.  Returns a
      tuple of arrays whose leading dimension indexes batch samples, so the
      payload shards alongside the batch.  Specs of deterministic losses
      return the default empty tuple.
    * :meth:`compute` — the pure, rng-free loss of one (shard, payload
      shard); runs identically in the parent (``num_workers=1``) and in a
      worker.
    * :meth:`weight` — the shard's weight in the gradient average.  The
      default (shard size) is exact for per-sample mean losses; losses
      normalised by something else (e.g. a masked-region element count)
      override it so ``sum(w_i * g_i) / sum(w_i)`` reproduces the full-batch
      gradient.

    The contract: ``compute(batch, draw(batch, rng, state), state)`` must be
    bit-identical to the serial closure, consuming ``rng`` in the same order.

    Specs of adversarially trained models additionally set ``has_adversary``
    and implement the adversary hooks (see
    :class:`AdversarialMethodLossSpec`): before each main-loss step the
    reducers run one *adversary round* — compute ``adversary_compute`` over
    the (sharded) batch, reduce the gradients onto the parent's adversary
    parameters with the same weighted average, and take the adversary's
    optimizer step in the parent — reproducing the serial GAN alternation
    (discriminator step inside the loss closure) without worker replicas
    ever stepping a model of their own.
    """

    #: Whether the spec carries a second, adversarially trained model whose
    #: parameters update before every main-loss computation.
    has_adversary: bool = False

    def build(self) -> List:
        """Materialise the parameter list on the worker side.

        Called once per worker after the spec is unpickled; must return the
        trainable parameters in exactly the order of the parent trainer's
        parameter list (each step overwrites them with the parent's data).
        """
        raise NotImplementedError

    def draw(self, batch: Batch, rng: Optional[np.random.Generator],
             state: TrainState) -> Tuple[np.ndarray, ...]:
        return ()

    def compute(self, batch: Batch, payload: Tuple[np.ndarray, ...],
                state: TrainState):
        raise NotImplementedError

    def weight(self, batch: Batch, payload: Tuple[np.ndarray, ...]) -> float:
        return float(batch.size)

    # -- adversary hooks (no-ops unless ``has_adversary``) ---------------
    def build_adversary(self) -> List:
        """Materialise the adversary parameter list on the worker side."""
        return []

    def adversary_parameters(self) -> List:
        """The parent-side adversary parameters (same order as the workers')."""
        return []

    def adversary_compute(self, batch: Batch, payload: Tuple[np.ndarray, ...],
                          state: TrainState):
        raise NotImplementedError

    def adversary_step(self) -> None:
        """Take the adversary's optimizer step in the parent."""
        raise NotImplementedError


class MethodLossSpec(ParallelLossSpec):
    """Spec over methods of a picklable owner (the baseline detectors).

    Ships the owning detector to each worker once and resolves the loss and
    parameter-list methods by name, so a baseline opts into data parallelism
    by exposing its loss as a *method* (picklable by reference) instead of a
    local closure.  The loss must be rng-free and side-effect free in
    ``compute``: the worker-side owner is a replica, so anything the loss
    mutated there would diverge from the parent.  Losses that need
    randomness name a ``draw_method`` — ``draw_method(batch, rng, state)``
    runs in the parent on the trainer's generator and its result is handed
    to the loss as a ``payload`` argument (sharded alongside the batch), so
    the random stream stays worker-count invariant; the loss method then
    takes ``(batch, payload, state)`` instead of ``(batch, state)``.
    """

    def __init__(self, owner, loss_method: str,
                 parameters_method: str = "_trainer_parameters",
                 draw_method: Optional[str] = None) -> None:
        self.owner = owner
        self.loss_method = loss_method
        self.parameters_method = parameters_method
        self.draw_method = draw_method

    def build(self) -> List:
        return list(getattr(self.owner, self.parameters_method)())

    def draw(self, batch: Batch, rng: Optional[np.random.Generator],
             state: TrainState) -> Tuple[np.ndarray, ...]:
        if self.draw_method is None:
            return ()
        return tuple(getattr(self.owner, self.draw_method)(batch, rng, state))

    def compute(self, batch: Batch, payload: Tuple[np.ndarray, ...],
                state: TrainState):
        if self.draw_method is None:
            return getattr(self.owner, self.loss_method)(batch, state)
        return getattr(self.owner, self.loss_method)(batch, payload, state)


class AdversarialMethodLossSpec(MethodLossSpec):
    """Method spec for GAN-style baselines with a parent-stepped adversary.

    The serial GAN closures interleave a discriminator update into the loss
    function; sharded workers cannot replay that (each replica would step a
    private discriminator on its shard and diverge).  This spec factors the
    alternation the same way the main loss is factored: workers compute the
    *gradients* of ``adversary_loss_method`` on their shard, the parent
    weight-averages them onto the real discriminator and steps its optimizer
    (``adversary_optimizer_attr``, an attribute of the owner), and only then
    is the main loss computed against the freshly updated adversary — the
    exact serial ordering.  Both loss methods take ``(batch, payload,
    state)``, sharing one payload so e.g. MAD-GAN's latent draw feeds the
    discriminator and generator phases with the same noise, as the serial
    closure does.
    """

    has_adversary = True

    def __init__(self, owner, loss_method: str, adversary_loss_method: str,
                 parameters_method: str = "_trainer_parameters",
                 adversary_parameters_method: str = "_adversary_parameters",
                 adversary_optimizer_attr: str = "_discriminator_opt",
                 draw_method: Optional[str] = None) -> None:
        super().__init__(owner, loss_method, parameters_method,
                         draw_method=draw_method)
        self.adversary_loss_method = adversary_loss_method
        self.adversary_parameters_method = adversary_parameters_method
        self.adversary_optimizer_attr = adversary_optimizer_attr

    def compute(self, batch: Batch, payload: Tuple[np.ndarray, ...],
                state: TrainState):
        return getattr(self.owner, self.loss_method)(batch, payload, state)

    def build_adversary(self) -> List:
        return list(getattr(self.owner, self.adversary_parameters_method)())

    def adversary_parameters(self) -> List:
        return list(getattr(self.owner, self.adversary_parameters_method)())

    def adversary_compute(self, batch: Batch, payload: Tuple[np.ndarray, ...],
                          state: TrainState):
        return getattr(self.owner, self.adversary_loss_method)(batch, payload, state)

    def adversary_step(self) -> None:
        getattr(self.owner, self.adversary_optimizer_attr).step()


class SpecReducer(GradientReducer):
    """In-process execution of a :class:`ParallelLossSpec`.

    The ``num_workers=1`` path: no process is spawned and no arrays are
    copied, so a :class:`ParallelTrainer` with one worker runs the exact
    serial loop — the spec contract then guarantees bit-identity with a
    :class:`~repro.training.Trainer` over the equivalent closure.
    """

    def __init__(self, spec: ParallelLossSpec) -> None:
        self.spec = spec
        self._trainer: Optional[Trainer] = None

    def open(self, trainer: Trainer) -> None:
        self._trainer = trainer

    def accumulate(self, batch: Batch, state: TrainState) -> float:
        payload = self.spec.draw(batch, self._trainer.rng, state)
        if self.spec.has_adversary:
            # Serial adversary alternation: zero the adversary's grads,
            # backpropagate its loss over the full batch and step its
            # optimizer before the main loss sees it — the exact sequence
            # the legacy GAN closures ran inline.
            for parameter in self.spec.adversary_parameters():
                parameter.grad = None
            adversary_loss = self.spec.adversary_compute(batch, payload, state)
            adversary_loss.backward()
            self.spec.adversary_step()
        loss = self.spec.compute(batch, payload, state)
        loss.backward()
        return float(loss.data)


def _shard_bounds(num_samples: int, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal ``(start, stop)`` shard bounds; empty shards dropped."""
    base, extra = divmod(num_samples, num_shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        if size == 0:
            break
        bounds.append((start, start + size))
        start += size
    return bounds


def _worker_main(conn, spec: ParallelLossSpec,
                 shm_spec: SharedParameterSpec) -> None:
    """Gradient-worker loop: receive (generation, shard), reply (loss, weight, grads).

    Runs in a spawned subprocess.  The spec and the shared-memory handle
    arrive pickled through the process arguments; the worker rebuilds its
    replica once and swaps the parameters to zero-copy views of the parent's
    block, so resume/early-stop restores in the parent propagate through the
    next ``publish`` without any per-step parameter transfer.  Each message
    carries the expected block generation, one batch shard with its
    pre-drawn random payload, and a slim :class:`TrainState`.  Start-up
    failures are remembered and re-raised per step, and per-step exceptions
    ship back as formatted tracebacks, so the parent can re-raise without
    losing pipe lockstep.
    """
    view: Optional[SharedParameterView] = None
    failure: Optional[str] = None
    try:
        parameters = spec.build()
        adversary_parameters = spec.build_adversary() if spec.has_adversary else []
        view = SharedParameterView(shm_spec)
        # The parent's block covers main + adversary parameters in that
        # order; both groups become zero-copy views so each publish refreshes
        # the whole replica at once.
        view.attach_to(parameters + adversary_parameters)
    except Exception:  # noqa: BLE001 - reported on first step
        failure = traceback.format_exc()
    while True:
        try:
            message = conn.recv()
        except EOFError:  # parent died / closed the pipe
            break
        if message is None:
            break
        phase, generation, shard_arrays, shard_indices, payload, state = message
        try:
            if failure is not None:
                raise RuntimeError(
                    "gradient worker failed to initialise:\n" + failure)
            view.check_generation(generation)
            # Zero both groups: the main loss of a GAN backpropagates into
            # the adversary too (through the fooling term), and those stray
            # grads must not leak into the next adversary round.
            for parameter in parameters + adversary_parameters:
                parameter.grad = None
            batch = Batch(arrays=shard_arrays, indices=shard_indices)
            if phase == "adversary":
                loss = spec.adversary_compute(batch, payload, state)
                report = adversary_parameters
            else:
                loss = spec.compute(batch, payload, state)
                report = parameters
            loss.backward()
            # None marks a parameter the loss did not touch; it must stay
            # None through the reduction, because the optimizers skip
            # None-grad parameters entirely (no moment decay) and the
            # parallel run must match that serial semantic.
            gradients = [parameter.grad for parameter in report]
            conn.send(("ok", float(loss.data),
                       float(spec.weight(batch, payload)), gradients))
        except Exception:  # noqa: BLE001 - shipped to the parent verbatim
            conn.send(("error", traceback.format_exc()))
    if view is not None:
        view.close()


class MultiprocessReducer(GradientReducer):
    """Shard each batch across spawned workers and average their gradients.

    The pool lives for the duration of one :meth:`Trainer.fit` call
    (``open``/``close``); per step the parent publishes the current
    parameters to the shared-memory block (one memcpy — workers read them
    through zero-copy views, see :mod:`repro.nn.shm`), scatters contiguous
    shards, and combines the replies in shard order as
    ``sum(w_i * g_i) / sum(w_i)`` — the exact full-batch gradient for every
    spec that honours the :class:`ParallelLossSpec` weight contract.  A
    batch smaller than the pool simply leaves the trailing workers idle for
    that step.

    ``close()`` is idempotent, runs as a context manager (inherited from
    :class:`~repro.training.GradientReducer`) and is additionally registered
    with the atexit cleanup registry while open, so an exception or Ctrl-C
    mid-epoch cannot leak spawned workers or orphaned shared-memory
    segments.
    """

    def __init__(self, spec: ParallelLossSpec, num_workers: int) -> None:
        if num_workers < 2:
            raise ValueError("MultiprocessReducer needs at least 2 workers; "
                             "use SpecReducer for the in-process path")
        self.spec = spec
        self.num_workers = int(num_workers)
        self._trainer: Optional[Trainer] = None
        self._pool: Optional[WorkerPool] = None
        self._block: Optional[SharedParameterBlock] = None
        self._all_parameters: List = []

    # ------------------------------------------------------------------
    def open(self, trainer: Trainer) -> None:
        self._trainer = trainer
        if self._pool is not None:
            return
        try:
            # Adversary parameters ride in the same shared block, after the
            # trainer's own, so one publish refreshes both models in every
            # worker (the workers attach in the same concatenated order).
            self._all_parameters = (list(trainer.parameters)
                                    + list(self.spec.adversary_parameters()))
            self._block = SharedParameterBlock(self._all_parameters)
            self._pool = WorkerPool(
                _worker_main, (self.spec, self._block.spec()),
                self.num_workers, name="gradient-worker")
            self._pool.start()
        except Exception:
            # A partial pool must never survive: reap what did spawn so a
            # retried fit() starts from scratch instead of silently sharding
            # batches across fewer workers than requested.
            self.close()
            raise
        register_cleanup(self)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
        block, self._block = self._block, None
        if block is not None:
            block.close()
        unregister_cleanup(self)

    # ------------------------------------------------------------------
    def _compose_step_message(self, phase: str, generation: int, batch: Batch,
                              payload: Tuple[np.ndarray, ...],
                              state: TrainState, start: int, stop: int):
        """The per-step pipe message for one shard — parameter-free by design.

        Everything that scales with model size travels through the
        shared-memory block instead; what crosses the pipe is only the phase
        tag (``"loss"`` or ``"adversary"``), the block generation, the
        shard's slice of the batch and payload arrays, and a slim train
        state (regression-tested: pickled size is independent of the
        parameter count).
        """
        return (
            phase,
            generation,
            tuple(array[start:stop] for array in batch.arrays),
            batch.indices[start:stop],
            tuple(array[start:stop] for array in payload),
            state,
        )

    def _sharded_round(self, phase: str, batch: Batch,
                       payload: Tuple[np.ndarray, ...], state: TrainState,
                       targets: Sequence) -> float:
        """One scatter/gather round: leave the reduced gradients on ``targets``.

        Publishes the current parameters (so the workers see the freshest
        weights — in particular the adversary step taken between the two
        rounds of a GAN batch), shards the batch, and folds the replies as
        ``sum(w_i * g_i) / sum(w_i)``.  Returns the weighted batch loss.
        """
        connections = self._pool.connections
        bounds = _shard_bounds(batch.size, self.num_workers)
        generation = self._block.publish(self._all_parameters)
        slim_state = TrainState(epoch=state.epoch, step=state.step,
                                batch=state.batch, last_loss=state.last_loss)
        for (start, stop), conn in zip(bounds, connections):
            conn.send(self._compose_step_message(
                phase, generation, batch, payload, slim_state, start, stop))

        replies = []
        for _, conn in zip(bounds, connections):
            try:
                replies.append(conn.recv())
            except EOFError:
                raise RuntimeError(
                    "a gradient worker died mid-step; the loss spec is "
                    "probably not spawn-safe (it must be picklable and "
                    "rng-free in compute())"
                ) from None
        errors = [reply[1] for reply in replies if reply[0] == "error"]
        if errors:
            raise RuntimeError("gradient worker failed:\n" + "\n".join(errors))

        if len(replies) == 1:
            # Single shard (batch smaller than the pool): the worker's output
            # IS the batch output — no averaging, bitwise identical to a
            # one-worker step.
            _, loss_value, _, gradients = replies[0]
            for parameter, gradient in zip(targets, gradients):
                parameter.grad = gradient
            return loss_value

        total_weight = 0.0
        total_loss = 0.0
        totals: List[Optional[np.ndarray]] = [None] * len(targets)
        for _, loss_value, weight, gradients in replies:
            total_weight += weight
            total_loss += weight * loss_value
            for index, gradient in enumerate(gradients):
                if gradient is None:
                    continue
                scaled = weight * gradient
                totals[index] = scaled if totals[index] is None \
                    else totals[index] + scaled
        if total_weight <= 0:
            raise RuntimeError("gradient workers reported non-positive total weight")
        # A parameter no shard touched keeps grad=None, exactly as a serial
        # backward would have left it (the optimizers skip such parameters).
        for parameter, total in zip(targets, totals):
            parameter.grad = None if total is None else total / total_weight
        return total_loss / total_weight

    def accumulate(self, batch: Batch, state: TrainState) -> float:
        trainer = self._trainer
        if self._pool is None or self._pool.size != self.num_workers:
            raise RuntimeError(
                f"worker pool holds {0 if self._pool is None else self._pool.size} "
                f"connections but {self.num_workers} were requested; call "
                "open() first"
            )
        payload = self.spec.draw(batch, trainer.rng, state)
        if self.spec.has_adversary:
            # Round 1 — discriminator: sharded gradients of the adversary
            # loss, reduced onto the parent's adversary parameters, then the
            # adversary's own optimizer step (unclipped, as in the serial
            # closures).  The next publish ships the updated weights.
            adversary = self.spec.adversary_parameters()
            for parameter in adversary:
                parameter.grad = None
            self._sharded_round("adversary", batch, payload, state, adversary)
            self.spec.adversary_step()
        # Round 2 (or the only round) — the trainer's own loss.
        return self._sharded_round("loss", batch, payload, state,
                                   trainer.parameters)


class ParallelTrainer(Trainer):
    """A :class:`~repro.training.Trainer` whose gradients come from a sharded pool.

    Construction mirrors ``Trainer`` but takes a :class:`ParallelLossSpec`
    instead of a loss closure.  ``num_workers=1`` executes the spec
    in-process (bit-identical to the serial trainer, no subprocess);
    ``num_workers>=2`` spawns that many gradient workers for the duration of
    each :meth:`fit` call.  Checkpoints, callbacks and ``validate_fn`` are
    inherited unchanged — the worker count is an execution detail that never
    enters the snapshot, so runs may be resumed on machines with different
    core counts.
    """

    def __init__(self, parameters: Sequence, optimizer,
                 loss_spec: ParallelLossSpec, *, num_workers: int = 1,
                 grad_clip: Optional[float] = None,
                 callbacks: Sequence = (),
                 rng: Optional[np.random.Generator] = None,
                 validate_fn=None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.loss_spec = loss_spec
        self.num_workers = int(num_workers)
        reducer = (SpecReducer(loss_spec) if num_workers == 1
                   else MultiprocessReducer(loss_spec, num_workers))
        super().__init__(parameters, optimizer, loss_fn=None,
                         grad_clip=grad_clip, callbacks=callbacks, rng=rng,
                         validate_fn=validate_fn, reducer=reducer)
