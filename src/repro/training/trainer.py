"""The shared training engine.

:class:`Trainer` owns the epoch/batch loop that the seed code repeated in
``ImDiffusionDetector.fit`` and nine baseline ``_fit`` methods: shuffle (via
a :class:`~repro.training.WindowLoader`), compute the loss, backpropagate,
clip gradients, step the optimizer — and emit callback hooks around every
stage.  The loop is RNG-transparent: for an identical loader, loss function
and optimizer it consumes the random stream in exactly the order the legacy
hand-rolled loops did, so a migrated detector produces bit-identical
parameters for a fixed seed (regression-tested against a frozen copy of the
pre-refactor ImDiffusion loop).

The trainer is also checkpointable mid-run: :meth:`Trainer.state_dict`
captures parameters, optimizer slots, RNG state, loss history and callback
states, and :meth:`Trainer.load_state_dict` restores them so a resumed run
continues the exact trajectory of an uninterrupted one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Optimizer, clip_grad_norm
from .callbacks import Callback
from .loader import Batch

__all__ = ["TrainState", "TrainResult", "Trainer", "GradientReducer", "SerialReducer"]

_STATE_FORMAT_VERSION = 1


class GradientReducer:
    """Strategy that turns one batch into gradients on the trainer's parameters.

    The reducer is the seam between the epoch/batch loop and *how* the batch
    gradient is produced: the default :class:`SerialReducer` runs the loss
    closure in-process (one forward/backward, exactly the pre-seam loop),
    while :class:`repro.training.MultiprocessReducer` shards the batch across
    worker processes and averages their gradients.  Everything around the
    seam — callbacks, gradient clipping, the optimizer step, checkpoint and
    resume — is reducer-agnostic and stays in :class:`Trainer`.
    """

    def open(self, trainer: "Trainer") -> None:
        """Acquire resources for one ``fit`` call (worker pools, ...)."""

    def close(self) -> None:
        """Release resources acquired by :meth:`open`; idempotent."""

    def __enter__(self) -> "GradientReducer":
        # open() needs the trainer, so entering does not acquire; the context
        # manager only guarantees release (close() must be idempotent).
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def accumulate(self, batch: Batch, state: "TrainState") -> float:
        """Leave the batch gradient in each parameter's ``grad`` slot.

        Returns the batch loss as a float.  Called with all gradients
        zeroed; must not step the optimizer or clip.
        """
        raise NotImplementedError


class SerialReducer(GradientReducer):
    """In-process forward/backward of the trainer's loss closure."""

    def __init__(self) -> None:
        self._trainer: Optional["Trainer"] = None

    def open(self, trainer: "Trainer") -> None:
        if trainer.loss_fn is None:
            raise ValueError("SerialReducer requires the trainer to have a loss_fn")
        self._trainer = trainer

    def accumulate(self, batch: Batch, state: "TrainState") -> float:
        loss = self._trainer.loss_fn(batch, state)
        loss.backward()
        return float(loss.data)


@dataclass
class TrainState:
    """Mutable progress of one training run, visible to every callback."""

    epoch: int = 0                 #: epochs completed so far
    step: int = 0                  #: optimizer steps taken so far
    batch: int = 0                 #: batch index within the current epoch
    last_loss: float = float("nan")
    epoch_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)  #: held-out, per epoch
    batch_losses: List[float] = field(default_factory=list)  #: current epoch
    stop_requested: bool = False
    stop_reason: Optional[str] = None


@dataclass
class TrainResult:
    """Summary returned by :meth:`Trainer.fit`."""

    epoch_losses: List[float]
    epochs_run: int
    stopped_early: bool
    stop_reason: Optional[str]
    wall_seconds: float
    val_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Training loss of the last epoch (NaN before any epoch ran)."""
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    @property
    def final_val_loss(self) -> float:
        """Validation loss of the last epoch (NaN when validation is off)."""
        return self.val_losses[-1] if self.val_losses else float("nan")


class Trainer:
    """Drive gradient-descent training with a callback/hook protocol.

    Parameters
    ----------
    parameters:
        The parameters to clip and (via ``optimizer``) update.
    optimizer:
        Any :class:`repro.nn.Optimizer` over the same parameters.
    loss_fn:
        ``(batch, state) -> Tensor`` producing the scalar loss of one
        mini-batch.  ``batch`` is whatever the loader yields (a
        :class:`~repro.training.Batch`); ``state`` is the live
        :class:`TrainState`, letting epoch-dependent objectives (e.g.
        TranAD's adversarial schedule) read ``state.epoch``.
    grad_clip:
        Global L2 gradient-norm bound applied before every optimizer step
        (``None`` disables clipping).
    callbacks:
        :class:`~repro.training.Callback` instances, invoked in order.
    rng:
        The random generator driving the run (loader shuffle + loss
        sampling).  Only needed so checkpoints can capture and restore the
        generator state for bit-identical resumption.
    validate_fn:
        ``(trainer, state) -> float`` returning the held-out validation loss,
        evaluated once at the end of every epoch *before* the
        ``on_epoch_end`` hooks fire, so callbacks (early stopping, best
        snapshots) can monitor ``state.val_losses[-1]``.  Implementations
        should run grad-free (under :class:`repro.nn.no_grad`) and must not
        consume the trainer's ``rng``, or the validated run's training
        stream would diverge from an unvalidated one.
    reducer:
        The :class:`GradientReducer` producing each batch's gradients.
        Defaults to a :class:`SerialReducer` over ``loss_fn`` (the classic
        in-process loop); :class:`repro.training.ParallelTrainer` plugs in a
        multiprocess reducer here instead.  ``loss_fn`` may be ``None`` when
        a reducer is supplied.
    """

    def __init__(self, parameters: Sequence, optimizer: Optimizer,
                 loss_fn: Optional[Callable[[Batch, TrainState], object]],
                 grad_clip: Optional[float] = None,
                 callbacks: Sequence[Callback] = (),
                 rng: Optional[np.random.Generator] = None,
                 validate_fn: Optional[Callable[["Trainer", TrainState], float]] = None,
                 reducer: Optional[GradientReducer] = None) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("Trainer received an empty parameter list")
        if loss_fn is None and reducer is None:
            raise ValueError("Trainer needs a loss_fn or a reducer")
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.grad_clip = grad_clip
        self.callbacks = list(callbacks)
        self.rng = rng
        self.validate_fn = validate_fn
        self.reducer = reducer if reducer is not None else SerialReducer()
        self.state = TrainState()

    # ------------------------------------------------------------------
    def _emit(self, hook: str) -> None:
        for callback in self.callbacks:
            getattr(callback, hook)(self, self.state)

    # ------------------------------------------------------------------
    def fit(self, loader, epochs: int) -> TrainResult:
        """Run (or, after :meth:`load_state_dict`, continue) training.

        ``epochs`` is the *total* epoch budget: a trainer restored from an
        epoch-3 checkpoint with ``epochs=5`` runs two more epochs.
        """
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        state = self.state
        start_time = time.perf_counter()
        self.reducer.open(self)
        try:
            self._emit("on_train_start")
            while state.epoch < epochs and not state.stop_requested:
                state.batch = 0
                state.batch_losses = []
                self._emit("on_epoch_start")
                for batch in loader:
                    self.optimizer.zero_grad()
                    loss_value = self.reducer.accumulate(batch, state)
                    if self.grad_clip is not None:
                        clip_grad_norm(self.parameters, self.grad_clip)
                    self.optimizer.step()
                    state.last_loss = loss_value
                    state.batch_losses.append(state.last_loss)
                    state.step += 1
                    state.batch += 1
                    self._emit("on_batch_end")
                state.epoch_losses.append(float(np.mean(state.batch_losses)))
                state.epoch += 1
                if self.validate_fn is not None:
                    state.val_losses.append(float(self.validate_fn(self, state)))
                self._emit("on_epoch_end")
            self._emit("on_train_end")
        finally:
            self.reducer.close()
        return TrainResult(
            epoch_losses=list(state.epoch_losses),
            epochs_run=state.epoch,
            stopped_early=state.stop_requested,
            stop_reason=state.stop_reason,
            wall_seconds=time.perf_counter() - start_time,
            val_losses=list(state.val_losses),
        )

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def state_dict(self) -> Tuple[Dict[str, np.ndarray], dict]:
        """Full trainer state as ``(arrays, metadata)``.

        Compatible with :func:`repro.nn.serialization.save_checkpoint`; the
        :class:`~repro.training.Checkpoint` callback writes exactly this
        payload.  Restoring it into a trainer built over the same
        architecture and continuing with :meth:`fit` reproduces an
        uninterrupted run bit for bit (parameters, optimizer moments and the
        random stream all resume where they left off).
        """
        arrays = {f"param.{index}": np.asarray(p.data).copy()
                  for index, p in enumerate(self.parameters)}
        opt_scalars, opt_arrays = self.optimizer.state_dict()
        for name, value in opt_arrays.items():
            arrays[f"optimizer.{name}"] = value
        # Callback-owned arrays (e.g. EarlyStopping's best-epoch weights)
        # travel in the array payload, keyed by the callback's position.
        for index, callback in enumerate(self.callbacks):
            for name, value in callback.state_arrays().items():
                arrays[f"callback.{index}.{name}"] = np.asarray(value).copy()
        state = self.state
        metadata = {
            "format_version": _STATE_FORMAT_VERSION,
            "epoch": state.epoch,
            "step": state.step,
            "epoch_losses": [float(loss) for loss in state.epoch_losses],
            "val_losses": [float(loss) for loss in state.val_losses],
            "optimizer": opt_scalars,
            "rng_state": (self.rng.bit_generator.state
                          if self.rng is not None else None),
            "callbacks": [callback.state_dict() for callback in self.callbacks],
        }
        return arrays, metadata

    def load_state_dict(self, arrays: Dict[str, np.ndarray], metadata: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`.

        The trainer must be constructed over the same parameter list (same
        order, same shapes), optimizer type and callback sequence as the one
        that produced the snapshot.
        """
        version = metadata.get("format_version")
        if version != _STATE_FORMAT_VERSION:
            raise ValueError(f"unsupported trainer state version: {version!r}")
        for index, p in enumerate(self.parameters):
            key = f"param.{index}"
            if key not in arrays:
                raise KeyError(f"checkpoint is missing {key!r}")
            value = np.asarray(arrays[key], dtype=np.float64)
            if value.shape != np.asarray(p.data).shape:
                raise ValueError(
                    f"checkpoint parameter {index} has shape {value.shape}, "
                    f"expected {np.asarray(p.data).shape}"
                )
            p.data = value.copy()
        prefix = "optimizer."
        opt_arrays = {name[len(prefix):]: value
                      for name, value in arrays.items() if name.startswith(prefix)}
        self.optimizer.load_state_dict(metadata["optimizer"], opt_arrays)
        state = self.state
        state.epoch = int(metadata["epoch"])
        state.step = int(metadata["step"])
        state.epoch_losses = [float(loss) for loss in metadata["epoch_losses"]]
        state.val_losses = [float(loss) for loss in metadata.get("val_losses", [])]
        state.stop_requested = False
        state.stop_reason = None
        if metadata.get("rng_state") is not None:
            if self.rng is None:
                raise ValueError(
                    "checkpoint carries an RNG state but the trainer has no rng"
                )
            self.rng.bit_generator.state = metadata["rng_state"]
        saved_callbacks = metadata.get("callbacks", [])
        for callback, saved in zip(self.callbacks, saved_callbacks):
            if saved is not None:
                callback.load_state_dict(saved)
        for index, callback in enumerate(self.callbacks):
            prefix = f"callback.{index}."
            callback.load_state_arrays({
                name[len(prefix):]: value
                for name, value in arrays.items() if name.startswith(prefix)
            })
