"""Variance-reduction helpers for the per-epoch validation pass.

The held-out denoising loss is a Monte-Carlo estimate over random
timesteps, forward noise and masking policies.  Early stopping and best-
snapshot selection compare this estimate *across epochs*, so its sampling
variance directly translates into spurious stops and bad snapshot picks.
Two classic variance-reduction techniques make the epoch-to-epoch
comparison a paired test instead of an independent one:

* **Common random numbers (CRN)** — :func:`crn_validation_rng` returns a
  generator re-seeded to the same dedicated stream (``seed +
  VALIDATION_SEED_OFFSET``) on every call, so each epoch evaluates the loss
  on *identical* timestep/noise/policy draws and epoch deltas reflect
  parameter movement only.  (This also keeps the training stream untouched
  — validation consumes no training randomness.)
* **Antithetic variates** — :func:`antithetic_loss` evaluates the loss at
  each drawn noise *and its negation* and averages the pair.  The noise
  enters the denoising target linearly, so the pair's odd-order error terms
  cancel and the averaged estimate has strictly lower variance than two
  independent draws, at the cost of one extra grad-free forward pass.

``ImDiffusionConfig.validation_antithetic`` wires the antithetic pass into
the detector's validation loop; CRN is always on (and has been since the
validation engine landed — this module names the discipline and gives the
antithetic half a reusable seam).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .loader import VALIDATION_SEED_OFFSET

__all__ = ["antithetic_loss", "crn_validation_rng"]


def crn_validation_rng(seed: int) -> np.random.Generator:
    """The common-random-numbers generator of one validation pass.

    Re-seeding with the same ``seed`` on every epoch-end call gives every
    epoch identical validation draws (common random numbers), making the
    monitored loss curve comparable across epochs; the offset keeps the
    stream disjoint from the training generator seeded with ``seed``.
    """
    return np.random.default_rng(seed + VALIDATION_SEED_OFFSET)


def antithetic_loss(loss_fn: Callable[[np.ndarray, np.ndarray], float],
                    steps: np.ndarray, noise: np.ndarray) -> float:
    """Average a loss over an antithetic noise pair ``(noise, -noise)``.

    ``loss_fn(steps, noise)`` evaluates the (scalar) denoising loss at the
    given pre-drawn timesteps and forward noise; both evaluations share
    ``steps``, so the pair differs only in the sign of the noise.  Returns
    ``(loss_fn(steps, noise) + loss_fn(steps, -noise)) / 2``.
    """
    return 0.5 * (loss_fn(steps, noise) + loss_fn(steps, -noise))
