"""The adaptation controller: end-to-end loop, rollback bit-identity, CLI."""

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.adaptation import (
    AdaptationConfig,
    AdaptationController,
    run_drift_scenario,
    training_tail_reference,
)
from repro.serving import DetectorService, ModelRegistry, ServingConfig

WINDOW = 16


def make_series(length, channels=3, seed=0, shift=0.0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 32)[:, None] * np.ones((1, channels))
    return base + 0.1 * rng.standard_normal((length, channels)) + shift


@pytest.fixture(scope="module")
def detector():
    config = ImDiffusionConfig(
        window_size=WINDOW, num_steps=4, epochs=1, hidden_dim=8, num_blocks=1,
        num_heads=2, max_train_windows=12, num_masked_windows=2,
        num_unmasked_windows=2, deterministic_inference=True, collect="x0",
        train_stride=8, seed=0)
    return ImDiffusionDetector(config).fit(make_series(200, seed=1))


@pytest.fixture(scope="module")
def reference(detector):
    return training_tail_reference(detector, make_series(200, seed=1),
                                   points=96)


def drifting_stream(length=192, seed=4):
    """In-distribution head, strongly shifted tail (guaranteed drift)."""
    head = make_series(length // 2, seed=seed)
    tail = make_series(length - length // 2, seed=seed + 1, shift=3.0)
    return np.concatenate([head, tail])


def serve(detector, stream, controller_config=None, registry=None,
          chunk=16, model_name="served"):
    clone = ImDiffusionDetector.from_checkpoint(*detector.to_checkpoint())
    service = DetectorService(clone, ServingConfig(
        flush_size=4, flush_age=3600.0, history=stream.shape[0],
        raw_capacity=stream.shape[0]))
    service.register_tenant("t0")
    controller = None
    if controller_config is not None:
        controller = AdaptationController(
            service, detector_reference(detector), config=controller_config,
            registry=registry, model_name=model_name)
    with service:
        for start in range(0, stream.shape[0], chunk):
            service.ingest("t0", stream[start:start + chunk])
            if controller is not None:
                controller.poll()
        service.drain()
        if controller is not None:
            controller.poll()
        view = service.tenant_view("t0")
    return view, controller, service


_REFERENCE_CACHE = {}


def detector_reference(detector):
    key = id(detector)
    if key not in _REFERENCE_CACHE:
        _REFERENCE_CACHE[key] = training_tail_reference(
            detector, make_series(200, seed=1), points=96)
    return _REFERENCE_CACHE[key]


def sensitive_config(**overrides):
    params = dict(policy="error_shift(window=16, ratio=1.5)",
                  min_adapt_windows=2, adapt_epochs=1, cooldown_points=64,
                  holdout_fraction=0.25, reference_points=96)
    params.update(overrides)
    return AdaptationConfig(**params)


# ----------------------------------------------------------------------
# The adapted path
# ----------------------------------------------------------------------
def test_drift_triggers_adaptation_and_publishes_lineage(detector, tmp_path):
    registry = ModelRegistry(tmp_path)
    stream = drifting_stream()
    view, controller, service = serve(
        detector, stream, sensitive_config(), registry=registry)

    kinds = [e.kind for e in controller.drift_events]
    assert "drift" in kinds
    actions = [r.action for r in controller.history]
    assert "adapted" in actions or "rolled_back" in actions

    # v1 is the serving baseline; each attempt published the next version.
    attempts = [r for r in controller.history if r.action != "skipped"]
    assert registry.versions("served") == list(range(1, len(attempts) + 2))
    v1 = registry.load_version("served", 1)
    base_arrays, _ = detector.to_checkpoint()
    v1_arrays, _ = v1.to_checkpoint()
    assert all(np.array_equal(base_arrays[k], v1_arrays[k])
               for k in base_arrays)

    # Every transition is accounted in the service metrics.
    snap = service.metrics.snapshot()
    assert snap["drift_events"] >= 1
    assert snap["models_published"] == len(attempts) + 1
    assert snap["hot_swaps"] >= len(
        [r for r in attempts if r.action == "adapted"])
    adapted = [r for r in attempts if r.action == "adapted"]
    if adapted:
        assert controller.active_version == adapted[-1].version
        assert np.isfinite(adapted[-1].base_error)
        assert np.isfinite(adapted[-1].candidate_error)


def test_adaptation_changes_served_scores(detector):
    stream = drifting_stream()
    frozen_view, _, _ = serve(detector, stream)
    adapted_view, controller, _ = serve(detector, stream, sensitive_config())
    assert any(r.action == "adapted" for r in controller.history)
    assert not np.array_equal(frozen_view.scores, adapted_view.scores,
                              equal_nan=True)
    # Scores before the first swap are untouched.
    first = min(r.index for r in controller.history if r.action != "skipped")
    span = first - frozen_view.start
    assert span > 0
    assert np.array_equal(frozen_view.scores[:span],
                          adapted_view.scores[:span], equal_nan=True)


# ----------------------------------------------------------------------
# Rollback bit-identity
# ----------------------------------------------------------------------
def test_forced_rollback_is_bit_identical_to_frozen(detector):
    stream = drifting_stream()
    frozen_view, _, _ = serve(detector, stream)
    rolled_view, controller, service = serve(
        detector, stream, sensitive_config(regression_tolerance=-1.0))
    actions = [r.action for r in controller.history if r.action != "skipped"]
    assert actions and all(a == "rolled_back" for a in actions)
    assert service.metrics.rollbacks == len(actions)
    assert frozen_view.start == rolled_view.start
    assert frozen_view.end == rolled_view.end
    assert np.array_equal(frozen_view.scores, rolled_view.scores,
                          equal_nan=True)
    assert np.array_equal(frozen_view.labels, rolled_view.labels)


# ----------------------------------------------------------------------
# Gating
# ----------------------------------------------------------------------
def test_min_adapt_windows_skips_thin_buffers(detector):
    stream = drifting_stream()
    view, controller, service = serve(
        detector, stream, sensitive_config(min_adapt_windows=1000))
    assert controller.drift_events  # drift still detected...
    actions = [r.action for r in controller.history]
    assert actions and all(a == "skipped" for a in actions)  # ...never adapted
    assert all("min_adapt_windows" in r.detail or r.detail == "cooldown"
               for r in controller.history)
    assert service.metrics.adaptations_skipped == len(actions)
    assert service.metrics.hot_swaps == 0
    assert service.metrics.models_published == 0


def test_cooldown_skips_follow_up_edges(detector):
    stream = drifting_stream()
    _, controller, _ = serve(
        detector, stream, sensitive_config(cooldown_points=10_000))
    non_skip = [r for r in controller.history if r.action != "skipped"]
    assert len(non_skip) <= 1
    cooldowns = [r for r in controller.history if r.detail == "cooldown"]
    if len(controller.history) > 1:
        assert cooldowns


def test_config_validation():
    with pytest.raises(ValueError):
        AdaptationConfig(min_adapt_windows=0)
    with pytest.raises(ValueError):
        AdaptationConfig(adapt_epochs=0)
    with pytest.raises(ValueError):
        AdaptationConfig(holdout_fraction=1.5)
    with pytest.raises(ValueError):
        AdaptationConfig(cooldown_points=-1)


# ----------------------------------------------------------------------
# The packaged scenario (tiny)
# ----------------------------------------------------------------------
def test_run_drift_scenario_forced_rollback_bit_identity(tmp_path):
    registry = ModelRegistry(tmp_path)
    result = run_drift_scenario(
        dataset="DRIFT", scale=0.05, seed=1, train_fraction=0.3,
        registry=registry, model_name="demo",
        adaptation=AdaptationConfig(policy="sensitive", min_adapt_windows=2,
                                    adapt_epochs=1, cooldown_points=64,
                                    reference_points=64,
                                    regression_tolerance=-1.0))
    assert result.bit_identical
    attempts = [r for r in result.records if r.action != "skipped"]
    assert all(r.action == "rolled_back" for r in attempts)
    if attempts:
        assert registry.versions("demo")[0] == 1
    assert result.summary_lines()
