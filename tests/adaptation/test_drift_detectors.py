"""Drift rules: incremental vs full-recompute bitwise, edges, parsing."""

import numpy as np
import pytest

from repro.adaptation import (
    DRIFT_POLICY_PRESETS,
    DriftMonitor,
    DriftReference,
    ErrorShiftRule,
    KSRule,
    PSIRule,
    QuantileShiftRule,
    drift_statistics,
    parse_drift_policy,
)

RULES = [
    (QuantileShiftRule, dict(q=90.0, window=16, ratio=1.2)),
    (ErrorShiftRule, dict(window=16, ratio=1.2)),
    (PSIRule, dict(window=24, threshold=0.1)),
    (KSRule, dict(window=24, threshold=0.2)),
]


def _reference(seed=0, n=400):
    rng = np.random.default_rng(seed)
    return DriftReference(np.abs(rng.normal(size=n)) + 0.1)


# ----------------------------------------------------------------------
# DriftReference
# ----------------------------------------------------------------------
def test_reference_statistics_deterministic():
    a, b = _reference(3), _reference(3)
    assert a.mean == b.mean
    assert np.array_equal(a.sample, b.sample)
    assert np.array_equal(a.bin_edges, b.bin_edges)
    assert np.array_equal(a.bin_fractions, b.bin_fractions)


def test_reference_quantile_matches_numpy():
    ref = _reference(1)
    assert ref.quantile(90.0) == float(np.quantile(ref.sample, 0.9))


def test_reference_psi_zero_on_itself():
    ref = _reference(2)
    # The PSI of the reference sample against itself is ~0 (smoothing only).
    assert abs(ref.psi(ref.sample)) < 1e-9


def test_reference_ks_bounds():
    ref = _reference(4)
    rng = np.random.default_rng(9)
    window = rng.normal(loc=10.0, size=64)
    assert 0.9 < ref.ks(window) <= 1.0
    assert ref.ks(ref.sample) < 0.05


def test_reference_rejects_bad_input():
    with pytest.raises(ValueError):
        DriftReference(np.array([1.0]))
    with pytest.raises(ValueError):
        DriftReference(np.array([1.0, np.nan, 2.0]))
    with pytest.raises(ValueError):
        DriftReference(np.arange(10.0), bins=1)


# ----------------------------------------------------------------------
# Incremental vs reference: bitwise agreement
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls,kwargs", RULES, ids=lambda p: getattr(p, "__name__", ""))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_incremental_matches_reference_bitwise(cls, kwargs, seed):
    ref = _reference(seed)
    rng = np.random.default_rng(100 + seed)
    stream = np.concatenate([
        np.abs(rng.normal(size=80)) + 0.1,
        np.abs(rng.normal(loc=3.0, size=80)) + 0.1,
        np.abs(rng.normal(size=40)) + 0.1,
    ])
    rule = cls(ref, **kwargs)
    flags = np.array([rule.update(i, float(s)) for i, s in enumerate(stream)])
    assert np.array_equal(flags, rule.clone().reference(stream))


@pytest.mark.parametrize("cls,kwargs", RULES, ids=lambda p: getattr(p, "__name__", ""))
def test_rule_warmup_reset_and_clone(cls, kwargs):
    ref = _reference(5)
    rule = cls(ref, **kwargs)
    window = kwargs["window"]
    for i in range(window - 1):
        assert rule.update(i, 0.5) is False
        assert np.isnan(rule.last_statistic)
    rule.update(window - 1, 0.5)
    assert np.isfinite(rule.last_statistic)
    rule.reset()
    assert np.isnan(rule.last_statistic)
    assert rule.update(0, 0.5) is False  # warming up again
    clone = rule.clone()
    assert clone.describe() == rule.describe()
    assert clone is not rule


def test_rule_fires_on_shift_not_in_distribution():
    ref = _reference(6)
    rule = ErrorShiftRule(ref, window=16, ratio=1.5)
    rng = np.random.default_rng(7)
    calm = [rule.update(i, float(s))
            for i, s in enumerate(np.abs(rng.normal(size=64)) + 0.1)]
    assert not any(calm)
    shifted = [rule.update(64 + i, float(s))
               for i, s in enumerate(np.abs(rng.normal(loc=4.0, size=32)) + 0.1)]
    assert any(shifted)


# ----------------------------------------------------------------------
# Parsing and presets
# ----------------------------------------------------------------------
def test_presets_parse_and_describe():
    ref = _reference(8)
    for name, source in DRIFT_POLICY_PRESETS.items():
        policy = parse_drift_policy(name, ref)
        assert policy.source == source


def test_parse_expression_and_combinators():
    ref = _reference(8)
    policy = parse_drift_policy(
        "quantile_shift(q=80, window=8, ratio=1.1) and "
        "(error_shift(window=8) or ks(window=8, threshold=0.5))", ref)
    monitor = DriftMonitor(policy, "t")
    stats = drift_statistics(monitor._monitor.root)
    assert set(stats) == {
        "quantile_shift(q=80, window=8, ratio=1.1)",
        "error_shift(window=8, ratio=1.5)",
        "ks(window=8, threshold=0.5)",
    }


def test_parse_rejects_unknown_atom_and_bad_params():
    ref = _reference(8)
    with pytest.raises(ValueError):
        parse_drift_policy("volatility(window=8)", ref)
    with pytest.raises(ValueError):
        parse_drift_policy("quantile_shift(q=200, window=8)", ref)


# ----------------------------------------------------------------------
# DriftMonitor edges
# ----------------------------------------------------------------------
def test_monitor_emits_edge_triggered_events():
    ref = _reference(9)
    policy = parse_drift_policy("error_shift(window=8, ratio=1.5)", ref)
    monitor = DriftMonitor(policy, "tenant-7")
    events = []
    stream = np.concatenate([
        np.full(32, ref.mean), np.full(32, 5.0 * ref.mean),
        np.full(32, ref.mean)])
    for i, s in enumerate(stream):
        events.extend(monitor.update(i, float(s)))
    kinds = [e.kind for e in events]
    assert kinds == ["drift", "recovered"]
    assert all(e.tenant == "tenant-7" for e in events)
    drift = events[0]
    assert drift.statistics  # leaf statistics captured at the edge
    assert "error_shift(window=8, ratio=1.5)" in drift.statistics
    assert "drift" in drift.describe()


def test_monitor_reset_rearms_without_event():
    ref = _reference(10)
    policy = parse_drift_policy("error_shift(window=4, ratio=1.5)", ref)
    monitor = DriftMonitor(policy, "t")
    events = []
    for i in range(16):
        events.extend(monitor.update(i, 9.0 * ref.mean))
    assert [e.kind for e in events] == ["drift"]
    assert monitor.active
    monitor.reset()
    assert not monitor.active
    # After reset the rule warms up again, then re-fires a fresh edge.
    more = []
    for i in range(16, 32):
        more.extend(monitor.update(i, 9.0 * ref.mean))
    assert [e.kind for e in more] == ["drift"]
