"""The AnalyticsEngine orchestrator: store + episodes + policies per tenant."""

import numpy as np
import pytest

from repro.analytics import AnalyticsEngine, parse_policy


class TestObserve:
    def test_observe_block_appends_and_evaluates(self):
        engine = AnalyticsEngine(history=64, policies=["score > 1.0"])
        scores = np.array([0.1, 2.0, 3.0, 0.2])
        labels = np.array([0, 1, 1, 0])
        events = engine.observe_block("a", 0, scores, labels)
        assert [(e.kind, e.index) for e in events] == [("fired", 1), ("resolved", 3)]
        assert engine.watermark("a") == 4
        assert len(engine.episodes("a")) == 1
        view = engine.view("a")
        assert np.array_equal(view.scores, scores)
        assert np.array_equal(view.label_array(), labels)

    def test_blocks_resume_where_the_last_ended(self):
        engine = AnalyticsEngine(history=64, policies=["score > 1.0"])
        engine.observe_block("a", 0, np.array([2.0, 2.0]))
        events = engine.observe_block("a", 2, np.array([0.1]))
        assert [(e.kind, e.index) for e in events] == [("resolved", 2)]
        # Policy state carried across blocks: no duplicate "fired".
        assert [e.kind for e in engine.drain_events()] == [
            "fired", "resolved"]

    def test_observe_single_point(self):
        engine = AnalyticsEngine(history=16)
        engine.observe("a", 0, 0.7, label=1)
        engine.observe("a", 1, 0.2)
        assert engine.watermark("a") == 2
        assert engine.episodes("a")[0].anomalous_points == 1

    def test_string_policies_get_stable_names(self):
        engine = AnalyticsEngine(policies=["score > 1", "score > 2"])
        assert [p.name for p in engine.policies] == ["policy-0", "policy-1"]

    def test_active_policies(self):
        engine = AnalyticsEngine(history=16, policies=["score > 1.0"])
        engine.observe("a", 0, 5.0)
        engine.observe("b", 0, 0.0)
        assert engine.active_policies("a") == ["policy-0"]
        assert engine.active_policies("b") == []

    def test_event_queue_is_bounded(self):
        engine = AnalyticsEngine(history=256, policies=["score > 0.5"],
                                 max_events=4)
        # Alternate above/below threshold: every point is an edge.
        scores = np.tile([1.0, 0.0], 8)
        engine.observe_block("a", 0, scores)
        assert len(engine.events) == 4
        assert engine.events_dropped == 12
        # The retained events are the newest ones.
        assert engine.drain_events()[-1].index == 15
        assert engine.events == []

    def test_tenants_are_isolated(self):
        engine = AnalyticsEngine(history=16, policies=["hysteresis(up=1, down=0.2)"])
        engine.observe_block("a", 0, np.array([5.0]))
        events = engine.observe_block("b", 0, np.array([0.5]))
        assert events == []
        assert engine.active_policies("a") == ["policy-0"]


class TestQuery:
    def test_query_runs_pipelines_over_the_store(self):
        engine = AnalyticsEngine(history=64)
        scores = np.random.default_rng(0).random(40)
        engine.observe_block("a", 0, scores)
        out = engine.query("a", "mean:8,ewma:0.5")
        assert set(out) == {"mean:8", "ewma:0.5"}
        ref = engine.query("a", "mean:8,ewma:0.5", engine="reference")
        for name in out:
            assert np.array_equal(out[name], ref[name], equal_nan=True)

    def test_accepts_prebuilt_policy_objects(self):
        policy = parse_policy("score > 3.0", name="custom")
        engine = AnalyticsEngine(policies=[policy])
        events = engine.observe_block("a", 0, np.array([4.0]))
        assert events[0].policy == "custom"

    def test_append_gap_requires_skip(self):
        engine = AnalyticsEngine(history=32)
        engine.observe_block("a", 0, np.array([1.0]))
        with pytest.raises(ValueError, match="watermark"):
            engine.observe_block("a", 5, np.array([1.0]))
        engine.store.skip_to("a", 5)
        engine.observe_block("a", 5, np.array([1.0]))
        assert engine.watermark("a") == 6
