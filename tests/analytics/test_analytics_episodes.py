"""Sessionization: the incremental tracker replays the naive reference."""

import numpy as np
import pytest

from repro.analytics import Episode, EpisodeTracker, sessionize


def random_flags(length, seed, density=0.3):
    return np.random.default_rng(seed).random(length) < density


def tracker_episodes(flags, merge_gap, min_length, offset=0):
    tracker = EpisodeTracker(merge_gap=merge_gap, min_length=min_length)
    closed = []
    for i, flag in enumerate(flags):
        closed.extend(tracker.update(offset + i, bool(flag)))
    closed.extend(tracker.finish())
    return closed, tracker


class TestSessionizeReference:
    def test_plain_runs(self):
        episodes = sessionize([0, 1, 1, 0, 0, 1, 0], merge_gap=0)
        assert episodes == [Episode(1, 3, 2), Episode(5, 6, 1)]

    def test_gap_merging(self):
        flags = [1, 0, 0, 1, 0, 0, 0, 1]
        assert sessionize(flags, merge_gap=2) == [
            Episode(0, 4, 2), Episode(7, 8, 1)]
        assert sessionize(flags, merge_gap=3) == [Episode(0, 8, 3)]

    def test_min_length_filter(self):
        flags = [1, 0, 1, 1, 1]
        assert sessionize(flags, merge_gap=0, min_length=2) == [Episode(2, 5, 3)]

    def test_offset_shifts_indices(self):
        assert sessionize([1, 1], offset=100) == [Episode(100, 102, 2)]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            sessionize([1], merge_gap=-1)
        with pytest.raises(ValueError):
            sessionize([1], min_length=0)


class TestTrackerMatchesReference:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("merge_gap,min_length", [(0, 1), (1, 1), (2, 3), (4, 2)])
    def test_random_streams(self, seed, merge_gap, min_length):
        flags = random_flags(211, seed, density=0.25 + 0.1 * (seed % 3))
        closed, _ = tracker_episodes(flags, merge_gap, min_length)
        assert closed == sessionize(flags, merge_gap, min_length)

    def test_with_absolute_offset(self):
        flags = random_flags(64, seed=9)
        closed, _ = tracker_episodes(flags, 1, 1, offset=4096)
        assert closed == sessionize(flags, 1, 1, offset=4096)

    def test_all_episodes_includes_open_span(self):
        tracker = EpisodeTracker(merge_gap=1, min_length=1)
        for i, flag in enumerate([0, 1, 1]):
            tracker.update(i, bool(flag))
        assert tracker.finish() == [Episode(1, 3, 2)]

        tracker = EpisodeTracker(merge_gap=1, min_length=1)
        for i, flag in enumerate([0, 1, 1]):
            tracker.update(i, bool(flag))
        assert tracker.open_episode == Episode(1, 3, 2)
        assert tracker.all_episodes() == [Episode(1, 3, 2)]
        assert tracker.all_episodes(include_open=False) == []

    def test_episode_closes_once_gap_definitively_exceeded(self):
        tracker = EpisodeTracker(merge_gap=1, min_length=1)
        tracker.update(0, True)
        assert tracker.update(1, False) == []   # gap=1, still mergeable
        assert tracker.update(2, False) == []   # gap=2 quiet, closes next update
        assert tracker.update(3, False) == [Episode(0, 1, 1)]

    def test_sparse_indices_count_as_quiet(self):
        tracker = EpisodeTracker(merge_gap=1, min_length=1)
        tracker.update(0, True)
        # Index 1..4 never arrive: the jump itself exceeds the merge gap.
        assert tracker.update(5, True) == [Episode(0, 1, 1)]

    def test_indices_must_strictly_increase(self):
        tracker = EpisodeTracker()
        tracker.update(3, True)
        with pytest.raises(ValueError, match="strictly increasing"):
            tracker.update(3, True)
