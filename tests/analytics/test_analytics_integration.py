"""Analytics wired end to end: serving hot path, online harness, `repro query`."""

import json

import numpy as np
import pytest

from repro import ImDiffusionConfig, ImDiffusionDetector
from repro.analytics import export_jsonl, load_jsonl
from repro.cli import main
from repro.data import MicroserviceLatencySimulator, ProductionConfig
from repro.production import LegacyThresholdDetector, run_online_evaluation
from repro.serving import DetectorService, ServingConfig

WINDOW = 16


def make_series(length, channels=3, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 32)[:, None] * np.ones((1, channels))
    return base + 0.1 * rng.standard_normal((length, channels))


@pytest.fixture(scope="module")
def detector():
    config = ImDiffusionConfig(
        window_size=WINDOW, num_steps=4, epochs=1, hidden_dim=8, num_blocks=1,
        num_heads=2, max_train_windows=12, num_masked_windows=2,
        num_unmasked_windows=2, deterministic_inference=True, collect="x0",
        seed=0)
    return ImDiffusionDetector(config).fit(make_series(200, seed=1))


@pytest.fixture(scope="module")
def trace():
    sim = MicroserviceLatencySimulator(ProductionConfig(
        num_services=4, train_days=2, test_days=1, seed=11))
    return sim.generate()


class TestServiceFeedsAnalytics:
    def test_store_tracks_the_alarm_cursor(self, detector):
        service = DetectorService(detector, ServingConfig(
            flush_size=2, history=128))
        series = make_series(3 * WINDOW, seed=4)
        service.register_tenant("a")
        alarms = []
        for row in series:
            alarms.extend(service.ingest("a", row))
        alarms.extend(service.drain())
        # Everything the alarm scan consumed is in the analytics store: same
        # span, same final-step scores, and the stored labels are exactly the
        # alarms that were raised (labels freeze at the poll that emitted
        # them, unlike the live view which re-votes over the whole buffer).
        view = service.tenant_view("a")
        stream = service.analytics.view("a")
        assert stream.start == view.start and stream.end == view.end
        assert np.array_equal(stream.scores, view.scores)
        flagged = np.flatnonzero(stream.label_array()) + stream.start
        assert sorted(a.index for a in alarms) == sorted(flagged.tolist())

    def test_policies_emit_events_and_metrics(self, detector):
        service = DetectorService(detector, ServingConfig(
            flush_size=2, history=128,
            alert_policies=["score > 0.0"]))  # trivially fires on first score
        series = make_series(2 * WINDOW, seed=5)
        for row in series:
            service.ingest("b", row)
        service.drain()
        events = service.drain_alert_events()
        assert events and events[0].kind == "fired"
        assert service.metrics.alerts_fired >= 1
        assert service.metrics.alerts_by_policy.get("policy-0", 0) >= 1
        snapshot = service.metrics.snapshot()
        assert snapshot["alerts_fired"] >= 1.0
        assert "alerts_fired" in service.metrics.format_table()
        # Drained means drained.
        assert service.drain_alert_events() == []

    def test_query_over_the_live_store(self, detector):
        service = DetectorService(detector, ServingConfig(
            flush_size=2, history=128))
        for row in make_series(2 * WINDOW, seed=6):
            service.ingest("c", row)
        service.drain()
        out = service.analytics.query("c", "mean:8,quantile:8:95")
        stream = service.analytics.view("c")
        assert all(v.shape[0] == stream.end - stream.start for v in out.values())


class TestOnlineHarnessAnalytics:
    def test_online_run_reports_episodes_and_alerts(self, trace):
        evaluation = run_online_evaluation(
            LegacyThresholdDetector(seed=0), trace, rescore_every=32,
            alert_policy="score > 3.0 or episode(threshold=3.0, min_len=2, gap=1)")
        assert evaluation.labels.shape == trace.test_labels.shape
        # Episodes sessionize the emitted labels.
        if evaluation.labels.any():
            assert evaluation.episodes
            total = sum(e.anomalous_points for e in evaluation.episodes)
            assert total == int(evaluation.labels.sum())
        assert all(e.tenant == "online" for e in evaluation.alert_events)

    def test_incremental_path_stores_stream_once(self, trace):
        config = ImDiffusionConfig(
            window_size=WINDOW, num_steps=4, epochs=1, hidden_dim=8,
            num_blocks=1, num_heads=2, max_train_windows=8,
            num_masked_windows=2, num_unmasked_windows=2,
            deterministic_inference=True, collect="x0", seed=0)
        log_trace = type(trace)(train=np.log(trace.train),
                                test=np.log(trace.test),
                                test_labels=trace.test_labels)
        evaluation = run_online_evaluation(
            ImDiffusionDetector(config), log_trace, rescore_every=24,
            eval_buffer=128, alert_policy="score > 0.0")
        assert evaluation.labels.shape == trace.test_labels.shape
        assert evaluation.scores.shape == trace.test_labels.shape
        # The analytics path must not lose the stream tail.
        assert evaluation.scores[-1] != 0.0 or evaluation.scores[-2] != 0.0
        assert evaluation.alert_events, "a score > 0 policy must fire"

    def test_no_policy_means_no_events(self, trace):
        evaluation = run_online_evaluation(LegacyThresholdDetector(seed=0),
                                           trace, rescore_every=64)
        assert evaluation.alert_events == []


class TestQueryCli:
    @pytest.fixture()
    def capture(self, tmp_path):
        rng = np.random.default_rng(2)
        path = tmp_path / "scores.jsonl"
        with open(path, "w") as handle:
            for tenant in ("t0", "t1"):
                scores = np.abs(rng.standard_normal(60))
                scores[20:24] += 6.0
                for i, score in enumerate(scores):
                    row = {"tenant": tenant, "index": i, "score": float(score),
                           "label": int(score > 3.0)}
                    handle.write(json.dumps(row) + "\n")
        return path

    def test_query_end_to_end_with_multi_rule_policy(self, capture, capsys):
        exit_code = main([
            "query", "--from", str(capture),
            "--ops", "mean:16,quantile:16:99,ewma:0.3",
            "--policy", "score > 3.0 and "
                        "(hysteresis(up=3.0, down=1.0) or quantile(q=95, window=16))",
            "--check", "--tail", "4"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "tenant t0" in output and "tenant t1" in output
        assert output.count("bitwise-equal") == 6  # 3 ops x 2 tenants
        assert "MISMATCH" not in output
        assert "episodes" in output
        assert "fired 'policy-0'" in output

    def test_query_single_tenant_and_export_round_trip(self, capture,
                                                       tmp_path, capsys):
        out_path = tmp_path / "replay.jsonl"
        exit_code = main(["query", "--from", str(capture), "--tenant", "t0",
                          "--export", str(out_path)])
        assert exit_code == 0
        original = load_jsonl(capture)["t0"]
        replayed = load_jsonl(out_path)
        assert list(replayed) == ["t0"]
        assert np.array_equal(replayed["t0"].scores, original.scores)
        assert np.array_equal(replayed["t0"].labels, original.labels,
                              equal_nan=True)

    def test_query_unknown_tenant_fails(self, capture, capsys):
        assert main(["query", "--from", str(capture), "--tenant", "nope"]) == 2
        assert "available" in capsys.readouterr().out

    def test_serve_export_then_query(self, tmp_path, capsys):
        # The full capture/replay loop: serve a tiny stream, export, query.
        capture = tmp_path / "served.jsonl"
        exit_code = main([
            "serve", "--tenants", "1", "--samples", str(3 * WINDOW),
            "--services", "3", "--train-days", "1",
            "--window-size", str(WINDOW), "--num-steps", "4",
            "--epochs", "1", "--hidden-dim", "8", "--history", "128",
            "--policy", "score > 0.0",
            "--export-scores", str(capture)])
        assert exit_code == 0
        served = capsys.readouterr().out
        assert "Alert events" in served
        assert "Captured" in served

        exit_code = main(["query", "--from", str(capture),
                          "--ops", "mean:8", "--check",
                          "--policy", "score > 0.0"])
        assert exit_code == 0
        replay = capsys.readouterr().out
        assert "bitwise-equal" in replay and "MISMATCH" not in replay
        assert "fired 'policy-0'" in replay
