"""Property tests: every incremental operator bit-matches its reference.

The contract of :mod:`repro.analytics.operators` is *bitwise* agreement —
no tolerance anywhere — on arbitrary streams, including NaN warm-up
prefixes and injected NaNs.
"""

import numpy as np
import pytest

from repro.analytics import (
    EWMA,
    Delta,
    Lag,
    Lead,
    RollingMean,
    RollingQuantile,
    RollingRank,
    RollingStd,
    apply_pipeline,
    parse_operator,
    parse_pipeline,
)


def make_stream(length, seed, nan_fraction=0.0, nan_prefix=0):
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(length) * rng.uniform(0.1, 10.0)
    if nan_fraction:
        mask = rng.random(length) < nan_fraction
        values[mask] = np.nan
    if nan_prefix:
        values[:nan_prefix] = np.nan
    return values


ALL_OPERATORS = [
    RollingMean(1), RollingMean(7), RollingMean(64),
    RollingStd(5), RollingStd(32),
    RollingQuantile(9, 50.0), RollingQuantile(16, 99.0), RollingQuantile(4, 0.0),
    RollingRank(8), RollingRank(33),
    Lag(0), Lag(1), Lag(5),
    Lead(0), Lead(1), Lead(4),
    Delta(1), Delta(3),
    EWMA(0.2), EWMA(1.0), EWMA(0.05),
]


class TestBitwiseAgreement:
    @pytest.mark.parametrize("operator", ALL_OPERATORS,
                             ids=lambda op: op.describe())
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_incremental_matches_reference_bitwise(self, operator, seed):
        values = make_stream(137, seed)
        incremental = operator.clone().apply(values)
        reference = operator.reference(values)
        assert incremental.shape == reference.shape == values.shape
        # Bitwise: array_equal with equal_nan, no isclose anywhere.
        assert np.array_equal(incremental, reference, equal_nan=True)

    @pytest.mark.parametrize("operator", ALL_OPERATORS,
                             ids=lambda op: op.describe())
    def test_agreement_survives_nan_inputs(self, operator):
        values = make_stream(101, seed=7, nan_fraction=0.15, nan_prefix=9)
        incremental = operator.clone().apply(values)
        reference = operator.reference(values)
        assert np.array_equal(incremental, reference, equal_nan=True)

    @pytest.mark.parametrize("operator", ALL_OPERATORS,
                             ids=lambda op: op.describe())
    def test_streams_shorter_than_the_window(self, operator):
        for length in (0, 1, 2, 3):
            values = make_stream(length, seed=length)
            incremental = operator.clone().apply(values)
            reference = operator.reference(values)
            assert np.array_equal(incremental, reference, equal_nan=True)

    def test_apply_resets_state_between_streams(self):
        operator = RollingMean(8)
        first = make_stream(40, seed=3)
        second = make_stream(40, seed=4)
        operator.apply(first)
        assert np.array_equal(operator.apply(second),
                              operator.reference(second), equal_nan=True)


class TestSemantics:
    def test_mean_warm_up_uses_available_rows(self):
        out = RollingMean(4).apply(np.array([2.0, 4.0, 6.0]))
        assert np.array_equal(out, np.array([2.0, 3.0, 4.0]))

    def test_lag_emits_nan_during_warm_up(self):
        out = Lag(2).apply(np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.isnan(out[:2]).all()
        assert np.array_equal(out[2:], np.array([1.0, 2.0]))

    def test_lead_is_delayed_but_aligned(self):
        operator = Lead(2)
        assert operator.delay == 2
        out = operator.apply(np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.array_equal(out[:2], np.array([3.0, 4.0]))
        assert np.isnan(out[2:]).all()

    def test_rank_counts_at_or_below(self):
        out = RollingRank(3).apply(np.array([5.0, 1.0, 3.0, 9.0]))
        assert np.array_equal(out, np.array([1.0, 1.0, 2.0, 3.0]))

    def test_ewma_seeds_on_first_value(self):
        out = EWMA(0.5).apply(np.array([4.0, 0.0]))
        assert out[0] == 4.0 and out[1] == 2.0

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            RollingMean(0)
        with pytest.raises(ValueError):
            RollingQuantile(4, 101.0)
        with pytest.raises(ValueError):
            Delta(0)
        with pytest.raises(ValueError):
            EWMA(0.0)
        with pytest.raises(ValueError):
            Lag(-1)


class TestParsing:
    def test_parse_operator_specs(self):
        assert parse_operator("mean:64").describe() == "mean:64"
        assert parse_operator("quantile:64:95").describe() == "quantile:64:95"
        assert parse_operator("ewma:0.3").describe() == "ewma:0.3"
        assert parse_operator("lag").describe() == "lag:1"

    def test_parse_unknown_operator(self):
        with pytest.raises(ValueError, match="unknown operator"):
            parse_operator("median:8")

    def test_parse_bad_argument(self):
        with pytest.raises(ValueError, match="bad operator spec"):
            parse_operator("mean:sixty")

    def test_parse_pipeline(self):
        operators = parse_pipeline("mean:8, std:8, quantile:8:90")
        assert [op.describe() for op in operators] == [
            "mean:8", "std:8", "quantile:8:90"]
        with pytest.raises(ValueError, match="empty"):
            parse_pipeline(" , ")

    def test_apply_pipeline_engines_agree(self):
        values = make_stream(96, seed=11, nan_fraction=0.1)
        operators = parse_pipeline("mean:16,std:16,quantile:16:99,rank:16,"
                                   "lag:2,lead:2,delta:2,ewma:0.25")
        incremental = apply_pipeline(operators, values, engine="incremental")
        reference = apply_pipeline(operators, values, engine="reference")
        assert incremental.keys() == reference.keys()
        for name in incremental:
            assert np.array_equal(incremental[name], reference[name],
                                  equal_nan=True), name

    def test_apply_pipeline_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            apply_pipeline(parse_pipeline("mean:4"), np.zeros(4), engine="gpu")
