"""The declarative alert-policy engine: grammar, rules and edge semantics.

Every rule's incremental activity series must match its naive reference on
random streams — the same incremental-vs-recompute contract the operator
library carries.
"""

import numpy as np
import pytest

from repro.analytics import (
    AllOf,
    AnyOf,
    EpisodeRule,
    HysteresisRule,
    QuantileRule,
    ThresholdRule,
    parse_policy,
)


def make_scores(length, seed, spikes=True):
    rng = np.random.default_rng(seed)
    scores = np.abs(rng.standard_normal(length))
    if spikes:
        idx = rng.choice(length, size=max(1, length // 12), replace=False)
        scores[idx] += rng.uniform(3.0, 8.0, idx.shape[0])
    return scores


def incremental_activity(rule, scores):
    rule = rule.clone()
    return np.asarray([rule.update(i, float(s)) for i, s in enumerate(scores)],
                      dtype=bool)


ALL_RULES = [
    ThresholdRule(1.5), ThresholdRule(0.5, "<="), ThresholdRule(2.0, ">="),
    HysteresisRule(up=2.0, down=0.5), HysteresisRule(up=1.0, down=1.0),
    EpisodeRule(threshold=1.5, min_len=1, gap=0),
    EpisodeRule(threshold=1.5, min_len=3, gap=2),
    EpisodeRule(threshold=2.5, min_len=2, gap=4),
    QuantileRule(q=90.0, window=16, mult=1.0),
    QuantileRule(q=99.0, window=8, mult=1.5),
    AllOf([ThresholdRule(1.0), HysteresisRule(up=2.0, down=0.5)]),
    AnyOf([EpisodeRule(threshold=2.0, min_len=2, gap=1),
           QuantileRule(q=95.0, window=12)]),
    AllOf([AnyOf([ThresholdRule(0.5), ThresholdRule(3.0)]),
           EpisodeRule(threshold=0.5, min_len=1, gap=1)]),
]


class TestIncrementalMatchesReference:
    @pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.describe())
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_streams(self, rule, seed):
        scores = make_scores(173, seed)
        assert np.array_equal(incremental_activity(rule, scores),
                              rule.reference(scores))

    @pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.describe())
    def test_short_streams(self, rule):
        for length in (0, 1, 3):
            scores = make_scores(length, seed=length, spikes=False)
            assert np.array_equal(incremental_activity(rule, scores),
                                  rule.reference(scores))


class TestRuleSemantics:
    def test_hysteresis_damps_flapping(self):
        rule = HysteresisRule(up=1.0, down=0.2)
        stream = [1.5, 0.5, 0.5, 0.1, 1.5]
        assert incremental_activity(rule, stream).tolist() == [
            True, True, True, False, True]

    def test_hysteresis_validates_band(self):
        with pytest.raises(ValueError, match="down <= up"):
            HysteresisRule(up=0.5, down=1.0)

    def test_episode_rule_stays_active_through_merged_gap(self):
        rule = EpisodeRule(threshold=0.5, min_len=1, gap=1)
        stream = [1.0, 0.0, 1.0, 0.0, 0.0, 1.0]
        assert incremental_activity(rule, stream).tolist() == [
            True, True, True, True, False, True]

    def test_episode_rule_needs_min_len(self):
        rule = EpisodeRule(threshold=0.5, min_len=3, gap=0)
        stream = [1.0, 1.0, 1.0, 0.0]
        assert incremental_activity(rule, stream).tolist() == [
            False, False, True, False]

    def test_quantile_rule_warm_up_is_inactive(self):
        rule = QuantileRule(q=50.0, window=4, mult=1.0)
        stream = np.array([1.0, 1.0, 1.0, 1.0, 9.0])
        activity = incremental_activity(rule, stream)
        assert not activity[:4].any()
        assert activity[4]

    def test_quantile_baseline_excludes_current_score(self):
        # A lone spike cannot lift its own baseline.
        rule = QuantileRule(q=100.0, window=2, mult=1.0)
        assert incremental_activity(rule, [1.0, 1.0, 5.0]).tolist() == [
            False, False, True]

    def test_combinators_never_short_circuit(self):
        # The hysteresis rule only works if it sees every score, even while
        # the AND's first child is false.
        rule = AllOf([ThresholdRule(10.0, "<"), HysteresisRule(up=2.0, down=0.5)])
        scores = np.array([3.0, 20.0, 1.0])
        assert np.array_equal(incremental_activity(rule, scores),
                              rule.reference(scores))
        assert incremental_activity(rule, scores).tolist() == [True, False, True]


class TestGrammar:
    def test_parse_threshold(self):
        policy = parse_policy("score > 0.8")
        assert policy.root.describe() == "score > 0.8"

    def test_parse_nested_expression(self):
        policy = parse_policy(
            "score > 0.5 and (episode(threshold=0.5, min_len=3, gap=2) "
            "or quantile(q=99, window=64, mult=1.5))")
        assert isinstance(policy.root, AllOf)
        assert isinstance(policy.root.children[1], AnyOf)
        assert "episode(threshold=0.5, min_len=3, gap=2)" in policy.root.describe()

    def test_and_binds_tighter_than_or(self):
        policy = parse_policy("score > 1 or score > 2 and score > 3")
        assert isinstance(policy.root, AnyOf)
        assert isinstance(policy.root.children[1], AllOf)

    def test_parse_errors(self):
        for text, match in [
            ("", "empty"),
            ("score >", "unexpected end"),
            ("score > 1 banana", "trailing|unknown"),
            ("volume > 1", "unknown rule"),
            ("hysteresis(up=1)", "missing required"),
            ("episode(threshold=1, nope=2)", "unknown parameter"),
            ("hysteresis(up=1, up=2, down=0)", "duplicate"),
            ("score > 1 and (score > 2", "expected rparen|unexpected end"),
            ("score ! 1", "bad policy syntax|expected"),
        ]:
            with pytest.raises(ValueError, match=match):
                parse_policy(text)

    def test_parsed_policy_matches_hand_built(self):
        scores = make_scores(120, seed=5)
        parsed = parse_policy("score > 1.5 and hysteresis(up=2.0, down=0.5)")
        built = AllOf([ThresholdRule(1.5), HysteresisRule(up=2.0, down=0.5)])
        assert np.array_equal(parsed.evaluate_reference(scores),
                              built.reference(scores))


class TestMonitorEdges:
    def test_events_fire_on_edges_only(self):
        policy = parse_policy("score > 1.0", name="spike")
        monitor = policy.monitor("t0")
        stream = [0.5, 2.0, 3.0, 0.1, 2.0]
        events = []
        for i, score in enumerate(stream):
            events.extend(monitor.update(i, score))
        assert [(e.kind, e.index) for e in events] == [
            ("fired", 1), ("resolved", 3), ("fired", 4)]
        assert all(e.policy == "spike" and e.tenant == "t0" for e in events)

    def test_monitors_are_per_tenant(self):
        policy = parse_policy("hysteresis(up=1.0, down=0.2)")
        a, b = policy.monitor("a"), policy.monitor("b")
        assert a.update(0, 5.0) and a.active
        assert not b.active  # b's rule state is untouched
        assert b.update(0, 0.0) == []

    def test_activity_series_matches_reference(self):
        scores = make_scores(90, seed=8)
        policy = parse_policy(
            "score > 1.0 and (hysteresis(up=2.0, down=0.5) "
            "or episode(threshold=1.0, min_len=2, gap=1))")
        assert np.array_equal(policy.monitor("t").activity(scores),
                              policy.evaluate_reference(scores))
