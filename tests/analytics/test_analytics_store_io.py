"""The bounded score store (watermark contract) and its JSONL capture format."""

import numpy as np
import pytest

from repro.analytics import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    ScoreStore,
    export_jsonl,
    load_jsonl,
    streams_to_store,
)


def fill(store, tenant, count, seed=0, labels=True, start=0):
    rng = np.random.default_rng(seed)
    scores = rng.random(count)
    label_col = (rng.random(count) < 0.2).astype(np.float64) if labels else None
    store.append(tenant, start, scores, label_col)
    return scores, label_col


class TestScoreStore:
    def test_append_advances_watermark(self):
        store = ScoreStore(history=64)
        scores, labels = fill(store, "a", 10)
        assert store.watermark("a") == 10
        view = store.view("a")
        assert view.start == 0 and view.end == 10
        assert np.array_equal(view.scores, scores)
        assert np.array_equal(view.label_array(), labels.astype(np.int64))

    def test_append_must_start_at_watermark(self):
        store = ScoreStore(history=64)
        fill(store, "a", 10)
        with pytest.raises(ValueError, match="watermark"):
            store.append("a", 5, np.zeros(3))
        with pytest.raises(ValueError, match="watermark"):
            store.append("a", 11, np.zeros(3))

    def test_eviction_keeps_newest_history(self):
        store = ScoreStore(history=16)
        scores = np.arange(40, dtype=np.float64)
        for i in range(40):
            store.append("a", i, scores[i:i + 1])
        assert store.watermark("a") == 40
        assert store.retained_from("a") == 24
        assert store.evicted("a") == 24
        view = store.view("a")
        assert view.start == 24 and view.end == 40
        assert np.array_equal(view.scores, scores[24:])

    def test_view_clamps_to_retained_range(self):
        store = ScoreStore(history=8)
        fill(store, "a", 20)
        view = store.view("a", start=0, end=100)
        assert view.start == 12 and view.end == 20

    def test_tail(self):
        store = ScoreStore(history=32)
        scores, _ = fill(store, "a", 20)
        tail = store.tail("a", 5)
        assert tail.start == 15 and tail.end == 20
        assert np.array_equal(tail.scores, scores[15:])

    def test_labels_optional_and_nan_coerced(self):
        store = ScoreStore(history=8)
        store.append("a", 0, np.array([0.5, 0.6]))
        view = store.view("a")
        assert np.isnan(view.labels).all()
        assert np.array_equal(view.label_array(), np.array([0, 0]))

    def test_skip_to_marks_prefix_invalid(self):
        store = ScoreStore(history=64)
        store.skip_to("a", 100)
        assert store.watermark("a") == 100
        assert store.retained_from("a") == 100
        store.append("a", 100, np.array([1.0, 2.0]))
        view = store.view("a")
        assert view.start == 100 and view.end == 102

    def test_skip_backwards_is_a_noop(self):
        store = ScoreStore(history=64)
        fill(store, "a", 10)
        store.skip_to("a", 5)
        assert store.watermark("a") == 10
        assert store.retained_from("a") == 0

    def test_unknown_tenant_raises(self):
        store = ScoreStore()
        with pytest.raises(KeyError, match="unknown tenant"):
            store.view("ghost")

    def test_tenants_sorted_and_contains(self):
        store = ScoreStore()
        store.register_tenant("b")
        store.register_tenant("a")
        assert store.tenants() == ["a", "b"]
        assert "a" in store and "ghost" not in store


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        store = ScoreStore(history=64)
        fill(store, "a", 30, seed=1)
        fill(store, "b", 12, seed=2)
        store.append("c", 0, np.array([0.1, 0.2]))  # label-less tenant

        path = tmp_path / "scores.jsonl"
        assert export_jsonl(path, store) == 44
        streams = load_jsonl(path)
        assert sorted(streams) == ["a", "b", "c"]
        for tenant in store.tenants():
            original, loaded = store.view(tenant), streams[tenant]
            assert loaded.start == original.start
            assert np.array_equal(loaded.scores, original.scores)
            assert np.array_equal(loaded.labels, original.labels, equal_nan=True)

    def test_round_trip_through_eviction_boundary(self, tmp_path):
        store = ScoreStore(history=16)
        rng = np.random.default_rng(3)
        for i in range(50):
            store.append("a", i, rng.random(1), rng.integers(0, 2, 1))
        path = tmp_path / "scores.jsonl"
        export_jsonl(path, store)
        loaded = load_jsonl(path)["a"]
        assert loaded.start == 34 and loaded.end == 50
        assert np.array_equal(loaded.scores, store.view("a").scores)

        # Replaying into a fresh store re-establishes the absolute indices.
        replayed = streams_to_store(load_jsonl(path))
        assert replayed.watermark("a") == 50
        assert replayed.retained_from("a") == 34
        assert np.array_equal(replayed.view("a").scores, loaded.scores)

    def test_load_tolerates_shuffled_lines(self, tmp_path):
        store = ScoreStore(history=32)
        fill(store, "a", 10, seed=4)
        path = tmp_path / "scores.jsonl"
        export_jsonl(path, store)
        lines = path.read_text().strip().split("\n")
        path.write_text("\n".join(reversed(lines)) + "\n")
        loaded = load_jsonl(path)["a"]
        assert np.array_equal(loaded.scores, store.view("a").scores)

    def test_load_rejects_gaps_and_bad_rows(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"tenant": "a", "index": 0, "score": 1.0}\n'
                        '{"tenant": "a", "index": 2, "score": 1.0}\n')
        with pytest.raises(ValueError, match="non-contiguous"):
            load_jsonl(path)
        path.write_text('{"tenant": "a", "score": 1.0}\n')
        with pytest.raises(ValueError, match="bad score row"):
            load_jsonl(path)

    def test_export_accepts_plain_stream_mapping(self, tmp_path):
        store = ScoreStore(history=8)
        fill(store, "a", 5, seed=5)
        streams = {"a": store.view("a")}
        path = tmp_path / "scores.jsonl"
        assert export_jsonl(path, streams) == 5
        assert np.array_equal(load_jsonl(path)["a"].scores, streams["a"].scores)


class TestSchemaHeader:
    def test_export_writes_versioned_header_first(self, tmp_path):
        import json

        store = ScoreStore(history=16)
        fill(store, "a", 5, seed=6)
        path = tmp_path / "scores.jsonl"
        # The header is metadata: the returned count is data rows only.
        assert export_jsonl(path, store) == 5
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION}
        assert SCHEMA_NAME == "repro.scores" and SCHEMA_VERSION == 1

    def test_load_tolerates_headerless_capture(self, tmp_path):
        store = ScoreStore(history=16)
        fill(store, "a", 5, seed=7)
        path = tmp_path / "scores.jsonl"
        export_jsonl(path, store)
        lines = path.read_text().strip().split("\n")
        path.write_text("\n".join(lines[1:]) + "\n")  # strip the header
        loaded = load_jsonl(path)["a"]
        assert np.array_equal(loaded.scores, store.view("a").scores)

    def test_load_rejects_foreign_schema_and_newer_version(self, tmp_path):
        path = tmp_path / "scores.jsonl"
        path.write_text('{"schema": "other.format", "version": 1}\n')
        with pytest.raises(ValueError, match="unknown schema"):
            load_jsonl(path)
        path.write_text('{"schema": "repro.scores", "version": 2}\n')
        with pytest.raises(ValueError, match="newer than"):
            load_jsonl(path)
